//! Seasonal forecasting extension: on traffic with a strong diurnal cycle,
//! plain EWMA mistakes every morning ramp for a change, while the additive
//! Holt-Winters model learns the cycle and keeps the detection signal
//! quiet until a real attack arrives.
//!
//! Run with: `cargo run --release --example seasonal_forecasting`

use hifind_flow::rng::SplitMix64;
use hifind_forecast::{Ewma, HoltWinters, ScalarForecaster};
use hifind_trafficgen::{BackgroundProfile, NetworkModel};

fn main() {
    // A "day" compressed to 24 five-second ticks × many cycles; per-tick
    // series = unresponded SYNs at one watched service.
    let net = NetworkModel::campus();
    let profile = BackgroundProfile {
        connections_per_sec: 400.0,
        diurnal_amplitude: 0.7,
        diurnal_period_ms: 120_000, // one "day" = 24 ticks of 5 s
        ..BackgroundProfile::default()
    };
    let duration = 10 * 120_000; // ten days
    let trace = hifind_trafficgen::background::generate_background(
        &net,
        &profile,
        duration,
        &mut SplitMix64::new(42),
    );

    // Per-tick aggregate SYN counts (the signal a per-service monitor
    // would forecast), with a synthetic flood spike near the end.
    let tick_ms = 5_000u64;
    let ticks = (duration / tick_ms) as usize;
    let mut series = vec![0f64; ticks];
    for p in trace.iter() {
        if p.kind == hifind_flow::SegmentKind::Syn {
            series[(p.ts_ms / tick_ms) as usize % ticks] += 1.0;
        }
    }
    let attack_tick = ticks - 30;
    series[attack_tick] += 3000.0;

    let mut ewma = Ewma::new(0.5);
    let mut hw = HoltWinters::new(0.3, 0.05, 0.4, 24);
    let mut ewma_background_max = 0f64;
    let mut hw_background_max = 0f64;
    let mut ewma_attack = 0f64;
    let mut hw_attack = 0f64;
    for (t, &v) in series.iter().enumerate() {
        let e = ewma.step(v);
        let h = hw.step(v);
        if t == attack_tick {
            ewma_attack = e.unwrap_or(0.0);
            hw_attack = h.unwrap_or(0.0);
        } else if t > 3 * 24 {
            if let Some(e) = e {
                ewma_background_max = ewma_background_max.max(e.abs());
            }
            if let Some(h) = h {
                hw_background_max = hw_background_max.max(h.abs());
            }
        }
    }

    println!("forecast errors on ten diurnal 'days' of traffic:");
    println!(
        "  EWMA α=0.5:          background max |error| = {ewma_background_max:>7.0}   attack spike = {ewma_attack:>7.0}   S/N = {:.1}",
        ewma_attack / ewma_background_max.max(1.0)
    );
    println!(
        "  Holt-Winters (24):   background max |error| = {hw_background_max:>7.0}   attack spike = {hw_attack:>7.0}   S/N = {:.1}",
        hw_attack / hw_background_max.max(1.0)
    );
    println!(
        "\nthe seasonal model soaks up the daily ramp, so the same detection\n\
         threshold can be set ~{:.0}x tighter before the morning rush trips it.",
        ewma_background_max / hw_background_max.max(1.0)
    );
}
