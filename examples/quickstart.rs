//! Quickstart: detect a SYN flood and a port scan in a synthetic trace.
//!
//! Run with: `cargo run --release --example quickstart`

use hifind::{HiFind, HiFindConfig, Phase};
use hifind_flow::{Ip4, Packet, Trace};

fn main() {
    // Build a 5-minute trace by hand: benign handshakes every interval,
    // a spoofed SYN flood against 129.105.0.1:80 from minute 1, and a
    // horizontal scan of port 445 from minute 2.
    let victim: Ip4 = [129, 105, 0, 1].into();
    let scanner: Ip4 = [66, 6, 6, 6].into();
    let mut trace = Trace::new();
    for minute in 0..5u64 {
        let base = minute * 60_000;
        // Benign: clients complete handshakes with the victim's service.
        for i in 0..50u32 {
            let client: Ip4 = [12, 0, (i % 7) as u8, (i % 200) as u8].into();
            let t = base + i as u64 * 600;
            trace.push(Packet::syn(t, client, 4000 + i as u16, victim, 80));
            trace.push(Packet::syn_ack(t + 20, client, 4000 + i as u16, victim, 80));
        }
        // The spoofed flood: a fresh source address per packet, nothing
        // answered.
        if minute >= 1 {
            for i in 0..400u32 {
                let spoofed = Ip4::new(0x5000_0000 ^ ((minute as u32) << 16) ^ i);
                trace.push(Packet::syn(
                    base + 100 + i as u64 * 100,
                    spoofed,
                    2000,
                    victim,
                    80,
                ));
            }
        }
        // The horizontal scan: one source, one port, many addresses.
        if minute >= 2 {
            for i in 0..200u32 {
                let dst: Ip4 = [129, 105, (i >> 8) as u8, i as u8].into();
                trace.push(Packet::syn(
                    base + 200 + i as u64 * 250,
                    scanner,
                    2100,
                    dst,
                    445,
                ));
            }
        }
    }
    trace.sort_by_time();
    println!("trace: {}", trace.stats());

    // The whole IDS is two calls: record packets, end intervals.
    // `run_trace` does both with the configured one-minute interval.
    let mut ids = HiFind::new(HiFindConfig::paper(42)).expect("valid paper configuration");
    let log = ids.run_trace(&trace);

    println!("\nraw (phase 1) alerts:");
    for alert in log.alerts(Phase::Raw) {
        println!("  {alert}");
    }
    println!("\nfinal (phase 3) alerts:");
    for alert in log.final_alerts() {
        println!("  {alert}");
    }

    let memory = ids.recorder().memory_bytes();
    println!(
        "\nrecorder state: {:.1} MB, {} counter accesses per packet",
        memory as f64 / 1e6,
        ids.recorder().accesses_per_packet()
    );
}
