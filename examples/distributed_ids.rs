//! Aggregated detection over multiple routers (paper Figure 3 / §5.3.2).
//!
//! The trace is split across three edge routers *per packet* — as
//! per-packet load balancing does — so a connection's SYN and SYN/ACK have
//! a 2/3 chance of crossing different routers. Each router records only
//! sketches; the central site combines them (sketch linearity) and detects
//! on the aggregate, producing exactly the single-router results.
//!
//! Run with: `cargo run --release --example distributed_ids`

use hifind::{HiFind, HiFindAggregator, HiFindConfig, SketchRecorder};
use hifind_trafficgen::{presets, split_per_packet};

fn main() {
    let cfg = HiFindConfig::paper(11);
    let scenario = presets::nu_like(7).scaled(0.05);
    eprintln!("generating {}...", scenario.name);
    let (trace, _) = scenario.generate();
    eprintln!("  {}", trace.stats());

    // Reference: all traffic through one router.
    let mut single = HiFind::new(cfg).expect("valid configuration");
    let single_log = single.run_trace(&trace);

    // Distributed: three routers, per-packet random assignment.
    let parts = split_per_packet(&trace, 3, 1234);
    for (i, p) in parts.iter().enumerate() {
        eprintln!("  router {i}: {} packets", p.len());
    }
    let mut routers: Vec<SketchRecorder> = (0..3)
        .map(|_| SketchRecorder::new(&cfg).expect("valid configuration"))
        .collect();
    let mut site = HiFindAggregator::new(cfg).expect("valid configuration");
    let windows: Vec<Vec<_>> = parts
        .iter()
        .map(|t| t.intervals(cfg.interval_ms).collect())
        .collect();
    let intervals = windows.iter().map(Vec::len).max().unwrap_or(0);
    let mut shipped_bytes = 0usize;
    for iv in 0..intervals {
        let mut snapshots = Vec::new();
        for (router, wins) in routers.iter_mut().zip(&windows) {
            if let Some(w) = wins.get(iv) {
                for p in w.packets {
                    router.record(p);
                }
            }
            let snap = router.take_snapshot();
            shipped_bytes += snap.wire_size_bytes();
            snapshots.push(snap);
        }
        site.process_interval(&snapshots)
            .expect("same configuration");
    }

    let mut single_ids: Vec<_> = single_log
        .final_alerts()
        .iter()
        .map(|a| a.identity())
        .collect();
    let mut agg_ids: Vec<_> = site
        .log()
        .final_alerts()
        .iter()
        .map(|a| a.identity())
        .collect();
    single_ids.sort();
    agg_ids.sort();

    println!(
        "\nsingle-router final alerts: {}",
        single_log.final_alerts().len()
    );
    println!(
        "aggregated  final alerts: {}",
        site.log().final_alerts().len()
    );
    println!(
        "identical detections: {}",
        if single_ids == agg_ids { "YES" } else { "NO" }
    );
    println!(
        "sketch data shipped to the central site: {:.1} MB per router-interval \
         (fixed — independent of traffic volume;\n  with the paper's 4-byte hardware \
         counters: {:.1} MB; a 10 Gbps router would otherwise ship ~75 GB of \
         packets per minute)",
        shipped_bytes as f64 / 1e6 / (3 * intervals.max(1)) as f64,
        hifind::metrics::SketchMemoryModel::paper(hifind::metrics::PAPER_COUNTER_BYTES).total_mb(),
    );
}
