//! DoS resilience (paper §3.5): a massive spoofed SYN flood runs as a
//! smokescreen while a real horizontal scan proceeds underneath.
//!
//! * HiFIND keeps fixed sketch memory and still reports both the flood and
//!   the scan.
//! * TRW's per-source state explodes (one random walk per spoofed source).
//! * TRW-AC's memory stays fixed, but its connection cache is polluted by
//!   the flood's half-open entries, so the real scanner's probes alias and
//!   go unscored — the paper's footnote-1 false-negative channel.
//!
//! Run with: `cargo run --release --example dos_resilience`

use hifind::{AlertKind, HiFind, HiFindConfig};
use hifind_baselines::{Trw, TrwAc, TrwAcConfig, TrwConfig};
use hifind_trafficgen::presets;
use hifind_trafficgen::EventClass;

fn main() {
    let scenario = presets::dos_resilience(3).scaled(0.3);
    eprintln!("generating {}...", scenario.name);
    let (trace, truth) = scenario.generate();
    eprintln!("  {}", trace.stats());
    let scan = truth
        .of_class(EventClass::HScan)
        .next()
        .expect("scenario injects one real scan");
    println!(
        "ground truth: spoofed flood smokescreen + real scan from {} on port {}",
        scan.sip.expect("hscan has a source"),
        scan.dport.expect("hscan has a port")
    );

    // --- HiFIND ---------------------------------------------------------
    let mut ids = HiFind::new(HiFindConfig::paper(5)).expect("valid configuration");
    let log = ids.run_trace(&trace);
    let found_scan = log
        .final_alerts()
        .iter()
        .any(|a| a.kind == AlertKind::HScan && a.sip == scan.sip);
    let found_flood = log
        .final_alerts()
        .iter()
        .any(|a| a.kind == AlertKind::SynFlooding);
    println!(
        "\nHiFIND (fixed {:.1} MB of sketches):",
        ids.recorder().memory_bytes() as f64 / 1e6
    );
    println!("  flood detected: {found_flood}");
    println!("  scan detected under smokescreen: {found_scan}");

    // --- TRW -------------------------------------------------------------
    let (trw_alerts, trw_stats) = Trw::detect(&trace, TrwConfig::default());
    println!("\nTRW (per-source state):");
    println!(
        "  peak tracked sources: {} (~{:.1} MB of walk state)",
        trw_stats.peak_sources,
        trw_stats.memory_bytes as f64 / 1e6
    );
    println!(
        "  scanner flagged: {}",
        trw_alerts.iter().any(|a| Some(a.source) == scan.sip)
    );

    // --- TRW-AC -----------------------------------------------------------
    // A small cache makes the paper's 1M-entry pollution effect visible at
    // this workload scale.
    let cfg = TrwAcConfig {
        conn_cache_entries: 1 << 16,
        addr_cache_entries: 1 << 14,
        ..TrwAcConfig::default()
    };
    let (ac_alerts, ac_stats) = TrwAc::detect(&trace, cfg);
    println!(
        "\nTRW-AC (fixed {:.1} MB cache):",
        ac_stats.memory_bytes as f64 / 1e6
    );
    println!(
        "  connection-cache occupancy after flood: {:.0}%",
        ac_stats.cache_occupancy * 100.0
    );
    println!(
        "  attempts aliased (never scored): {} of {}",
        ac_stats.aliased_attempts, ac_stats.total_attempts
    );
    println!(
        "  scanner flagged: {}",
        ac_alerts.iter().any(|&a| Some(a) == scan.sip)
    );
}
