//! Attack forensics with reversible sketches: recover the *culprit flow
//! keys* from nothing but sketch counters, then classify the attack type
//! with the 2D sketch — the mitigation story of paper §3.3/§4.
//!
//! Run with: `cargo run --release --example attack_forensics`

use hifind_flow::keys::{SipDport, SketchKey};
use hifind_flow::rng::SplitMix64;
use hifind_flow::Ip4;
use hifind_sketch::{
    ColumnShape, InferOptions, ReversibleSketch, RsConfig, TwoDConfig, TwoDSketch,
};

fn main() {
    // A reversible sketch records {SIP, Dport} with value #SYN − #SYN/ACK.
    // Note what it does NOT store: any key. 2^12 buckets × 6 stages, full
    // stop.
    let mut rs = ReversibleSketch::new(RsConfig::paper_48bit(99)).expect("paper config");
    let mut twod = TwoDSketch::new(TwoDConfig::paper(99)).expect("paper config");

    // 100k benign flows (mostly completing → values hover around zero).
    let mut rng = SplitMix64::new(1);
    for _ in 0..100_000 {
        let client = Ip4::new(rng.next_u32());
        let port = 1 + rng.below(1024) as u16;
        let key = SipDport::new(client, port).to_u64();
        rs.update(key, 1);
        if rng.chance(0.97) {
            rs.update(key, -1);
        }
    }

    // Three attackers hide in the stream.
    let attackers = [
        (
            Ip4::from([204, 10, 110, 38]),
            1433u16,
            900i64,
            "SQLSnake-style Hscan",
        ),
        (
            Ip4::from([15, 192, 50, 153]),
            4899,
            650,
            "Rahack-style Hscan",
        ),
        (Ip4::from([95, 30, 62, 202]), 3306, 420, "MySQL bot scan"),
    ];
    for &(sip, dport, count, _) in &attackers {
        let key = SipDport::new(sip, dport).to_u64();
        rs.update(key, count);
        // The 2D sketch records {SIP,Dport} × {DIP}: a horizontal scan
        // spreads over destinations.
        for i in 0..count {
            twod.update(key, 0x8169_0000 + i as u64, 1);
        }
    }
    // One non-spoofed flood: same key shape, but all mass on ONE target.
    let flood = (Ip4::from([61, 4, 4, 4]), 80u16, 800i64);
    let flood_key = SipDport::new(flood.0, flood.1).to_u64();
    rs.update(flood_key, flood.2);
    for _ in 0..flood.2 {
        twod.update(flood_key, 0x8169_0001, 1);
    }

    // INFERENCE: reconstruct the heavy keys from the counters alone.
    let result = rs.infer(300, &InferOptions::default());
    println!(
        "inference explored {} candidates over heavy buckets {:?}",
        result.stats.candidates_explored, result.stats.heavy_buckets
    );
    println!("\nrecovered culprit keys:");
    for (key, estimate) in result.typed::<SipDport>() {
        let shape = twod.classify(key.to_u64(), 5, 0.8);
        let verdict = match shape {
            ColumnShape::Dispersed => "horizontal scan (many targets)",
            ColumnShape::Concentrated => "SYN flooding (single target)",
        };
        let truth = attackers
            .iter()
            .find(|&&(s, p, _, _)| s == key.sip() && p == key.dport())
            .map(|&(_, _, _, label)| label)
            .unwrap_or(if key.sip() == flood.0 {
                "non-spoofed flood"
            } else {
                "?"
            });
        println!("  {key}  Δ≈{estimate:<5}  2D verdict: {verdict:<35} truth: {truth}");
    }
    println!(
        "\nall of this came out of {:.1} KB of counters — no flow table anywhere.",
        rs.memory_bytes() as f64 / 1e3
    );
}
