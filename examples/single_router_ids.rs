//! Run the full HiFIND pipeline on the NU-like campus scenario and score
//! the three detection phases against ground truth (a miniature of the
//! paper's Table 4).
//!
//! Run with: `cargo run --release --example single_router_ids [scale]`
//! where `scale` (default 0.1) multiplies the workload intensity.

use hifind::evaluate::evaluate;
use hifind::{AlertKind, HiFind, HiFindConfig, Phase};
use hifind_trafficgen::presets;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let scenario = presets::nu_like(2026).scaled(scale);
    eprintln!("generating {} at scale {scale}...", scenario.name);
    let (trace, truth) = scenario.generate();
    eprintln!(
        "  {} ({} attack campaigns, {} benign anomalies)",
        trace.stats(),
        truth.attacks().count(),
        truth.benign().count()
    );

    let mut ids = HiFind::new(HiFindConfig::paper(7)).expect("valid configuration");
    let log = ids.run_trace(&trace);

    println!("\ndetections per phase (unique attacks, NU-like scenario):");
    println!("{:<16}{:>8}{:>10}{:>8}", "type", "raw", "after-2D", "final");
    for kind in [AlertKind::SynFlooding, AlertKind::HScan, AlertKind::VScan] {
        println!(
            "{:<16}{:>8}{:>10}{:>8}",
            kind.to_string(),
            log.count(Phase::Raw, kind),
            log.count(Phase::AfterClassification, kind),
            log.count(Phase::Final, kind),
        );
    }

    let summary = evaluate(log.final_alerts(), &truth);
    println!("\nscored against ground truth:\n{summary}");

    println!("\nexample final alerts:");
    for alert in log.final_alerts().iter().take(8) {
        println!("  {alert}");
    }
}
