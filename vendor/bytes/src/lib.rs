//! Minimal offline reimplementation of the `bytes` API surface this
//! workspace uses: big-endian `get_*`/`put_*` over byte slices, plus
//! [`Bytes`]/[`BytesMut`] as thin wrappers around `Vec<u8>`.

use std::ops::Deref;

/// Read cursor over a byte source (big-endian accessors, like `bytes`).
///
/// # Panics
///
/// All `get_*` methods panic when fewer bytes remain than requested —
/// identical to the real crate; callers are expected to check
/// [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copies the next `dst.len()` bytes into `dst` and advances.
    fn read_into(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.read_into(&mut b);
        b[0]
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.read_into(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.read_into(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.read_into(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn read_into(&mut self, dst: &mut [u8]) {
        let n = dst.len();
        assert!(self.len() >= n, "buffer underflow: {} < {n}", self.len());
        let (head, tail) = self.split_at(n);
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write sink (big-endian appenders, like `bytes`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// An immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u16(0x0102);
        buf.put_u8(7);
        buf.put_u64(u64::MAX - 1);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 15);
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u16(), 0x0102);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u64(), u64::MAX - 1);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32();
    }
}
