//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! The registry is unreachable from this build environment, so `syn`/`quote`
//! are unavailable; the input item is parsed directly from the
//! `proc_macro::TokenStream`. Supported shapes — which cover every derived
//! type in this workspace:
//!
//! * structs with named fields (`#[serde(skip)]`, `#[serde(transparent)]`),
//! * tuple structs (single-field newtypes serialize as their inner value,
//!   wider ones as sequences),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde's JSON representation).
//!
//! Generics are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    Named {
        fields: Vec<Field>,
        transparent: bool,
    },
    Tuple {
        arity: usize,
    },
    Unit,
    Enum {
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Consumes leading `#[...]` attributes; returns whether a
/// `#[serde(<word>)]` attribute was among them, per requested word.
fn take_attrs(tokens: &[TokenTree], pos: &mut usize) -> (bool, bool) {
    let (mut skip, mut transparent) = (false, false);
    while *pos + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[*pos] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[*pos + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for t in args.stream() {
                        if let TokenTree::Ident(w) = t {
                            match w.to_string().as_str() {
                                "skip" => skip = true,
                                "transparent" => transparent = true,
                                other => panic!("unsupported serde attribute `{other}`"),
                            }
                        }
                    }
                }
            }
        }
        *pos += 2;
    }
    (skip, transparent)
}

/// Consumes an optional visibility (`pub`, `pub(...)`).
fn take_vis(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Skips a type, stopping at a top-level `,` (consumed) or end of input.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut depth = 0i32;
    while *pos < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*pos] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Counts top-level comma-separated entries of a tuple body.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0usize;
    let mut count = 0usize;
    while pos < tokens.len() {
        let (_, _) = take_attrs(&tokens, &mut pos);
        take_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut pos);
        count += 1;
    }
    count
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0usize;
    while pos < tokens.len() {
        let (skip, _) = take_attrs(&tokens, &mut pos);
        take_vis(&tokens, &mut pos);
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            panic!(
                "expected field name, got {:?}",
                tokens.get(pos).map(|t| t.to_string())
            );
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!(
                "expected `:` after field name, got {:?}",
                other.map(|t| t.to_string())
            ),
        }
        skip_type(&tokens, &mut pos);
        fields.push(Field {
            name: name.to_string(),
            skip,
        });
    }
    fields
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0usize;
    while pos < tokens.len() {
        let (_, _) = take_attrs(&tokens, &mut pos);
        let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
            panic!("expected variant name");
        };
        pos += 1;
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantShape::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantShape::Struct(parse_named_fields(g).into_iter().map(|f| f.name).collect())
            }
            _ => VariantShape::Unit,
        };
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("explicit enum discriminants are not supported")
            }
            other => panic!(
                "expected `,` after variant, got {:?}",
                other.map(|t| t.to_string())
            ),
        }
        variants.push(Variant {
            name: name.to_string(),
            shape,
        });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;
    let (_, transparent) = take_attrs(&tokens, &mut pos);
    take_vis(&tokens, &mut pos);
    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!(
            "expected `struct` or `enum`, got {:?}",
            other.map(|t| t.to_string())
        ),
    };
    pos += 1;
    let Some(TokenTree::Ident(name)) = tokens.get(pos) else {
        panic!("expected type name");
    };
    let name = name.to_string();
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            panic!("generic types are not supported by the vendored serde derive");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Named {
                fields: parse_named_fields(g),
                transparent,
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Shape::Tuple {
                arity: count_tuple_fields(g),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!(
                "unsupported struct body: {:?}",
                other.map(|t| t.to_string())
            ),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                variants: parse_variants(g),
            },
            _ => panic!("expected enum body"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named {
            fields,
            transparent,
        } => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if *transparent {
                assert!(live.len() == 1, "transparent struct must have one field");
                format!("::serde::Serialize::to_value(&self.{})", live[0].name)
            } else {
                let mut s =
                    String::from("let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n");
                for f in &live {
                    s.push_str(&format!(
                        "m.push((String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));\n",
                        f.name
                    ));
                }
                s.push_str("::serde::Value::Map(m)");
                s
            }
        }
        Shape::Tuple { arity } => {
            if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
            }
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum { variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({bl}) => ::serde::Value::Map(vec![(String::from(\"{vn}\"), {inner})]),\n",
                            bl = binds.join(", ")
                        ));
                    }
                    VariantShape::Struct(field_names) => {
                        let mut entries = String::new();
                        for fname in field_names {
                            entries.push_str(&format!(
                                "(String::from(\"{fname}\"), ::serde::Serialize::to_value({fname})), "
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {bl} }} => ::serde::Value::Map(vec![(String::from(\"{vn}\"), ::serde::Value::Map(vec![{entries}]))]),\n",
                            bl = field_names.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named { fields, transparent } => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if *transparent {
                assert!(live.len() == 1, "transparent struct must have one field");
                let mut s = format!(
                    "Ok({name} {{ {}: ::serde::Deserialize::from_value(v)?,\n",
                    live[0].name
                );
                for f in fields.iter().filter(|f| f.skip) {
                    s.push_str(&format!("{}: ::core::default::Default::default(),\n", f.name));
                }
                s.push_str("})");
                s
            } else {
                let mut s = format!(
                    "let m = v.as_map().ok_or_else(|| ::serde::DeError::custom(\"expected map for {name}\"))?;\n\
                     Ok({name} {{\n"
                );
                for f in fields {
                    if f.skip {
                        s.push_str(&format!("{}: ::core::default::Default::default(),\n", f.name));
                    } else {
                        s.push_str(&format!(
                            "{0}: ::serde::Deserialize::from_value(::serde::value_get(m, \"{0}\")\
                             .ok_or_else(|| ::serde::DeError::custom(\"missing field `{0}` in {name}\"))?)?,\n",
                            f.name
                        ));
                    }
                }
                s.push_str("})");
                s
            }
        }
        Shape::Tuple { arity } => {
            if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let mut s = format!(
                    "let s = v.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected sequence for {name}\"))?;\n\
                     if s.len() != {arity} {{ return Err(::serde::DeError::custom(\"wrong length for {name}\")); }}\n\
                     Ok({name}("
                );
                for i in 0..*arity {
                    s.push_str(&format!("::serde::Deserialize::from_value(&s[{i}])?, "));
                }
                s.push_str("))");
                s
            }
        }
        Shape::Unit => format!("match v {{ ::serde::Value::Null => Ok({name}), _ => Err(::serde::DeError::custom(\"expected null for {name}\")) }}"),
        Shape::Enum { variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        if *n == 1 {
                            data_arms.push_str(&format!(
                                "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),\n"
                            ));
                        } else {
                            let mut fields = String::new();
                            for i in 0..*n {
                                fields.push_str(&format!(
                                    "::serde::Deserialize::from_value(&s[{i}])?, "
                                ));
                            }
                            data_arms.push_str(&format!(
                                "\"{vn}\" => {{\n\
                                 let s = payload.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected sequence for {name}::{vn}\"))?;\n\
                                 if s.len() != {n} {{ return Err(::serde::DeError::custom(\"wrong length for {name}::{vn}\")); }}\n\
                                 Ok({name}::{vn}({fields}))\n}},\n"
                            ));
                        }
                    }
                    VariantShape::Struct(field_names) => {
                        let mut fields = String::new();
                        for fname in field_names {
                            fields.push_str(&format!(
                                "{fname}: ::serde::Deserialize::from_value(::serde::value_get(fm, \"{fname}\")\
                                 .ok_or_else(|| ::serde::DeError::custom(\"missing field `{fname}` in {name}::{vn}\"))?)?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let fm = payload.as_map().ok_or_else(|| ::serde::DeError::custom(\"expected map for {name}::{vn}\"))?;\n\
                             Ok({name}::{vn} {{ {fields} }})\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(::serde::DeError::custom(format!(\"unknown {name} variant `{{other}}`\"))),\n}},\n\
                 ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                 let (tag, payload) = (&m[0].0, &m[0].1);\n\
                 let _ = payload;\n\
                 match tag.as_str() {{\n{data_arms}\
                 other => Err(::serde::DeError::custom(format!(\"unknown {name} variant `{{other}}`\"))),\n}}\n}},\n\
                 _ => Err(::serde::DeError::custom(\"expected string or single-key map for {name}\")),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
         let _ = v;\n{body}\n}}\n}}\n"
    )
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}
