//! Minimal offline `serde_json` replacement over the vendored serde
//! [`Value`] model: renders values to JSON text (compact and pretty) and
//! parses JSON back. Covers the workspace's API surface: `to_string`,
//! `to_string_pretty`, `to_vec`, `to_vec_pretty`, `from_str`, `from_slice`.

use serde::{DeError, Deserialize, Serialize};

pub use serde::Value;

/// JSON serialization/deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) -> Result<(), Error> {
    if !f.is_finite() {
        return Err(Error::new("JSON cannot represent NaN or infinity"));
    }
    if f == f.trunc() && f.abs() < 1e15 {
        // Keep integral floats recognizable as floats, like serde_json.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
    Ok(())
}

fn write_value(v: &Value, out: &mut String, pretty: bool, indent: usize) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(*f, out)?,
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                write_value(item, out, pretty, indent + 1)?;
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(item, out, pretty, indent + 1)?;
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push('}');
        }
    }
    Ok(())
}

/// Renders a serializable value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, false, 0)?;
    Ok(out)
}

/// Renders a serializable value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, true, 0)?;
    Ok(out)
}

/// Renders a serializable value as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Renders a serializable value as pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.error("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.error("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat_literal("\\u")?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Parses a JSON string into a deserializable value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

/// Parses JSON bytes into a deserializable value.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&-4i64).unwrap(), "-4");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u32>("3").unwrap(), 3);
        assert_eq!(from_str::<f64>("1.5e2").unwrap(), 150.0);
        assert_eq!(from_str::<i64>("-9").unwrap(), -9);
    }

    #[test]
    fn string_escaping_round_trips() {
        let s = "he\"ll\\o\nworld\tπ".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1i64, -2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,-2,3]");
        assert_eq!(from_str::<Vec<i64>>(&json).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u8, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn nan_is_rejected() {
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(from_str::<Vec<u8>>("[1,").is_err());
        assert!(from_str::<u32>("12 trailing").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
