//! Collection strategies: `vec`, `hash_set`, `hash_map`.

use crate::strategy::Strategy;
use crate::TestRng;
use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// Anything usable as a collection size specification.
pub trait SizeBounds {
    /// Samples a concrete length.
    fn sample(&self, rng: &mut TestRng) -> usize;
    /// Upper bound (for duplicate-tolerant set/map generation).
    fn upper(&self) -> usize;
}

impl SizeBounds for usize {
    fn sample(&self, _rng: &mut TestRng) -> usize {
        *self
    }
    fn upper(&self) -> usize {
        *self
    }
}

impl SizeBounds for Range<usize> {
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
    fn upper(&self) -> usize {
        self.end.saturating_sub(1)
    }
}

impl SizeBounds for RangeInclusive<usize> {
    fn sample(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty size range");
        lo + rng.below((hi - lo + 1) as u64) as usize
    }
    fn upper(&self) -> usize {
        *self.end()
    }
}

/// Vector of values from `elem`, with a length drawn from `size`.
pub fn vec<S: Strategy>(elem: S, size: impl SizeBounds) -> VecStrategy<S, impl SizeBounds> {
    VecStrategy { elem, size }
}

/// See [`vec`].
pub struct VecStrategy<S, Z> {
    elem: S,
    size: Z,
}

impl<S: Strategy, Z: SizeBounds> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Hash set of values from `elem`; sizes below the requested minimum can
/// occur only if the element domain is too small, matching proptest's
/// duplicate-retry behaviour loosely.
pub fn hash_set<S>(elem: S, size: impl SizeBounds) -> HashSetStrategy<S, impl SizeBounds>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy { elem, size }
}

/// See [`hash_set`].
pub struct HashSetStrategy<S, Z> {
    elem: S,
    size: Z,
}

impl<S, Z> Strategy for HashSetStrategy<S, Z>
where
    S: Strategy,
    S::Value: Eq + Hash,
    Z: SizeBounds,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while out.len() < target && attempts < target.saturating_mul(20) + 100 {
            out.insert(self.elem.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// Hash map with keys from `key` and values from `value`.
pub fn hash_map<K, V>(
    key: K,
    value: V,
    size: impl SizeBounds,
) -> HashMapStrategy<K, V, impl SizeBounds>
where
    K: Strategy,
    K::Value: Eq + Hash,
    V: Strategy,
{
    HashMapStrategy { key, value, size }
}

/// See [`hash_map`].
pub struct HashMapStrategy<K, V, Z> {
    key: K,
    value: V,
    size: Z,
}

impl<K, V, Z> Strategy for HashMapStrategy<K, V, Z>
where
    K: Strategy,
    K::Value: Eq + Hash,
    V: Strategy,
    Z: SizeBounds,
{
    type Value = HashMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashMap<K::Value, V::Value> {
        let target = self.size.sample(rng);
        let mut out = HashMap::with_capacity(target);
        let mut attempts = 0usize;
        while out.len() < target && attempts < target.saturating_mul(20) + 100 {
            out.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        out
    }
}
