//! Strategy trait and combinators.

use crate::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A value generator. Unlike real proptest there is no shrinking: a
/// strategy just produces a value from the RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps generating until `f` accepts a value (up to an attempt cap).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 attempts: {}", self.reason);
    }
}

/// A strategy from a plain generation closure (used by `prop_compose!`).
pub struct FnStrategy<F, T> {
    f: F,
    _marker: PhantomData<fn() -> T>,
}

impl<F: Fn(&mut TestRng) -> T, T> FnStrategy<F, T> {
    /// Wraps a generation closure.
    pub fn new(f: F) -> Self {
        FnStrategy {
            f,
            _marker: PhantomData,
        }
    }
}

impl<F: Fn(&mut TestRng) -> T, T> Strategy for FnStrategy<F, T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// One boxed generator arm of a [`Union`].
type ArmFn<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice among boxed same-valued strategies (see `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<ArmFn<T>>,
}

impl<T> Union<T> {
    /// Creates an empty union.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds one strategy arm.
    pub fn push<S>(&mut self, s: S)
    where
        S: Strategy<Value = T> + 'static,
    {
        self.arms.push(Box::new(move |rng| s.generate(rng)));
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.below(self.arms.len() as u64) as usize;
        (self.arms[idx])(rng)
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    rng.below(span as u64) as u128
                };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against floating-point rounding landing exactly on `end`.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Occasionally emit the exact endpoints: boundary values (e.g.
        // alpha = 1.0) are the interesting cases for inclusive ranges.
        match rng.below(64) {
            0 => lo,
            1 => hi,
            _ => lo + rng.unit_f64() * (hi - lo),
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (f64::from(self.start)..f64::from(self.end)).generate(rng) as f32
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}
