//! `any::<T>()` — uniform whole-domain strategies for primitives.

use crate::strategy::Strategy;
use crate::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain generator.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = rng.unit_f64() * 1e9;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
