//! Minimal offline reimplementation of the `proptest` API surface this
//! workspace's property tests use.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message; cases are deterministic (seeded from the test
//!   name), so failures reproduce exactly.
//! * **Deterministic runs.** Every test derives its RNG seed from its own
//!   name via FNV-1a, then walks cases sequentially. Set the
//!   `PROPTEST_CASES` environment variable to change the case count
//!   globally.
//! * Strategies are simple generator objects: [`strategy::Strategy`] is
//!   `generate(&self, &mut TestRng) -> Value` plus a `prop_map` adapter.
//!
//! Supported surface: `proptest!`, `prop_compose!`, `prop_oneof!`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, `any::<T>()`,
//! `Just`, integer/float range strategies, tuple strategies, and
//! `prop::collection::{vec, hash_set, hash_map}`.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The `prop::` paths used inside tests (`prop::collection::vec(...)`).
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// A deterministic splitmix64 RNG driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        // Widening-multiply rejection-free mapping; bias is negligible for
        // test-data generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a of a test name — the per-test base seed.
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `cases` deterministic cases of a property body (used by
/// [`proptest!`]; not part of the public proptest API).
pub fn run_cases(name: &str, cases: u32, mut body: impl FnMut(&mut TestRng, u32)) {
    let base = fnv1a(name);
    for case in 0..cases {
        let mut rng = TestRng::new(base.wrapping_add(u64::from(case).wrapping_mul(0x9E37_79B9)));
        body(&mut rng, case);
    }
}

/// The `proptest! { ... }` block macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), config.cases, |rng, _case| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                    $body
                });
            }
        )*
    };
}

/// The `prop_compose!` strategy-builder macro.
#[macro_export]
macro_rules! prop_compose {
    ( $(#[$meta:meta])* $vis:vis fn $name:ident ( $($outer:tt)* ) ( $($field:ident in $strat:expr),+ $(,)? ) -> $ret:ty $body:block ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |rng: &mut $crate::TestRng| {
                $(let $field = $crate::strategy::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Uniform choice among same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ( $($s:expr),+ $(,)? ) => {{
        let mut union = $crate::strategy::Union::new();
        $( union.push($s); )+
        union
    }};
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        any::<u32>().prop_map(|v| u64::from(v) * 2)
    }

    prop_compose! {
        fn arb_pair()(a in 0u64..100, b in 1u64..=10) -> (u64, u64) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn maps_and_composes_work(e in arb_even(), p in arb_pair()) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(p.0 < 100 && (1..=10).contains(&p.1));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(any::<u8>(), 2..6),
            s in prop::collection::hash_set(any::<u64>(), 1..4),
            m in prop::collection::hash_map(any::<u16>(), 0i64..10, 0..5),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!((1..4).contains(&s.len()));
            prop_assert!(m.len() < 5);
        }

        #[test]
        fn oneof_picks_all_arms(choice in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&choice));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_override_applies(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let mut first = Vec::new();
        super::run_cases("determinism", 8, |rng, _| first.push(rng.next_u64()));
        let mut second = Vec::new();
        super::run_cases("determinism", 8, |rng, _| second.push(rng.next_u64()));
        assert_eq!(first, second);
        assert_ne!(first[0], first[1]);
    }
}
