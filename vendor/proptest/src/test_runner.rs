//! Test-runner configuration.

/// Controls how many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}
