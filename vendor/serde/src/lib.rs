//! Minimal, offline reimplementation of the `serde` API surface this
//! workspace uses.
//!
//! The build environment has no network access and no registry cache, so the
//! real `serde` (and its `syn`/`quote` proc-macro stack) cannot be fetched.
//! This crate provides a drop-in replacement built around a simple
//! self-describing [`Value`] tree instead of serde's visitor architecture:
//!
//! * [`Serialize`] — convert `self` into a [`Value`].
//! * [`Deserialize`] — rebuild `Self` from a [`Value`].
//! * `#[derive(Serialize, Deserialize)]` — provided by the in-tree
//!   `serde_derive` proc macro (enable the `derive` feature), supporting
//!   named/tuple/unit structs, enums with unit/tuple/struct variants, and the
//!   `#[serde(skip)]` / `#[serde(transparent)]` attributes used here.
//!
//! The in-tree `serde_json` crate renders [`Value`]s to JSON text and parses
//! JSON back. Representation choices match real `serde_json`: newtype
//! structs serialize as their inner value, unit enum variants as strings,
//! data-carrying variants as single-key maps, maps with string keys as JSON
//! objects.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the interchange format between
/// `Serialize`, `Deserialize`, and `serde_json`).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Negative (or explicitly signed) integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Seq(Vec<Value>),
    /// Objects; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key if this is a map.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| value_get(m, key))
    }
}

/// Looks up `key` in a map's entry list (used by derived code).
pub fn value_get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a self-describing value.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting a [`DeError`] on shape or range mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// A `Value` serializes and deserializes as itself, so callers can work
// with dynamic JSON (e.g. inspect unknown request bodies) through the
// same `to_string`/`from_str` entry points as typed data.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    _ => return Err(DeError::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(u).map_err(|_| DeError::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| DeError::custom(concat!(stringify!($t), " out of range")))?,
                    _ => return Err(DeError::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(i).map_err(|_| DeError::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            _ => Err(DeError::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let vec = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(vec).map_err(|_| DeError::custom("wrong array length"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::custom("expected tuple sequence"))?;
                let expected = [$($idx),+].len();
                if s.len() != expected {
                    return Err(DeError::custom("wrong tuple length"));
                }
                Ok(($($name::from_value(&s[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

/// Canonical ordering on values, used to sort hash-map entries so output
/// is deterministic.
fn value_cmp(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::UInt(_) | Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::Seq(_) => 4,
            Value::Map(_) => 5,
        }
    }
    fn as_f64(v: &Value) -> f64 {
        match v {
            Value::Int(i) => *i as f64,
            Value::UInt(u) => *u as f64,
            Value::Float(f) => *f,
            _ => 0.0,
        }
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::UInt(x), Value::UInt(y)) => x.cmp(y),
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Seq(x), Value::Seq(y)) => {
            for (xi, yi) in x.iter().zip(y.iter()) {
                match value_cmp(xi, yi) {
                    Ordering::Equal => {}
                    other => return other,
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Map(x), Value::Map(y)) => {
            for ((xk, xv), (yk, yv)) in x.iter().zip(y.iter()) {
                match xk.cmp(yk) {
                    Ordering::Equal => {}
                    other => return other,
                }
                match value_cmp(xv, yv) {
                    Ordering::Equal => {}
                    other => return other,
                }
            }
            x.len().cmp(&y.len())
        }
        _ if rank(a) == 2 && rank(b) == 2 => as_f64(a).total_cmp(&as_f64(b)),
        _ => rank(a).cmp(&rank(b)),
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // String-keyed maps become JSON objects; other key types (tuples,
        // integers, ...) become a sequence of [key, value] pairs, which
        // round-trips where a JSON object could not. Sorted either way for
        // deterministic output.
        let mut entries: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| value_cmp(&a.0, &b.0));
        if entries.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
            Value::Map(
                entries
                    .into_iter()
                    .map(|(k, v)| match k {
                        Value::Str(s) => (s, v),
                        _ => unreachable!(),
                    })
                    .collect(),
            )
        } else {
            Value::Seq(
                entries
                    .into_iter()
                    .map(|(k, v)| Value::Seq(vec![k, v]))
                    .collect(),
            )
        }
    }
}
impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(v)?)))
                .collect(),
            Value::Seq(items) => items
                .iter()
                .map(|item| match item.as_seq() {
                    Some(pair) if pair.len() == 2 => {
                        Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
                    }
                    _ => Err(DeError::custom("expected [key, value] pair")),
                })
                .collect(),
            _ => Err(DeError::custom("expected map or sequence of pairs")),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".into())
        );
    }

    #[test]
    fn signed_nonnegative_serializes_as_uint() {
        assert_eq!(5i64.to_value(), Value::UInt(5));
        assert_eq!((-5i64).to_value(), Value::Int(-5));
    }

    #[test]
    fn range_checks_fail() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn options_use_null() {
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Some(3u32).to_value(), Value::UInt(3));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));
        let t = (1u8, -2i32, 3.5f64);
        assert_eq!(<(u8, i32, f64)>::from_value(&t.to_value()), Ok(t));
    }
}
