//! Minimal offline `crossbeam::scope` shim backed by `std::thread::scope`.
//!
//! Only the scoped-spawn API this workspace's benchmarks use is provided:
//! `crossbeam::scope(|s| { s.spawn(|_| ...); ... })` returning a `Result`.

use std::thread;

/// A scope handle passed to [`scope`]'s closure and to spawned closures.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope (so it can
    /// spawn siblings), mirroring crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&Scope { inner: inner_scope })),
        }
    }
}

/// Join handle for a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread and returns its result (`Err` if it panicked).
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned; all
/// threads are joined before this returns.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_borrowed_data() {
        let data = [1u64, 2, 3, 4];
        let total = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
