//! Minimal offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements the subset of the API this workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`]
//! (`throughput`/`sample_size`/`bench_function`/`bench_with_input`/`finish`),
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical analysis, each benchmark is warmed up
//! briefly, then timed for a fixed wall-clock budget; the mean time per
//! iteration (and derived throughput, when declared) is printed in a
//! `cargo bench`-style line. Set `CRITERION_BUDGET_MS` to change the
//! per-benchmark measurement budget (default 300 ms).

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark driver; create groups via [`Criterion::benchmark_group`].
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            budget: budget_from_env(),
        }
    }
}

fn budget_from_env() -> Duration {
    let ms = std::env::var("CRITERION_BUDGET_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms)
}

/// Declares how much work one benchmark iteration performs.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies a parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    budget: Duration,
}

impl BenchmarkGroup {
    /// Sets the per-iteration work declaration for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the time budget drives sampling here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Runs one benchmark closure with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up and calibration: find an iteration count that takes a
        // measurable slice of the budget.
        f(&mut bencher);
        let mut per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let slice = (self.budget / 10).max(Duration::from_millis(1));
        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let n = (slice.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64;
            bencher.iters = n;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            total += bencher.elapsed;
            total_iters += n;
            per_iter = bencher.elapsed / n as u32;
        }

        let ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(e)) => {
                format!("  {:>12.1} Melem/s", e as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(b)) => {
                format!("  {:>12.1} MiB/s", b as f64 / ns * 1e9 / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!("  {}/{id:<32} {ns:>14.1} ns/iter{rate}", self.name);
    }
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the hot code.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Collects benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $bench(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_a_trivial_routine() {
        std::env::set_var("CRITERION_BUDGET_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.throughput(Throughput::Elements(4));
        let mut ran = false;
        group.bench_function("sum", |b| {
            ran = true;
            b.iter(|| (0u64..4).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("abc").to_string(), "abc");
    }
}
