//! Property-based tests for the baseline detectors.

use hifind_baselines::{
    connection_attempts, Cpm, CpmConfig, Pcf, PcfConfig, Superspreader, SuperspreaderConfig, Trw,
    TrwConfig,
};
use hifind_flow::{Ip4, Packet, Trace};
use proptest::prelude::*;

fn scan_trace(scanner: u32, probes: u32, answered_every: u32) -> Trace {
    let mut t = Trace::new();
    let src = Ip4::new(scanner);
    for i in 0..probes {
        let dst: Ip4 = [10, 0, (i >> 8) as u8, i as u8].into();
        t.push(Packet::syn(i as u64 * 10, src, 2000, dst, 445));
        if answered_every > 0 && i % answered_every == 0 {
            t.push(Packet::syn_ack(i as u64 * 10 + 1, src, 2000, dst, 445));
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// TRW flags any pure-failure scanner with enough probes, and the
    /// decision uses no more probes than the SPRT bound (≈ log η1 /
    /// log((1−θ1)/(1−θ0)) consecutive failures).
    #[test]
    fn trw_decision_bound(scanner in 1u32..u32::MAX, probes in 20u32..200) {
        let (alerts, _) = Trw::detect(&scan_trace(scanner, probes, 0), TrwConfig::default());
        prop_assert_eq!(alerts.len(), 1);
        let cfg = TrwConfig::default();
        let bound = ((cfg.beta / cfg.alpha).ln()
            / ((1.0 - cfg.theta1) / (1.0 - cfg.theta0)).ln())
            .ceil() as u32;
        prop_assert!(alerts[0].failures <= bound + 1, "{} > {}", alerts[0].failures, bound);
    }

    /// TRW never alerts on a source whose every first contact succeeds.
    #[test]
    fn trw_never_flags_perfect_source(scanner in 1u32..u32::MAX, probes in 1u32..300) {
        let (alerts, _) = Trw::detect(&scan_trace(scanner, probes, 1), TrwConfig::default());
        prop_assert!(alerts.is_empty());
    }

    /// TRW state grows linearly with distinct sources (the DoS surface).
    #[test]
    fn trw_state_tracks_sources(sources in 1usize..500) {
        let mut t = Trace::new();
        for i in 0..sources {
            t.push(Packet::syn(
                i as u64,
                Ip4::new(0x5000_0000 + i as u32),
                2000,
                [10, 0, 0, 1].into(),
                80,
            ));
        }
        let (_, stats) = Trw::detect(&t, TrwConfig::default());
        prop_assert_eq!(stats.peak_sources, sources);
    }

    /// CPM's CUSUM is non-negative and zero under SYN/FIN balance.
    #[test]
    fn cpm_cusum_invariants(intervals in prop::collection::vec((0u64..5000, 0u64..5000), 1..50)) {
        let mut cpm = Cpm::new(CpmConfig::default());
        for &(syn, fin) in &intervals {
            cpm.step(syn, fin);
            prop_assert!(cpm.cusum() >= 0.0);
        }
        let mut balanced = Cpm::new(CpmConfig::default());
        for _ in 0..20 {
            balanced.step(1000, 1000);
            prop_assert!(balanced.cusum() < 1e-9);
        }
    }

    /// PCF: min-over-stages estimate never underestimates a key's true
    /// partial-completion count (non-negative updates).
    #[test]
    fn pcf_never_underestimates(key in any::<u64>(), value in 1i64..1000, noise in prop::collection::vec(any::<u64>(), 0..500)) {
        let mut pcf = Pcf::new(PcfConfig::default());
        for _ in 0..value {
            pcf.update(key, 1);
        }
        for &n in &noise {
            pcf.update(n, 1);
        }
        prop_assert!(pcf.estimate(key) >= value);
    }

    /// Superspreader estimates scale with true fan-out within sampling
    /// tolerance.
    #[test]
    fn superspreader_estimate_tracks_fanout(fanout in 2000u32..8000) {
        let src = Ip4::new(0x0808_0808);
        let mut t = Trace::new();
        for i in 0..fanout {
            t.push(Packet::syn(i as u64, src, 1, Ip4::new(0x0A00_0000 + i), 80));
        }
        let found = Superspreader::detect(&t, SuperspreaderConfig::default());
        let (_, est) = found.iter().find(|&&(s, _)| s == src).copied().expect("flagged");
        let rel = est as f64 / fanout as f64;
        prop_assert!((0.6..1.5).contains(&rel), "estimate {est} vs true {fanout}");
    }

    /// Attempt reconstruction: attempts ≤ SYN count, and every attempt's
    /// timestamp comes from an observed SYN.
    #[test]
    fn attempts_are_consistent(packets in prop::collection::vec((any::<u32>(), any::<u32>(), any::<u16>(), 0u64..100_000), 0..200)) {
        let mut t = Trace::new();
        for &(c, s, port, ts) in &packets {
            t.push(Packet::syn(ts, Ip4::new(c), 1000, Ip4::new(s), port));
        }
        t.sort_by_time();
        let attempts = connection_attempts(&t);
        prop_assert!(attempts.len() <= t.len());
        for w in attempts.windows(2) {
            prop_assert!(w[0].ts_ms <= w[1].ts_ms);
        }
    }
}
