//! Threshold Random Walk portscan detection (Jung et al., Oakland'04).

use crate::util::{connection_attempts, Attempt};
use hifind_flow::{Ip4, Trace};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// TRW parameters. Defaults follow the original paper: the test is tuned by
/// the benign/scanner success likelihoods `θ0`/`θ1` and the desired
/// false-positive/-negative rates `α`/`β`, which give the two likelihood
/// thresholds `η1 = β/α` (declare scanner) and `η0 = (1−β)/(1−α)` (declare
/// benign).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrwConfig {
    /// `Pr[first contact succeeds | benign source]` (paper: 0.8).
    pub theta0: f64,
    /// `Pr[first contact succeeds | scanner]` (paper: 0.2).
    pub theta1: f64,
    /// Desired false positive rate (paper: 0.01).
    pub alpha: f64,
    /// Desired detection rate (paper: 0.99).
    pub beta: f64,
}

impl Default for TrwConfig {
    fn default() -> Self {
        TrwConfig {
            theta0: 0.8,
            theta1: 0.2,
            alpha: 0.01,
            beta: 0.99,
        }
    }
}

/// A source flagged as a scanner.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrwAlert {
    /// The flagged source address.
    pub source: Ip4,
    /// When the likelihood ratio crossed `η1` (ms).
    pub decided_at_ms: u64,
    /// Failed first contacts observed up to the decision.
    pub failures: u32,
    /// Successful first contacts observed up to the decision.
    pub successes: u32,
}

/// Per-source sequential hypothesis testing over first-contact outcomes.
///
/// This keeps **per-source and per-(source, destination) state**, which is
/// exactly the memory vulnerability HiFIND avoids: a spoofed flood creates
/// one walk per spoofed address (see [`Trw::peak_sources`] and the
/// `dos_resilience` experiment).
#[derive(Clone, Debug)]
pub struct Trw {
    config: TrwConfig,
    log_eta1: f64,
    log_eta0: f64,
    log_succ: f64,
    log_fail: f64,
    /// Per-source running log-likelihood ratio (None once decided).
    walks: HashMap<u32, WalkState>,
    first_contacts: HashSet<(u32, u32)>,
    alerts: Vec<TrwAlert>,
    peak_sources: usize,
}

#[derive(Clone, Copy, Debug)]
struct WalkState {
    log_ratio: f64,
    failures: u32,
    successes: u32,
    decided: bool,
}

impl Trw {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if the likelihoods/rates are outside `(0, 1)` or
    /// `theta1 >= theta0`.
    pub fn new(config: TrwConfig) -> Self {
        for v in [config.theta0, config.theta1, config.alpha, config.beta] {
            assert!(v > 0.0 && v < 1.0, "TRW parameters must lie in (0, 1)");
        }
        assert!(
            config.theta1 < config.theta0,
            "scanners must succeed less often than benign sources"
        );
        Trw {
            config,
            log_eta1: (config.beta / config.alpha).ln(),
            log_eta0: ((1.0 - config.beta) / (1.0 - config.alpha)).ln(),
            log_succ: (config.theta1 / config.theta0).ln(),
            log_fail: ((1.0 - config.theta1) / (1.0 - config.theta0)).ln(),
            walks: HashMap::new(),
            first_contacts: HashSet::new(),
            alerts: Vec::new(),
            peak_sources: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TrwConfig {
        &self.config
    }

    /// Feeds one reconstructed attempt (must be fed in time order).
    pub fn observe(&mut self, attempt: &Attempt) {
        // Only first contacts to a *new* destination drive the walk.
        if !self
            .first_contacts
            .insert((attempt.client.raw(), attempt.server.raw()))
        {
            return;
        }
        let walk = self.walks.entry(attempt.client.raw()).or_insert(WalkState {
            log_ratio: 0.0,
            failures: 0,
            successes: 0,
            decided: false,
        });
        let mut alert = None;
        if !walk.decided {
            if attempt.outcome.is_failure() {
                walk.log_ratio += self.log_fail;
                walk.failures += 1;
            } else {
                walk.log_ratio += self.log_succ;
                walk.successes += 1;
            }
            if walk.log_ratio >= self.log_eta1 {
                walk.decided = true;
                alert = Some(TrwAlert {
                    source: attempt.client,
                    decided_at_ms: attempt.ts_ms,
                    failures: walk.failures,
                    successes: walk.successes,
                });
            } else if walk.log_ratio <= self.log_eta0 {
                // Declared benign. The SPRT is a sequential *decision*
                // procedure: reaching η0 terminates the test for this
                // source (this is why scans with interleaved successful
                // connections evade TRW — the HiFIND paper's §5.3.1
                // observation).
                walk.decided = true;
            }
        }
        if let Some(a) = alert {
            self.alerts.push(a);
        }
        self.peak_sources = self.peak_sources.max(self.walks.len());
    }

    /// Runs the detector over a whole trace and returns the scanner alerts.
    pub fn detect(trace: &Trace, config: TrwConfig) -> (Vec<TrwAlert>, TrwStats) {
        let mut trw = Trw::new(config);
        for attempt in connection_attempts(trace) {
            trw.observe(&attempt);
        }
        let stats = trw.stats();
        (trw.alerts, stats)
    }

    /// Alerts raised so far.
    pub fn alerts(&self) -> &[TrwAlert] {
        &self.alerts
    }

    /// Current memory statistics.
    pub fn stats(&self) -> TrwStats {
        TrwStats {
            sources_tracked: self.walks.len(),
            peak_sources: self.peak_sources,
            first_contact_pairs: self.first_contacts.len(),
            memory_bytes: self.memory_bytes(),
        }
    }

    /// Approximate bytes held: the per-source walk plus the first-contact
    /// pair set (Table 9's TRW row models this per-flow state analytically).
    pub fn memory_bytes(&self) -> usize {
        self.walks.len() * (4 + 24) * 2 + self.first_contacts.len() * 8 * 2
    }
}

/// Memory/state statistics of a TRW run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrwStats {
    /// Sources with live walk state.
    pub sources_tracked: usize,
    /// Peak simultaneous sources (the DoS-amplified quantity).
    pub peak_sources: usize,
    /// Distinct (source, destination) pairs remembered.
    pub first_contact_pairs: usize,
    /// Approximate bytes held.
    pub memory_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind_flow::Packet;

    fn scan_trace(failures: u32) -> Trace {
        let mut t = Trace::new();
        let scanner: Ip4 = [6, 6, 6, 6].into();
        for i in 0..failures {
            let dst: Ip4 = [129, 105, (i >> 8) as u8, i as u8].into();
            t.push(Packet::syn(i as u64 * 100, scanner, 2000, dst, 445));
        }
        t
    }

    fn benign_trace(conns: u32) -> Trace {
        let mut t = Trace::new();
        let client: Ip4 = [9, 9, 9, 9].into();
        for i in 0..conns {
            let dst: Ip4 = [129, 105, 1, (i % 250) as u8].into();
            t.push(Packet::syn(i as u64 * 50, client, 3000 + i as u16, dst, 80));
            t.push(Packet::syn_ack(
                i as u64 * 50 + 5,
                client,
                3000 + i as u16,
                dst,
                80,
            ));
        }
        t
    }

    #[test]
    fn detects_scanner_quickly() {
        let (alerts, _) = Trw::detect(&scan_trace(20), TrwConfig::default());
        assert_eq!(alerts.len(), 1);
        let a = alerts[0];
        assert_eq!(a.source, Ip4::from([6, 6, 6, 6]));
        // With the default parameters, ~5 consecutive failures decide.
        assert!(a.failures <= 8, "took {} failures", a.failures);
        assert_eq!(a.successes, 0);
    }

    #[test]
    fn benign_source_not_flagged() {
        let (alerts, _) = Trw::detect(&benign_trace(200), TrwConfig::default());
        assert!(alerts.is_empty());
    }

    #[test]
    fn half_successful_scanner_evades_trw() {
        // The paper's observation: scans with interleaved successes stall
        // the walk (HiFIND still catches them via unanswered-SYN counts).
        let mut t = Trace::new();
        let scanner: Ip4 = [7, 7, 7, 7].into();
        for i in 0..400u32 {
            let dst: Ip4 = [129, 105, (i >> 8) as u8, i as u8].into();
            t.push(Packet::syn(i as u64 * 100, scanner, 2000, dst, 80));
            if i % 2 == 0 {
                t.push(Packet::syn_ack(i as u64 * 100 + 5, scanner, 2000, dst, 80));
            }
        }
        let (alerts, _) = Trw::detect(&t, TrwConfig::default());
        assert!(
            alerts.is_empty(),
            "50% success rate should stall the default walk"
        );
    }

    #[test]
    fn slow_scanner_still_caught_eventually() {
        // TRW has no per-interval threshold: evidence accumulates across
        // the whole trace (the scans TRW catches that HiFIND misses).
        let mut t = Trace::new();
        let scanner: Ip4 = [8, 8, 8, 8].into();
        for i in 0..30u32 {
            let dst: Ip4 = [129, 105, 0, i as u8].into();
            // One probe a minute: far below HiFIND's 60/interval threshold.
            t.push(Packet::syn(i as u64 * 60_000, scanner, 2000, dst, 23));
        }
        let (alerts, _) = Trw::detect(&t, TrwConfig::default());
        assert_eq!(alerts.len(), 1);
    }

    #[test]
    fn repeated_contacts_to_same_destination_ignored() {
        let mut t = Trace::new();
        let src: Ip4 = [5, 5, 5, 5].into();
        let dst: Ip4 = [129, 105, 0, 1].into();
        for i in 0..50u32 {
            t.push(Packet::syn(i as u64 * 10, src, 2000 + i as u16, dst, 80));
        }
        let (alerts, stats) = Trw::detect(&t, TrwConfig::default());
        assert!(alerts.is_empty(), "one destination is not a scan");
        assert_eq!(stats.first_contact_pairs, 1);
    }

    #[test]
    fn spoofed_flood_explodes_state() {
        // The DoS vulnerability: every spoofed source creates a walk.
        let mut t = Trace::new();
        for i in 0..10_000u32 {
            let spoofed: Ip4 = Ip4::new(0x5000_0000 + i);
            let dst: Ip4 = [129, 105, 0, 1].into();
            t.push(Packet::syn(i as u64, spoofed, 2000, dst, 80));
        }
        let (_, stats) = Trw::detect(&t, TrwConfig::default());
        assert!(stats.peak_sources >= 10_000);
        assert!(stats.memory_bytes > 10_000 * 8);
    }

    #[test]
    #[should_panic(expected = "succeed less often")]
    fn rejects_inverted_thetas() {
        let _ = Trw::new(TrwConfig {
            theta0: 0.2,
            theta1: 0.8,
            ..TrwConfig::default()
        });
    }
}
