//! Superspreader detection (Venkataraman, Song, Gibbons & Blum, NDSS'05).
//!
//! A *superspreader* is a source contacting more than `k` distinct
//! destinations. The one-level filtering algorithm samples (source,
//! destination) pairs **by hash**, so duplicate packets of the same pair
//! are sampled consistently and only distinct contacts count; a source is
//! reported when its sampled-contact count implies > k distinct
//! destinations.
//!
//! The HiFIND paper's critique (Table 1): destination-fan-out alone cannot
//! tell scanning from legitimate fan-out (P2P clients contact hundreds of
//! peers), so the detector has inherent false positives and cannot
//! distinguish attack types — demonstrated in this module's tests.

use hifind_flow::rng::SplitMix64;
use hifind_flow::{Ip4, SegmentKind, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Superspreader parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SuperspreaderConfig {
    /// Fan-out threshold `k`: sources contacting more than `k` distinct
    /// destinations are superspreaders.
    pub k: u64,
    /// Sampling probability for (src, dst) pairs.
    pub sample_prob: f64,
    /// Hash seed for consistent pair sampling.
    pub seed: u64,
}

impl Default for SuperspreaderConfig {
    fn default() -> Self {
        SuperspreaderConfig {
            k: 200,
            sample_prob: 0.1,
            seed: 0x5550,
        }
    }
}

/// The one-level filtering superspreader detector.
#[derive(Clone, Debug)]
pub struct Superspreader {
    config: SuperspreaderConfig,
    hash_a: u64,
    /// Per-source count of *sampled distinct* destinations.
    counts: HashMap<u32, u64>,
    /// Sampled pairs already counted (distinctness guard).
    sampled_pairs: std::collections::HashSet<u64>,
    threshold_count: u64,
}

impl Superspreader {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `sample_prob` is outside `(0, 1]` or `k == 0`.
    pub fn new(config: SuperspreaderConfig) -> Self {
        assert!(
            config.sample_prob > 0.0 && config.sample_prob <= 1.0,
            "sample probability must be in (0, 1]"
        );
        assert!(config.k > 0, "fan-out threshold must be positive");
        let mut rng = SplitMix64::new(config.seed);
        Superspreader {
            config,
            hash_a: rng.next_u64() | 1,
            counts: HashMap::new(),
            sampled_pairs: std::collections::HashSet::new(),
            // Expected sampled contacts at the threshold.
            threshold_count: ((config.k as f64) * config.sample_prob).ceil() as u64,
        }
    }

    /// Feeds one SYN's (source, destination) pair.
    pub fn observe(&mut self, src: Ip4, dst: Ip4) {
        // Hash-based sampling: the decision is a pure function of the pair,
        // so duplicates never double-count.
        let pair = ((src.raw() as u64) << 32) | dst.raw() as u64;
        let h = pair.wrapping_mul(self.hash_a) >> 11;
        let cut = (self.config.sample_prob * (1u64 << 53) as f64) as u64;
        if h & ((1 << 53) - 1) < cut && self.sampled_pairs.insert(pair) {
            *self.counts.entry(src.raw()).or_insert(0) += 1;
        }
    }

    /// Sources whose estimated distinct fan-out exceeds `k`, with the
    /// estimate (sampled count / sampling probability).
    pub fn report(&self) -> Vec<(Ip4, u64)> {
        let mut out: Vec<(Ip4, u64)> = self
            .counts
            .iter()
            .filter(|&(_, &c)| c >= self.threshold_count.max(1))
            .map(|(&s, &c)| {
                (
                    Ip4::new(s),
                    (c as f64 / self.config.sample_prob).round() as u64,
                )
            })
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Runs over a trace (SYNs only) and reports superspreaders.
    pub fn detect(trace: &Trace, config: SuperspreaderConfig) -> Vec<(Ip4, u64)> {
        let mut ss = Superspreader::new(config);
        for p in trace.iter() {
            if p.kind == SegmentKind::Syn {
                ss.observe(p.src, p.dst);
            }
        }
        ss.report()
    }

    /// Tracked sources (memory proportional to sampled sources only).
    pub fn tracked_sources(&self) -> usize {
        self.counts.len()
    }
}

impl Default for Superspreader {
    fn default() -> Self {
        Superspreader::new(SuperspreaderConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind_flow::Packet;

    fn fanout_trace(src: Ip4, dsts: u32, repeats: u32) -> Trace {
        let mut t = Trace::new();
        for r in 0..repeats {
            for i in 0..dsts {
                let dst: Ip4 = [10, (i >> 8) as u8, i as u8, 1].into();
                t.push(Packet::syn((r * dsts + i) as u64, src, 2000, dst, 80));
            }
        }
        t
    }

    #[test]
    fn detects_high_fanout_source() {
        let scanner: Ip4 = [6, 6, 6, 6].into();
        let found = Superspreader::detect(
            &fanout_trace(scanner, 5000, 1),
            SuperspreaderConfig::default(),
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, scanner);
        let est = found[0].1;
        assert!(
            (3500..6500).contains(&est),
            "estimate {est} too far from 5000"
        );
    }

    #[test]
    fn low_fanout_source_not_reported() {
        let client: Ip4 = [9, 9, 9, 9].into();
        let found =
            Superspreader::detect(&fanout_trace(client, 50, 1), SuperspreaderConfig::default());
        assert!(found.is_empty());
    }

    #[test]
    fn duplicates_do_not_inflate_estimate() {
        let src: Ip4 = [7, 7, 7, 7].into();
        let once =
            Superspreader::detect(&fanout_trace(src, 5000, 1), SuperspreaderConfig::default());
        let five_times =
            Superspreader::detect(&fanout_trace(src, 5000, 5), SuperspreaderConfig::default());
        assert_eq!(once, five_times, "hash sampling must be duplicate-stable");
    }

    #[test]
    fn p2p_like_traffic_is_a_false_positive() {
        // The paper's critique: a P2P host contacting many peers — with
        // *successful* handshakes — still trips fan-out detection.
        let peer: Ip4 = [8, 8, 8, 8].into();
        let mut t = Trace::new();
        for i in 0..3000u32 {
            let dst: Ip4 = [10, (i >> 8) as u8, i as u8, 1].into();
            t.push(Packet::syn(i as u64 * 2, peer, 2000, dst, 6881));
            t.push(Packet::syn_ack(i as u64 * 2 + 1, peer, 2000, dst, 6881));
        }
        let found = Superspreader::detect(&t, SuperspreaderConfig::default());
        assert!(
            found.iter().any(|&(s, _)| s == peer),
            "fan-out detection cannot exempt benign P2P fan-out"
        );
    }

    #[test]
    fn memory_tracks_only_sampled_sources() {
        let mut ss = Superspreader::new(SuperspreaderConfig {
            sample_prob: 0.01,
            ..SuperspreaderConfig::default()
        });
        for i in 0..10_000u32 {
            ss.observe(Ip4::new(0x5000_0000 + i), [10, 0, 0, 1].into());
        }
        // Each spoofed source has one pair; only ~1% get sampled.
        assert!(
            ss.tracked_sources() < 400,
            "tracked {} sources",
            ss.tracked_sources()
        );
    }

    #[test]
    #[should_panic(expected = "sample probability")]
    fn rejects_zero_sampling() {
        let _ = Superspreader::new(SuperspreaderConfig {
            sample_prob: 0.0,
            ..SuperspreaderConfig::default()
        });
    }
}
