//! Partial Completion Filters (Kompella, Singh & Varghese, IMC'04).
//!
//! A PCF is a bank of hash stages of signed counters updated `+1` on SYN
//! and `−1` on FIN: a key whose connections complete drives its buckets
//! back toward zero, while *partial completions* (floods, scans — anything
//! leaving handshakes open) accumulate. A key is flagged when **all**
//! stages exceed the threshold (min-over-stages, like a count-min sketch).
//!
//! As Table 1 notes, PCF detects that *something* is partially completing
//! at a key but does not differentiate attack types, and it is not
//! reversible — you must already know which keys to check.

use hifind_flow::rng::SplitMix64;
use hifind_flow::{SegmentKind, Trace};
use hifind_hashing::{BucketHasher, PairwiseHasher};
use serde::{Deserialize, Serialize};

/// PCF parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PcfConfig {
    /// Number of hash stages (paper uses ~3).
    pub stages: usize,
    /// Buckets per stage (power of two).
    pub buckets: usize,
    /// Hash seed.
    pub seed: u64,
}

impl Default for PcfConfig {
    fn default() -> Self {
        PcfConfig {
            stages: 3,
            buckets: 1 << 12,
            seed: 0x9CF,
        }
    }
}

/// A partial completion filter keyed by destination address (the paper's
/// "victim detection" configuration).
#[derive(Clone, Debug)]
pub struct Pcf {
    hashers: Vec<PairwiseHasher>,
    counters: Vec<Vec<i64>>,
    buckets: usize,
}

impl Pcf {
    /// Creates an empty filter.
    ///
    /// # Panics
    ///
    /// Panics if `stages == 0` or `buckets` is not a power of two.
    pub fn new(config: PcfConfig) -> Self {
        assert!(config.stages > 0, "stages must be positive");
        assert!(
            config.buckets.is_power_of_two(),
            "buckets must be a power of two"
        );
        let mut rng = SplitMix64::new(config.seed);
        Pcf {
            hashers: (0..config.stages)
                .map(|i| PairwiseHasher::new(&mut rng.fork(i as u64), config.buckets))
                .collect(),
            counters: vec![vec![0; config.buckets]; config.stages],
            buckets: config.buckets,
        }
    }

    /// Adds a signed contribution under `key` (`+1` SYN, `−1` FIN).
    #[inline]
    pub fn update(&mut self, key: u64, delta: i64) {
        for (stage, h) in self.hashers.iter().enumerate() {
            self.counters[stage][h.bucket(key)] += delta;
        }
    }

    /// The min-over-stages estimate of `key`'s partial-completion count.
    pub fn estimate(&self, key: u64) -> i64 {
        self.hashers
            .iter()
            .enumerate()
            .map(|(stage, h)| self.counters[stage][h.bucket(key)])
            .min()
            .expect("at least one stage")
    }

    /// Whether `key` exceeds the threshold in **every** stage.
    pub fn check(&self, key: u64, threshold: i64) -> bool {
        self.estimate(key) >= threshold
    }

    /// Runs over a trace keyed by destination address, reporting whether
    /// each given candidate key trips the filter. (PCFs cannot enumerate
    /// keys — that is the reversibility HiFIND adds.)
    pub fn detect_candidates(
        trace: &Trace,
        candidates: &[u64],
        threshold: i64,
        config: PcfConfig,
    ) -> Vec<(u64, bool)> {
        let mut pcf = Pcf::new(config);
        for p in trace.iter() {
            let o = p.orient().expect("TCP segments orient");
            match o.kind {
                SegmentKind::Syn => pcf.update(o.server.raw() as u64, 1),
                SegmentKind::Fin | SegmentKind::Rst => pcf.update(o.server.raw() as u64, -1),
                _ => {}
            }
        }
        candidates
            .iter()
            .map(|&k| (k, pcf.check(k, threshold)))
            .collect()
    }

    /// Zeroes the counters.
    pub fn clear(&mut self) {
        for stage in &mut self.counters {
            stage.fill(0);
        }
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.counters.len() * self.buckets * std::mem::size_of::<i64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completed_connections_cancel() {
        let mut pcf = Pcf::new(PcfConfig::default());
        for _ in 0..100 {
            pcf.update(42, 1);
            pcf.update(42, -1);
        }
        assert_eq!(pcf.estimate(42), 0);
        assert!(!pcf.check(42, 10));
    }

    #[test]
    fn partial_completions_accumulate() {
        let mut pcf = Pcf::new(PcfConfig::default());
        for _ in 0..500 {
            pcf.update(42, 1);
        }
        assert!(pcf.estimate(42) >= 500);
        assert!(pcf.check(42, 100));
    }

    #[test]
    fn min_over_stages_limits_overestimate() {
        let mut pcf = Pcf::new(PcfConfig::default());
        let mut rng = SplitMix64::new(5);
        for _ in 0..20_000 {
            pcf.update(rng.next_u64(), 1);
        }
        // An absent key can only be overestimated by its worst-stage
        // collisions; min-over-stages keeps that small.
        let est = pcf.estimate(0xDEAD_BEEF);
        assert!(est < 50, "phantom estimate {est}");
    }

    #[test]
    fn detect_candidates_flags_victims_only() {
        use hifind_flow::{Ip4, Packet};
        let victim: Ip4 = [129, 105, 0, 5].into();
        let healthy: Ip4 = [129, 105, 0, 6].into();
        let mut t = hifind_flow::Trace::new();
        for i in 0..300u32 {
            // Flooded victim: SYNs never complete.
            t.push(Packet::syn(
                i as u64,
                Ip4::new(0x5000_0000 + i),
                2000,
                victim,
                80,
            ));
            // Healthy server: SYN + FIN teardown.
            let c: Ip4 = [9, 9, 9, (i % 200) as u8].into();
            t.push(Packet::syn(
                i as u64,
                c,
                2000 + (i % 100) as u16,
                healthy,
                80,
            ));
            t.push(Packet::fin(
                i as u64 + 10,
                c,
                2000 + (i % 100) as u16,
                healthy,
                80,
            ));
        }
        t.sort_by_time();
        let results = Pcf::detect_candidates(
            &t,
            &[victim.raw() as u64, healthy.raw() as u64],
            100,
            PcfConfig::default(),
        );
        assert_eq!(results[0], (victim.raw() as u64, true));
        assert_eq!(results[1], (healthy.raw() as u64, false));
    }

    #[test]
    fn clear_and_memory() {
        let mut pcf = Pcf::new(PcfConfig::default());
        pcf.update(1, 100);
        pcf.clear();
        assert_eq!(pcf.estimate(1), 0);
        assert_eq!(pcf.memory_bytes(), 3 * (1 << 12) * 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_buckets() {
        let _ = Pcf::new(PcfConfig {
            buckets: 1000,
            ..PcfConfig::default()
        });
    }
}
