//! TRW with Approximate Caches (Weaver, Staniford & Paxson, USENIX Sec'04).
//!
//! The hardware-oriented variant of TRW bounds memory with two fixed
//! tables: a *connection cache* indexed by a hash of the (source,
//! destination) pair, and a per-source *address cache* holding the random
//! walk counter. The price is aliasing: when the connection cache slot for
//! a new attempt is already occupied by an *established* connection, the
//! attempt is treated as benign and never counted — so a spoofed SYN flood
//! that fills the cache with half-open entries makes real scan probes
//! alias and go unrecorded (footnote 1 of the HiFIND paper: at 20%
//! occupancy, each new scan attempt has a 20% chance of being missed; a
//! sustained 1667 pps spoofed flood pollutes a 1M-entry cache completely
//! within its 10-minute idle timeout).

use crate::util::{connection_attempts, Attempt};
use hifind_flow::rng::SplitMix64;
use hifind_flow::{Ip4, Trace};
use serde::{Deserialize, Serialize};

/// TRW-AC parameters (paper defaults: 1M connection-cache entries,
/// 10-minute idle eviction, count thresholds like the software TRW).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrwAcConfig {
    /// Connection cache entries (paper: 2^20).
    pub conn_cache_entries: usize,
    /// Address cache entries for per-source counters.
    pub addr_cache_entries: usize,
    /// Idle eviction horizon for cached connections (ms; paper: 10 min).
    pub d_conn_ms: u64,
    /// Score increment for a failed first contact.
    pub fail_score: i32,
    /// Score decrement for a successful first contact.
    pub success_score: i32,
    /// Score at which a source is flagged.
    pub flag_threshold: i32,
    /// Hash seed.
    pub seed: u64,
}

impl Default for TrwAcConfig {
    fn default() -> Self {
        TrwAcConfig {
            conn_cache_entries: 1 << 20,
            addr_cache_entries: 1 << 16,
            d_conn_ms: 10 * 60 * 1000,
            fail_score: 1,
            success_score: -1,
            flag_threshold: 10,
            seed: 0xAC,
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct ConnSlot {
    tag: u64,
    last_seen_ms: u64,
    established: bool,
    occupied: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct AddrSlot {
    tag: u32,
    score: i32,
    flagged: bool,
    occupied: bool,
}

/// The approximate-cache TRW detector.
#[derive(Clone, Debug)]
pub struct TrwAc {
    config: TrwAcConfig,
    conn_cache: Vec<ConnSlot>,
    addr_cache: Vec<AddrSlot>,
    hash_a: u64,
    hash_b: u64,
    alerts: Vec<Ip4>,
    aliased_attempts: u64,
    total_attempts: u64,
}

impl TrwAc {
    /// Creates a detector with the given fixed cache sizes.
    ///
    /// # Panics
    ///
    /// Panics if either cache size is zero or not a power of two.
    pub fn new(config: TrwAcConfig) -> Self {
        assert!(
            config.conn_cache_entries.is_power_of_two() && config.conn_cache_entries > 0,
            "connection cache size must be a power of two"
        );
        assert!(
            config.addr_cache_entries.is_power_of_two() && config.addr_cache_entries > 0,
            "address cache size must be a power of two"
        );
        let mut rng = SplitMix64::new(config.seed);
        TrwAc {
            config,
            conn_cache: vec![ConnSlot::default(); config.conn_cache_entries],
            addr_cache: vec![AddrSlot::default(); config.addr_cache_entries],
            hash_a: rng.next_u64() | 1,
            hash_b: rng.next_u64() | 1,
            alerts: Vec::new(),
            aliased_attempts: 0,
            total_attempts: 0,
        }
    }

    /// Feeds one reconstructed attempt in time order.
    pub fn observe(&mut self, attempt: &Attempt) {
        self.total_attempts += 1;
        let pair_key = ((attempt.client.raw() as u64) << 32) | attempt.server.raw() as u64;
        let idx = (pair_key.wrapping_mul(self.hash_a) >> 40) as usize % self.conn_cache_entries();
        let tag = pair_key.wrapping_mul(self.hash_b);
        let d_conn = self.config.d_conn_ms;
        let slot = &mut self.conn_cache[idx];
        // Idle eviction.
        if slot.occupied && attempt.ts_ms.saturating_sub(slot.last_seen_ms) > d_conn {
            *slot = ConnSlot::default();
        }
        if slot.occupied && slot.tag != tag {
            // Aliased with another live connection: the attempt is treated
            // as part of that connection and never scored. This is the
            // pollution channel.
            self.aliased_attempts += 1;
            slot.last_seen_ms = attempt.ts_ms;
            return;
        }
        let first_contact = !slot.occupied;
        slot.occupied = true;
        slot.tag = tag;
        slot.last_seen_ms = attempt.ts_ms;
        let success = !attempt.outcome.is_failure();
        if success {
            slot.established = true;
        }
        if !first_contact {
            return;
        }
        // Score the source in the address cache.
        let a_idx = (attempt.client.raw() as u64).wrapping_mul(self.hash_a) as usize
            % self.config.addr_cache_entries;
        let a_slot = &mut self.addr_cache[a_idx];
        if a_slot.occupied && a_slot.tag != attempt.client.raw() {
            // Address-cache collision: the slot is recycled for the new
            // source (approximation inherent to the design).
            *a_slot = AddrSlot {
                tag: attempt.client.raw(),
                score: 0,
                flagged: false,
                occupied: true,
            };
        } else if !a_slot.occupied {
            *a_slot = AddrSlot {
                tag: attempt.client.raw(),
                score: 0,
                flagged: false,
                occupied: true,
            };
        }
        a_slot.score += if success {
            self.config.success_score
        } else {
            self.config.fail_score
        };
        a_slot.score = a_slot.score.max(-self.config.flag_threshold);
        if !a_slot.flagged && a_slot.score >= self.config.flag_threshold {
            a_slot.flagged = true;
            self.alerts.push(attempt.client);
        }
    }

    /// Runs over a whole trace.
    pub fn detect(trace: &Trace, config: TrwAcConfig) -> (Vec<Ip4>, TrwAcStats) {
        let mut ac = TrwAc::new(config);
        for attempt in connection_attempts(trace) {
            ac.observe(&attempt);
        }
        let stats = ac.stats();
        (ac.alerts, stats)
    }

    /// Sources flagged so far.
    pub fn alerts(&self) -> &[Ip4] {
        &self.alerts
    }

    /// Fraction of connection-cache slots currently occupied.
    pub fn cache_occupancy(&self) -> f64 {
        let occupied = self.conn_cache.iter().filter(|s| s.occupied).count();
        occupied as f64 / self.conn_cache.len() as f64
    }

    /// Run statistics.
    pub fn stats(&self) -> TrwAcStats {
        TrwAcStats {
            cache_occupancy: self.cache_occupancy(),
            aliased_attempts: self.aliased_attempts,
            total_attempts: self.total_attempts,
            memory_bytes: self.conn_cache.len() * std::mem::size_of::<ConnSlot>()
                + self.addr_cache.len() * std::mem::size_of::<AddrSlot>(),
        }
    }

    fn conn_cache_entries(&self) -> usize {
        self.config.conn_cache_entries
    }
}

/// Statistics of a TRW-AC run — `aliased_attempts` is the paper's
/// false-negative channel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TrwAcStats {
    /// Fraction of connection-cache slots occupied at the end of the run.
    pub cache_occupancy: f64,
    /// Attempts that aliased with a live cached connection (unscored).
    pub aliased_attempts: u64,
    /// Total attempts fed.
    pub total_attempts: u64,
    /// Fixed memory held (the whole point of the design).
    pub memory_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind_flow::Packet;

    fn small_config() -> TrwAcConfig {
        TrwAcConfig {
            conn_cache_entries: 1 << 10,
            addr_cache_entries: 1 << 10,
            ..TrwAcConfig::default()
        }
    }

    fn scan_trace(start_ms: u64, scanner: Ip4, probes: u32) -> Trace {
        let mut t = Trace::new();
        for i in 0..probes {
            let dst: Ip4 = [129, 105, (i >> 8) as u8, i as u8].into();
            t.push(Packet::syn(
                start_ms + i as u64 * 100,
                scanner,
                2000,
                dst,
                445,
            ));
        }
        t
    }

    #[test]
    fn detects_scanner_with_empty_cache() {
        let scanner: Ip4 = [6, 6, 6, 6].into();
        let (alerts, stats) = TrwAc::detect(&scan_trace(0, scanner, 50), small_config());
        assert_eq!(alerts, vec![scanner]);
        assert_eq!(stats.aliased_attempts, 0);
    }

    #[test]
    fn fixed_memory_regardless_of_flood() {
        let cfg = small_config();
        let before = TrwAc::new(cfg).stats().memory_bytes;
        let mut t = Trace::new();
        for i in 0..50_000u32 {
            let spoofed = Ip4::new(0x5000_0000 + i);
            t.push(Packet::syn(
                i as u64,
                spoofed,
                2000,
                [129, 105, 0, 1].into(),
                80,
            ));
        }
        let (_, stats) = TrwAc::detect(&t, cfg);
        assert_eq!(
            stats.memory_bytes, before,
            "TRW-AC memory must not grow under flood"
        );
    }

    #[test]
    fn spoofed_flood_pollutes_cache_and_masks_scanner() {
        // Reproduces the paper's footnote-1 attack: flood first, scan after.
        let cfg = small_config();
        let mut t = Trace::new();
        // Spoofed flood: distinct sources to random destinations fills the
        // small cache completely.
        let mut rng = SplitMix64::new(1);
        for i in 0..20_000u32 {
            let spoofed = Ip4::new(0x5000_0000 + i);
            let dst = Ip4::new(0x8169_0000 | (rng.next_u32() & 0xFFFF));
            t.push(Packet::syn(i as u64, spoofed, 2000, dst, 80));
        }
        // Then a real scanner probes while the cache is saturated.
        let scanner: Ip4 = [6, 6, 6, 6].into();
        t.merge(&scan_trace(25_000, scanner, 60));
        let (alerts, stats) = TrwAc::detect(&t, cfg);
        assert!(stats.cache_occupancy > 0.9, "cache should be saturated");
        assert!(stats.aliased_attempts > 0, "scan probes must alias");
        // The scanner evades (or is at best severely delayed): with a
        // saturated cache most of its probes are never scored.
        assert!(
            !alerts.contains(&scanner) || stats.aliased_attempts > 20,
            "cache pollution must suppress scoring"
        );
    }

    #[test]
    fn idle_entries_are_evicted() {
        let cfg = TrwAcConfig {
            conn_cache_entries: 1 << 4,
            addr_cache_entries: 1 << 4,
            d_conn_ms: 1000,
            ..TrwAcConfig::default()
        };
        let mut ac = TrwAc::new(cfg);
        let a = Attempt {
            client: [1, 1, 1, 1].into(),
            server: [2, 2, 2, 2].into(),
            client_port: 1,
            server_port: 80,
            ts_ms: 0,
            outcome: crate::util::Outcome::Timeout,
        };
        ac.observe(&a);
        assert!(ac.cache_occupancy() > 0.0);
        // Much later, a different pair hashing anywhere: old entries
        // evict on contact; simulate by touching the same slot after
        // expiry.
        let mut b = a;
        b.ts_ms = 10_000;
        ac.observe(&b); // same pair, expired → treated as fresh first contact
        assert_eq!(ac.stats().aliased_attempts, 0);
    }

    #[test]
    fn benign_traffic_not_flagged() {
        let mut t = Trace::new();
        let client: Ip4 = [9, 9, 9, 9].into();
        for i in 0..100u32 {
            let dst: Ip4 = [129, 105, 1, (i % 200) as u8].into();
            t.push(Packet::syn(i as u64 * 50, client, 3000 + i as u16, dst, 80));
            t.push(Packet::syn_ack(
                i as u64 * 50 + 3,
                client,
                3000 + i as u16,
                dst,
                80,
            ));
        }
        let (alerts, _) = TrwAc::detect(&t, small_config());
        assert!(alerts.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_cache() {
        let _ = TrwAc::new(TrwAcConfig {
            conn_cache_entries: 1000,
            ..TrwAcConfig::default()
        });
    }
}
