//! Connection-attempt reconstruction shared by the TRW-family baselines.

use hifind_flow::{Ip4, SegmentKind, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The outcome of one connection attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// The server answered with SYN/ACK.
    Success,
    /// The server refused with RST.
    Refused,
    /// Nothing came back (timeout / dead host / flooded backlog).
    Timeout,
}

impl Outcome {
    /// Whether TRW counts this outcome as a failed first contact.
    pub fn is_failure(self) -> bool {
        !matches!(self, Outcome::Success)
    }
}

/// One reconstructed connection attempt (SYN retransmissions collapsed).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attempt {
    /// Initiating client.
    pub client: Ip4,
    /// Contacted server.
    pub server: Ip4,
    /// Client (ephemeral) port.
    pub client_port: u16,
    /// Server port.
    pub server_port: u16,
    /// Timestamp of the first SYN (ms).
    pub ts_ms: u64,
    /// How the attempt ended.
    pub outcome: Outcome,
}

/// Reconstructs connection attempts from a trace.
///
/// Attempts are keyed by the full 4-tuple; a SYN/ACK anywhere after the
/// first SYN marks success, an RST marks refusal, and anything else is a
/// timeout. Attempts are returned ordered by first-SYN time, which is the
/// order TRW's sequential test consumes them in.
pub fn connection_attempts(trace: &Trace) -> Vec<Attempt> {
    #[derive(Clone, Copy)]
    struct Slot {
        first_syn_ms: u64,
        outcome: Outcome,
        order: usize,
    }
    let mut slots: HashMap<(u32, u32, u16, u16), Slot> = HashMap::new();
    let mut order = 0usize;
    for p in trace.iter() {
        let o = p.orient().expect("TCP segments orient");
        let key = (o.client.raw(), o.server.raw(), o.client_port, o.server_port);
        match o.kind {
            SegmentKind::Syn => {
                slots.entry(key).or_insert_with(|| {
                    order += 1;
                    Slot {
                        first_syn_ms: o.ts_ms,
                        outcome: Outcome::Timeout,
                        order: order - 1,
                    }
                });
            }
            SegmentKind::SynAck => {
                if let Some(s) = slots.get_mut(&key) {
                    s.outcome = Outcome::Success;
                }
            }
            SegmentKind::Rst => {
                if let Some(s) = slots.get_mut(&key) {
                    if s.outcome == Outcome::Timeout {
                        s.outcome = Outcome::Refused;
                    }
                }
            }
            SegmentKind::Fin | SegmentKind::Other => {}
        }
    }
    let mut attempts: Vec<(usize, Attempt)> = slots
        .into_iter()
        .map(|((c, s, cp, sp), slot)| {
            (
                slot.order,
                Attempt {
                    client: Ip4::new(c),
                    server: Ip4::new(s),
                    client_port: cp,
                    server_port: sp,
                    ts_ms: slot.first_syn_ms,
                    outcome: slot.outcome,
                },
            )
        })
        .collect();
    attempts.sort_by_key(|&(order, a)| (a.ts_ms, order));
    attempts.into_iter().map(|(_, a)| a).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind_flow::Packet;

    fn c() -> Ip4 {
        [1, 1, 1, 1].into()
    }
    fn s() -> Ip4 {
        [2, 2, 2, 2].into()
    }

    #[test]
    fn success_refused_timeout() {
        let mut t = Trace::new();
        t.push(Packet::syn(0, c(), 1000, s(), 80));
        t.push(Packet::syn_ack(5, c(), 1000, s(), 80));
        t.push(Packet::syn(10, c(), 1001, s(), 22));
        t.push(Packet::rst(12, c(), 1001, s(), 22));
        t.push(Packet::syn(20, c(), 1002, s(), 443));
        let attempts = connection_attempts(&t);
        assert_eq!(attempts.len(), 3);
        assert_eq!(attempts[0].outcome, Outcome::Success);
        assert_eq!(attempts[1].outcome, Outcome::Refused);
        assert_eq!(attempts[2].outcome, Outcome::Timeout);
        assert!(attempts[1].outcome.is_failure());
        assert!(attempts[2].outcome.is_failure());
        assert!(!attempts[0].outcome.is_failure());
    }

    #[test]
    fn retransmissions_collapse() {
        let mut t = Trace::new();
        t.push(Packet::syn(0, c(), 1000, s(), 80));
        t.push(Packet::syn(3000, c(), 1000, s(), 80));
        t.push(Packet::syn(9000, c(), 1000, s(), 80));
        let attempts = connection_attempts(&t);
        assert_eq!(attempts.len(), 1);
        assert_eq!(attempts[0].ts_ms, 0);
    }

    #[test]
    fn late_synack_still_success() {
        let mut t = Trace::new();
        t.push(Packet::syn(0, c(), 1000, s(), 80));
        t.push(Packet::syn_ack(50_000, c(), 1000, s(), 80));
        assert_eq!(connection_attempts(&t)[0].outcome, Outcome::Success);
    }

    #[test]
    fn synack_beats_earlier_rst() {
        let mut t = Trace::new();
        t.push(Packet::syn(0, c(), 1000, s(), 80));
        t.push(Packet::rst(2, c(), 1000, s(), 80));
        t.push(Packet::syn_ack(4, c(), 1000, s(), 80));
        // Success wins: the handshake eventually completed.
        assert_eq!(connection_attempts(&t)[0].outcome, Outcome::Success);
    }

    #[test]
    fn ordered_by_first_syn_time() {
        let mut t = Trace::new();
        t.push(Packet::syn(100, c(), 1001, s(), 81));
        t.push(Packet::syn(50, c(), 1002, s(), 82));
        t.push(Packet::syn(75, c(), 1003, s(), 83));
        t.sort_by_time();
        let attempts = connection_attempts(&t);
        let times: Vec<u64> = attempts.iter().map(|a| a.ts_ms).collect();
        assert_eq!(times, vec![50, 75, 100]);
    }

    #[test]
    fn distinct_tuples_are_distinct_attempts() {
        let mut t = Trace::new();
        t.push(Packet::syn(0, c(), 1000, s(), 80));
        t.push(Packet::syn(1, c(), 1000, s(), 81)); // different server port
        t.push(Packet::syn(2, c(), 1001, s(), 80)); // different client port
        assert_eq!(connection_attempts(&t).len(), 3);
    }
}
