//! CPM: SYN flooding detection by non-parametric CUSUM over the aggregate
//! SYN/FIN balance (Wang, Zhang & Shin, Infocom'02).
//!
//! CPM watches only two aggregate counters per interval — `#SYN` and
//! `#FIN(+RST)` — normalizes their difference by the smoothed FIN rate,
//! and applies a non-parametric CUSUM. It is cheap and per-flow-stateless,
//! but because it sees only the aggregate it *cannot distinguish SYN
//! flooding from port scans*: a lab trace full of scans (unterminated
//! SYNs) alarms exactly like a flood — Table 6's LBL row, where CPM
//! reports 1426 flooding intervals against zero true floodings.

use hifind_flow::{SegmentKind, Trace};
use serde::{Deserialize, Serialize};

/// CPM parameters (notation follows the original paper).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CpmConfig {
    /// Offset `a`: an upper bound on the normalized difference under
    /// normal operation, subtracted so the drift is negative without
    /// attacks (paper uses ~1).
    pub a: f64,
    /// CUSUM alarm threshold `n` (paper tunes for detection delay; a small
    /// number of intervals).
    pub threshold: f64,
    /// EWMA factor for the smoothed FIN average.
    pub fin_alpha: f64,
}

impl Default for CpmConfig {
    fn default() -> Self {
        CpmConfig {
            a: 1.0,
            threshold: 2.0,
            fin_alpha: 0.2,
        }
    }
}

/// The CUSUM state machine. Feed per-interval counts with
/// [`Cpm::step`]; `true` means the interval is flagged as under SYN
/// flooding.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cpm {
    config: CpmConfig,
    fin_avg: Option<f64>,
    cusum: f64,
}

impl Cpm {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `threshold <= 0` or `fin_alpha` outside `[0, 1]`.
    pub fn new(config: CpmConfig) -> Self {
        assert!(config.threshold > 0.0, "threshold must be positive");
        assert!(
            (0.0..=1.0).contains(&config.fin_alpha),
            "fin_alpha must be in [0, 1]"
        );
        Cpm {
            config,
            fin_avg: None,
            cusum: 0.0,
        }
    }

    /// Feeds one interval's aggregate `#SYN` and `#FIN+#RST` counts;
    /// returns whether the interval is flagged.
    pub fn step(&mut self, syn: u64, fin: u64) -> bool {
        let fin_avg = match self.fin_avg {
            None => {
                self.fin_avg = Some(fin as f64);
                fin as f64
            }
            Some(avg) => {
                let next = self.config.fin_alpha * fin as f64 + (1.0 - self.config.fin_alpha) * avg;
                self.fin_avg = Some(next);
                next
            }
        }
        .max(1.0);
        let x = (syn as f64 - fin as f64) / fin_avg;
        self.cusum = (self.cusum + x - self.config.a).max(0.0);
        self.cusum > self.config.threshold
    }

    /// Current CUSUM value.
    pub fn cusum(&self) -> f64 {
        self.cusum
    }

    /// Runs over a trace with fixed intervals; returns the flagged interval
    /// indices.
    pub fn detect_intervals(trace: &Trace, interval_ms: u64, config: CpmConfig) -> Vec<u64> {
        let mut cpm = Cpm::new(config);
        let mut flagged = Vec::new();
        for window in trace.intervals(interval_ms) {
            let mut syn = 0u64;
            let mut fin = 0u64;
            for p in window.packets {
                match p.kind {
                    SegmentKind::Syn => syn += 1,
                    SegmentKind::Fin | SegmentKind::Rst => fin += 1,
                    _ => {}
                }
            }
            if cpm.step(syn, fin) {
                flagged.push(window.index);
            }
        }
        flagged
    }

    /// Resets the CUSUM and the FIN average.
    pub fn reset(&mut self) {
        self.cusum = 0.0;
        self.fin_avg = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind_flow::{Ip4, Packet};

    /// Balanced traffic: every SYN eventually FINs.
    fn balanced_intervals(cpm: &mut Cpm, n: usize) -> usize {
        (0..n).filter(|_| cpm.step(1000, 980)).count()
    }

    #[test]
    fn balanced_traffic_never_alarms() {
        let mut cpm = Cpm::new(CpmConfig::default());
        assert_eq!(balanced_intervals(&mut cpm, 50), 0);
        assert!(cpm.cusum() < 1e-9);
    }

    #[test]
    fn flood_alarms_within_a_few_intervals() {
        let mut cpm = Cpm::new(CpmConfig::default());
        balanced_intervals(&mut cpm, 10);
        let mut first_alarm = None;
        for i in 0..10 {
            if cpm.step(6000, 980) {
                first_alarm = Some(i);
                break;
            }
        }
        assert!(
            matches!(first_alarm, Some(i) if i <= 3),
            "flood should alarm quickly, got {first_alarm:?}"
        );
    }

    #[test]
    fn alarm_clears_after_attack_ends() {
        let mut cpm = Cpm::new(CpmConfig::default());
        balanced_intervals(&mut cpm, 10);
        for _ in 0..5 {
            cpm.step(6000, 980);
        }
        assert!(cpm.cusum() > 0.0);
        // Normal traffic drains the CUSUM (drift is negative).
        let mut cleared = false;
        for _ in 0..50 {
            if !cpm.step(1000, 980) {
                cleared = true;
                break;
            }
        }
        assert!(cleared, "CUSUM should drain after the flood stops");
    }

    #[test]
    fn scans_false_alarm_cpm() {
        // The aggregate blind spot: a scan-heavy trace (SYNs, no FINs)
        // looks exactly like a flood to CPM.
        let mut t = Trace::new();
        // Benign base load with teardowns.
        for i in 0..2000u32 {
            let c: Ip4 = [9, 9, (i >> 8) as u8, i as u8].into();
            let s: Ip4 = [129, 105, 0, 1].into();
            let ts = i as u64 * 50;
            t.push(Packet::syn(ts, c, 2000, s, 80));
            t.push(Packet::syn_ack(ts + 2, c, 2000, s, 80));
            t.push(Packet::fin(ts + 20, c, 2000, s, 80));
        }
        // A horizontal scan — not a flood.
        for i in 0..3000u32 {
            let scanner: Ip4 = [6, 6, 6, 6].into();
            let dst: Ip4 = [129, 105, (i >> 8) as u8, i as u8].into();
            t.push(Packet::syn(40_000 + i as u64 * 10, scanner, 2000, dst, 445));
        }
        t.sort_by_time();
        let flagged = Cpm::detect_intervals(&t, 10_000, CpmConfig::default());
        assert!(
            !flagged.is_empty(),
            "CPM should (incorrectly) flag the scan as flooding"
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut cpm = Cpm::new(CpmConfig::default());
        cpm.step(5000, 10);
        cpm.reset();
        assert_eq!(cpm.cusum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn rejects_bad_threshold() {
        let _ = Cpm::new(CpmConfig {
            threshold: 0.0,
            ..CpmConfig::default()
        });
    }
}
