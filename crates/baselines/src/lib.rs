//! Baseline detectors the paper compares HiFIND against (Table 1, §5.3).
//!
//! Every baseline is implemented from its original description:
//!
//! * [`trw`] — Threshold Random Walk portscan detection (Jung et al.,
//!   Oakland'04): per-source sequential hypothesis testing over
//!   first-contact connection outcomes. Keeps per-source state — the DoS
//!   vulnerability §3.5 discusses.
//! * [`trw_ac`] — TRW with Approximate Caches (Weaver et al., USENIX
//!   Sec'04): fixed-memory connection cache whose aliasing makes it
//!   resistant to memory exhaustion but lets spoofed floods *pollute* the
//!   cache and mask real scanners.
//! * [`cpm`] — SYN flooding detection via non-parametric CUSUM over the
//!   aggregate SYN/FIN balance (Wang, Zhang & Shin, Infocom'02). Aggregate
//!   only: cannot tell flooding from scans (Table 6, LBL row).
//! * [`backscatter`] — victim-side uniformity analysis of response traffic
//!   (Moore et al., USENIX Sec'01), used in §5.4 to validate detected
//!   spoofed floodings.
//! * [`superspreader`] — hash-sampled distinct-destination counting
//!   (Venkataraman et al., NDSS'05).
//! * [`pcf`] — Partial Completion Filters (Kompella et al., IMC'04):
//!   multi-stage SYN−FIN counters that flag partial-completion behaviour
//!   without identifying the attack type.
//!
//! The shared [`util`] module turns a packet trace into per-connection
//! outcomes (success / failure / reset) the way an offline evaluator of
//! these papers would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backscatter;
pub mod cpm;
pub mod pcf;
pub mod superspreader;
pub mod trw;
pub mod trw_ac;
pub mod util;

pub use backscatter::{backscatter_validate, BackscatterVerdict};
pub use cpm::{Cpm, CpmConfig};
pub use pcf::{Pcf, PcfConfig};
pub use superspreader::{Superspreader, SuperspreaderConfig};
pub use trw::{Trw, TrwAlert, TrwConfig};
pub use trw_ac::{TrwAc, TrwAcConfig};
pub use util::{connection_attempts, Attempt, Outcome};
