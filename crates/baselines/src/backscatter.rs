//! Backscatter analysis (Moore, Voelker & Savage, USENIX Sec'01).
//!
//! A victim of a *randomly spoofed* SYN flood answers the spoofed sources,
//! so its outbound SYN/ACKs spray across the address space uniformly.
//! Given a candidate victim, this module tests (a) volume, (b) distinctness
//! of the response destinations, and (c) uniformity of their distribution
//! (χ² over the top octet) — the criteria the HiFIND paper uses in §5.4 to
//! validate its detected SYN floodings.

use hifind_flow::{Ip4, SegmentKind, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Verdict of a backscatter validation for one candidate victim.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BackscatterVerdict {
    /// The candidate victim examined.
    pub victim: Ip4,
    /// Outbound SYN/ACKs (plus RSTs) the victim emitted.
    pub responses: u64,
    /// Distinct response destinations.
    pub distinct_destinations: u64,
    /// χ² statistic of the top-octet histogram against uniform (lower =
    /// more uniform).
    pub chi_square: f64,
    /// χ² degrees of freedom used (bins − 1).
    pub degrees_of_freedom: usize,
    /// Whether all three criteria point at a spoofed flood victim.
    pub spoofed_flood_confirmed: bool,
}

/// Minimum responses before a uniformity verdict is meaningful.
pub const MIN_RESPONSES: u64 = 50;

/// Validates a candidate spoofed-flood victim against the victim's
/// response traffic in `trace`.
///
/// Confirmation requires at least [`MIN_RESPONSES`] responses, ≥ 90%
/// distinct destinations, and a χ² statistic consistent with a roughly
/// uniform top-octet spread (below `10 × dof` — deliberately loose because
/// the one-shot filter admits some clustered benign stragglers; legitimate
/// servers score 40–400× dof).
pub fn backscatter_validate(trace: &Trace, victim: Ip4) -> BackscatterVerdict {
    // Backscatter is response traffic to *unsolicited* (spoofed) sources.
    // Moore et al. observe it at a telescope where only such traffic
    // exists; on an edge trace we approximate the telescope by keeping
    // only responses to one-shot destinations — addresses that sent at
    // most one packet in the whole trace. A spoofed source is used for
    // exactly one SYN; real clients send handshakes, retries and
    // teardowns.
    let mut sent: std::collections::HashMap<Ip4, u32> = std::collections::HashMap::new();
    for p in trace.iter() {
        *sent.entry(p.src).or_insert(0) += 1;
    }
    let mut destinations: Vec<Ip4> = Vec::new();
    for p in trace.iter() {
        if p.src == victim
            && matches!(p.kind, SegmentKind::SynAck | SegmentKind::Rst)
            && sent.get(&p.dst).copied().unwrap_or(0) <= 1
        {
            destinations.push(p.dst);
        }
    }
    let responses = destinations.len() as u64;
    let distinct: HashSet<Ip4> = destinations.iter().copied().collect();
    // χ² over the top octet (224 routable-ish bins is overkill for short
    // windows; 16 coarse bins keep expected counts reasonable).
    const BINS: usize = 16;
    let mut hist = [0u64; BINS];
    for d in &destinations {
        hist[(d.octets()[0] as usize * BINS) / 256] += 1;
    }
    let expected = responses as f64 / BINS as f64;
    let chi_square = if responses == 0 {
        f64::INFINITY
    } else {
        hist.iter()
            .map(|&o| {
                let diff = o as f64 - expected;
                diff * diff / expected.max(1e-9)
            })
            .sum()
    };
    let dof = BINS - 1;
    let distinct_ratio = if responses == 0 {
        0.0
    } else {
        distinct.len() as f64 / responses as f64
    };
    BackscatterVerdict {
        victim,
        responses,
        distinct_destinations: distinct.len() as u64,
        chi_square,
        degrees_of_freedom: dof,
        spoofed_flood_confirmed: responses >= MIN_RESPONSES
            && distinct_ratio >= 0.9
            && chi_square < 10.0 * dof as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind_flow::rng::SplitMix64;
    use hifind_flow::Packet;

    fn victim() -> Ip4 {
        [129, 105, 0, 80].into()
    }

    /// A victim answering a spoofed flood: SYN/ACKs to uniform random
    /// destinations.
    fn spoofed_backscatter(n: u32) -> Trace {
        let mut t = Trace::new();
        let mut rng = SplitMix64::new(1);
        for i in 0..n {
            let spoofed = Ip4::new(rng.next_u32());
            t.push(Packet::syn_ack(i as u64, spoofed, 2000, victim(), 80));
        }
        t
    }

    /// A busy but legitimate server: responses to a clustered client
    /// population.
    fn legit_responses(n: u32) -> Trace {
        let mut t = Trace::new();
        let mut rng = SplitMix64::new(2);
        for i in 0..n {
            // Clients clustered in two /8s.
            let base = if rng.chance(0.7) {
                0x0C00_0000
            } else {
                0x3D00_0000
            };
            let client = Ip4::new(base | (rng.next_u32() & 0x00FF_FFFF));
            t.push(Packet::syn_ack(i as u64, client, 2000, victim(), 80));
        }
        t
    }

    #[test]
    fn confirms_spoofed_flood_victim() {
        let v = backscatter_validate(&spoofed_backscatter(2000), victim());
        assert!(v.spoofed_flood_confirmed, "verdict: {v:?}");
        assert!(v.distinct_destinations > 1900);
        assert!(v.chi_square < 40.0);
    }

    #[test]
    fn rejects_legitimate_server() {
        let v = backscatter_validate(&legit_responses(2000), victim());
        assert!(!v.spoofed_flood_confirmed, "verdict: {v:?}");
        assert!(v.chi_square > 10.0 * v.degrees_of_freedom as f64);
    }

    #[test]
    fn rejects_quiet_host() {
        let v = backscatter_validate(&spoofed_backscatter(10), victim());
        assert!(!v.spoofed_flood_confirmed);
        assert_eq!(v.responses, 10);
    }

    #[test]
    fn ignores_other_hosts_traffic() {
        let mut t = spoofed_backscatter(500);
        // Noise from a different host must not count.
        let other: Ip4 = [129, 105, 0, 81].into();
        for i in 0..500u32 {
            t.push(Packet::syn_ack(
                i as u64,
                [1, 1, 1, 1].into(),
                2000,
                other,
                80,
            ));
        }
        let v = backscatter_validate(&t, victim());
        assert_eq!(v.responses, 500);
    }

    #[test]
    fn empty_trace_gives_zero_confidence() {
        let v = backscatter_validate(&Trace::new(), victim());
        assert_eq!(v.responses, 0);
        assert!(!v.spoofed_flood_confirmed);
        assert!(v.chi_square.is_infinite());
    }

    #[test]
    fn rst_responses_also_count() {
        // A victim with a closed port RSTs the spoofed SYNs — still
        // backscatter.
        let mut t = Trace::new();
        let mut rng = SplitMix64::new(3);
        for i in 0..500 {
            let spoofed = Ip4::new(rng.next_u32());
            t.push(Packet::rst(i as u64, spoofed, 2000, victim(), 80));
        }
        let v = backscatter_validate(&t, victim());
        assert_eq!(v.responses, 500);
        assert!(v.spoofed_flood_confirmed);
    }
}
