//! Element-wise forecasting over sketch counter grids.

use hifind_sketch::CounterGrid;
use serde::{Deserialize, Serialize};

/// A forecasting model applied element-wise to counter grids.
///
/// `step(observed)` consumes the grid recorded in the current interval and
/// returns the *forecast-error grid* `observed − forecast` (rounded to
/// integers), or `None` while warming up. The error grid is what
/// `ReversibleSketch::infer_grid` runs INFERENCE over.
pub trait GridForecaster {
    /// Feeds one interval's recorded grid; returns the error grid once a
    /// forecast exists.
    ///
    /// # Panics
    ///
    /// Panics if the grid shape changes between calls.
    fn step(&mut self, observed: &CounterGrid) -> Option<CounterGrid>;

    /// Resets to the untrained state.
    fn reset(&mut self);
}

/// Element-wise EWMA over grids (paper eq. 1). Forecast state is kept in
/// `f64` so repeated smoothing does not accumulate integer rounding error;
/// only the returned error grid is rounded.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridEwma {
    alpha: f64,
    prev_observed: Option<Vec<f64>>,
    prev_forecast: Option<Vec<f64>>,
    shape: Option<(usize, usize)>,
}

/// The full internal state of a [`GridEwma`], exposed so detection
/// checkpoints can persist a forecaster mid-stream and restore it
/// bit-exactly (`f64` state is preserved verbatim, so a restored model
/// produces byte-identical error grids from the same future inputs).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridEwmaState {
    /// Smoothing factor α.
    pub alpha: f64,
    /// Last observed grid, flattened stage-major (`None` before warm-up).
    pub prev_observed: Option<Vec<f64>>,
    /// Last forecast grid, flattened stage-major (`None` until the second
    /// interval).
    pub prev_forecast: Option<Vec<f64>>,
    /// Grid shape `(stages, buckets)` pinned by the first observation.
    pub shape: Option<(usize, usize)>,
}

impl GridEwma {
    /// Creates an element-wise EWMA with smoothing factor `alpha ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]` or not finite.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && (0.0..=1.0).contains(&alpha),
            "alpha must be in [0, 1], got {alpha}"
        );
        GridEwma {
            alpha,
            prev_observed: None,
            prev_forecast: None,
            shape: None,
        }
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Snapshots the complete model state for checkpointing.
    pub fn state(&self) -> GridEwmaState {
        GridEwmaState {
            alpha: self.alpha,
            prev_observed: self.prev_observed.clone(),
            prev_forecast: self.prev_forecast.clone(),
            shape: self.shape,
        }
    }

    /// Rebuilds a model from a [`GridEwmaState`] snapshot.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the state is internally
    /// inconsistent: α outside `[0, 1]`, a state vector whose length does
    /// not match the recorded shape, a forecast without an observation, or
    /// a non-finite state element (all of which would poison every later
    /// error grid).
    pub fn from_state(state: GridEwmaState) -> Result<Self, String> {
        if !state.alpha.is_finite() || !(0.0..=1.0).contains(&state.alpha) {
            return Err(format!("alpha {} outside [0, 1]", state.alpha));
        }
        if state.prev_observed.is_some() != state.shape.is_some() {
            return Err("observation history and shape must be set together".into());
        }
        if state.prev_forecast.is_some() && state.prev_observed.is_none() {
            return Err("forecast state without an observed grid".into());
        }
        if let Some((stages, buckets)) = state.shape {
            let cells = stages.checked_mul(buckets).ok_or("shape overflows")?;
            for (name, vec) in [
                ("prev_observed", &state.prev_observed),
                ("prev_forecast", &state.prev_forecast),
            ] {
                if let Some(v) = vec {
                    if v.len() != cells {
                        return Err(format!(
                            "{name} holds {} cells for a {stages}×{buckets} grid",
                            v.len()
                        ));
                    }
                    if v.iter().any(|x| !x.is_finite()) {
                        return Err(format!("{name} contains a non-finite value"));
                    }
                }
            }
        }
        Ok(GridEwma {
            alpha: state.alpha,
            prev_observed: state.prev_observed,
            prev_forecast: state.prev_forecast,
            shape: state.shape,
        })
    }

    fn check_shape(&mut self, g: &CounterGrid) {
        let shape = (g.stages(), g.buckets());
        match self.shape {
            None => self.shape = Some(shape),
            Some(s) => assert_eq!(s, shape, "grid shape changed mid-stream"),
        }
    }
}

fn to_f64(g: &CounterGrid) -> Vec<f64> {
    let mut out = Vec::with_capacity(g.stages() * g.buckets());
    for s in 0..g.stages() {
        out.extend(g.stage(s).iter().map(|&v| v as f64));
    }
    out
}

fn error_grid(g: &CounterGrid, forecast: &[f64]) -> CounterGrid {
    let mut out = CounterGrid::new(g.stages(), g.buckets());
    let buckets = g.buckets();
    for s in 0..g.stages() {
        let stage = g.stage(s);
        for (b, &v) in stage.iter().enumerate() {
            let f = forecast[s * buckets + b];
            let e = (v as f64 - f).round() as i64;
            if e != 0 {
                out.add(s, b, e);
            }
        }
    }
    out
}

impl GridForecaster for GridEwma {
    fn step(&mut self, observed: &CounterGrid) -> Option<CounterGrid> {
        self.check_shape(observed);
        let forecast: Option<Vec<f64>> = match (&self.prev_observed, &self.prev_forecast) {
            (None, _) => None,
            (Some(po), None) => Some(po.clone()),
            (Some(po), Some(pf)) => Some(
                po.iter()
                    .zip(pf)
                    .map(|(&o, &f)| self.alpha * o + (1.0 - self.alpha) * f)
                    .collect(),
            ),
        };
        let result = forecast.as_ref().map(|f| error_grid(observed, f));
        if forecast.is_some() {
            self.prev_forecast = forecast;
        }
        self.prev_observed = Some(to_f64(observed));
        result
    }

    fn reset(&mut self) {
        self.prev_observed = None;
        self.prev_forecast = None;
        self.shape = None;
    }
}

/// Element-wise Holt (double exponential smoothing) over grids — the
/// forecasting-model ablation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridHolt {
    alpha: f64,
    beta: f64,
    level: Option<Vec<f64>>,
    trend: Option<Vec<f64>>,
    warm: Option<Vec<f64>>,
    shape: Option<(usize, usize)>,
}

impl GridHolt {
    /// Creates an element-wise Holt model; both factors in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if either factor is outside `[0, 1]` or not finite.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(alpha.is_finite() && (0.0..=1.0).contains(&alpha));
        assert!(beta.is_finite() && (0.0..=1.0).contains(&beta));
        GridHolt {
            alpha,
            beta,
            level: None,
            trend: None,
            warm: None,
            shape: None,
        }
    }
}

impl GridForecaster for GridHolt {
    fn step(&mut self, observed: &CounterGrid) -> Option<CounterGrid> {
        let shape = (observed.stages(), observed.buckets());
        match self.shape {
            None => self.shape = Some(shape),
            Some(s) => assert_eq!(s, shape, "grid shape changed mid-stream"),
        }
        let obs = to_f64(observed);
        match (self.level.take(), self.warm.take()) {
            (None, None) => {
                self.warm = Some(obs);
                None
            }
            (None, Some(first)) => {
                let error = error_grid(observed, &first);
                let level: Vec<f64> = obs
                    .iter()
                    .zip(&first)
                    .map(|(&o, &f)| self.alpha * o + (1.0 - self.alpha) * f)
                    .collect();
                let trend: Vec<f64> = obs.iter().zip(&first).map(|(&o, &f)| o - f).collect();
                self.level = Some(level);
                self.trend = Some(trend);
                Some(error)
            }
            (Some(level), _) => {
                // `level` and `trend` are set together; if the trend were
                // ever missing, Holt degrades to simple smoothing for one
                // step instead of panicking.
                let trend = self.trend.take().unwrap_or_else(|| vec![0.0; level.len()]);
                let forecast: Vec<f64> = level.iter().zip(&trend).map(|(&l, &t)| l + t).collect();
                let error = error_grid(observed, &forecast);
                let new_level: Vec<f64> = obs
                    .iter()
                    .zip(&forecast)
                    .map(|(&o, &f)| self.alpha * o + (1.0 - self.alpha) * f)
                    .collect();
                let new_trend: Vec<f64> = new_level
                    .iter()
                    .zip(&level)
                    .zip(&trend)
                    .map(|((&nl, &l), &t)| self.beta * (nl - l) + (1.0 - self.beta) * t)
                    .collect();
                self.level = Some(new_level);
                self.trend = Some(new_trend);
                Some(error)
            }
        }
    }

    fn reset(&mut self) {
        self.level = None;
        self.trend = None;
        self.warm = None;
        self.shape = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(vals: &[i64]) -> CounterGrid {
        let mut g = CounterGrid::new(1, vals.len().next_power_of_two());
        for (i, &v) in vals.iter().enumerate() {
            g.add(0, i, v);
        }
        g
    }

    #[test]
    fn warmup_then_error() {
        let mut f = GridEwma::new(0.5);
        assert!(f.step(&grid(&[10, 20])).is_none());
        let e = f.step(&grid(&[12, 20])).unwrap();
        assert_eq!(e.get(0, 0), 2);
        assert_eq!(e.get(0, 1), 0);
    }

    #[test]
    fn matches_scalar_recurrence_per_bucket() {
        use crate::scalar::{Ewma, ScalarForecaster};
        let mut gf = GridEwma::new(0.3);
        let mut sf = Ewma::new(0.3);
        let series = [5i64, 8, 2, 14, 7, 7, 100, 3];
        for &v in &series {
            let ge = gf.step(&grid(&[v, 0]));
            let se = sf.step(v as f64);
            match (ge, se) {
                (None, None) => {}
                (Some(g), Some(s)) => {
                    assert_eq!(g.get(0, 0), s.round() as i64);
                    assert_eq!(g.get(0, 1), 0);
                }
                other => panic!("divergent warmup: {other:?}"),
            }
        }
    }

    #[test]
    fn constant_traffic_zero_error() {
        let mut f = GridEwma::new(0.5);
        let g = grid(&[100, 200, 300, 0]);
        f.step(&g);
        for _ in 0..10 {
            let e = f.step(&g).unwrap();
            assert!(e.is_zero(), "expected zero error for constant traffic");
        }
    }

    #[test]
    fn surge_appears_in_error_grid() {
        let mut f = GridEwma::new(0.5);
        let quiet = grid(&[10, 10, 10, 10]);
        f.step(&quiet);
        for _ in 0..5 {
            f.step(&quiet);
        }
        let e = f.step(&grid(&[10, 510, 10, 10])).unwrap();
        assert!((e.get(0, 1) - 500).abs() <= 1);
        assert_eq!(e.get(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "shape changed")]
    fn shape_change_panics() {
        let mut f = GridEwma::new(0.5);
        f.step(&CounterGrid::new(1, 4));
        f.step(&CounterGrid::new(2, 4));
    }

    #[test]
    fn reset_restarts_warmup() {
        let mut f = GridEwma::new(0.5);
        f.step(&grid(&[1, 2]));
        f.step(&grid(&[1, 2]));
        f.reset();
        assert!(f.step(&grid(&[9, 9])).is_none());
    }

    #[test]
    fn holt_grid_tracks_ramp_better_than_ewma() {
        let mut h = GridHolt::new(0.5, 0.5);
        let mut e = GridEwma::new(0.5);
        let mut herr = 0i64;
        let mut eerr = 0i64;
        for t in 0..30i64 {
            let g = grid(&[10 * t, 0]);
            if let Some(err) = h.step(&g) {
                herr += err.get(0, 0).abs();
            }
            if let Some(err) = e.step(&g) {
                eerr += err.get(0, 0).abs();
            }
        }
        assert!(herr < eerr, "holt {herr} vs ewma {eerr}");
    }

    #[test]
    fn holt_grid_warmup_and_reset() {
        let mut h = GridHolt::new(0.5, 0.5);
        assert!(h.step(&grid(&[1, 1])).is_none());
        assert!(h.step(&grid(&[1, 1])).is_some());
        h.reset();
        assert!(h.step(&grid(&[1, 1])).is_none());
    }

    #[test]
    fn error_grids_preserve_negative_changes() {
        // Traffic dropping (e.g. flooding stops) gives negative error.
        let mut f = GridEwma::new(0.5);
        f.step(&grid(&[100, 0]));
        let e = f.step(&grid(&[0, 0])).unwrap();
        assert_eq!(e.get(0, 0), -100);
    }
}
