//! Forecast-error magnitude summaries.
//!
//! Detection quality hinges on the forecast-error grids staying
//! small-and-centered for benign traffic; a drifting EWMA shows up here
//! (growing mean absolute error) intervals before it shows up as false
//! alerts. [`ErrorStats::measure`] condenses one error grid into a few
//! numbers the telemetry layer reports per interval.

use hifind_sketch::CounterGrid;
use serde::{Deserialize, Serialize};

/// Magnitude summary of one forecast-error grid.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ErrorStats {
    /// Number of grid cells.
    pub cells: usize,
    /// Cells with non-zero error.
    pub nonzero: usize,
    /// Mean of `|error|` over all cells.
    pub mean_abs: f64,
    /// Root mean square error over all cells.
    pub rms: f64,
    /// Largest `|error|`.
    pub max_abs: i64,
    /// Sum of signed errors (bias; near zero for a well-tracking model).
    pub bias: i64,
}

impl ErrorStats {
    /// Measures an error grid (as returned by
    /// [`crate::GridForecaster::step`]).
    ///
    /// Each stage row is condensed by the dispatched
    /// [`hifind_sketch::SketchKernel::row_moments`] (the vectorized
    /// L2-norm/threshold scan), then the per-stage moments are folded in
    /// stage order. The floating-point sums follow the kernels' fixed
    /// 4-lane association, so the result is bit-identical whichever ISA is
    /// selected.
    pub fn measure(error_grid: &CounterGrid) -> Self {
        let kernel = hifind_sketch::simd::kernel();
        let mut nonzero = 0u64;
        let mut abs_sum = 0.0f64;
        let mut sq_sum = 0.0f64;
        let mut max_abs = 0u64;
        let mut bias_sum = 0.0f64;
        let mut cells = 0usize;
        for stage in 0..error_grid.stages() {
            let row = error_grid.stage(stage);
            let m = kernel.row_moments(row);
            cells = cells.saturating_add(row.len());
            nonzero = nonzero.saturating_add(m.nonzero);
            abs_sum += m.abs_sum;
            sq_sum += m.sq_sum;
            max_abs = max_abs.max(m.max_abs);
            bias_sum += m.bias_sum;
        }
        if cells == 0 {
            return ErrorStats::default();
        }
        ErrorStats {
            cells,
            nonzero: usize::try_from(nonzero).unwrap_or(usize::MAX),
            mean_abs: abs_sum / cells as f64,
            rms: (sq_sum / cells as f64).sqrt(),
            // Magnitudes come back as u64 (`unsigned_abs`, total even for
            // i64::MIN); clamp the one unrepresentable value.
            max_abs: i64::try_from(max_abs).unwrap_or(i64::MAX),
            // Signed bias accumulated in f64 (exact up to ±2^53 total);
            // the float→int cast saturates at the i64 rails.
            bias: bias_sum as i64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_small_grid() {
        let mut g = CounterGrid::new(1, 4);
        g.add(0, 0, 3);
        g.add(0, 1, -4);
        let s = ErrorStats::measure(&g);
        assert_eq!(s.cells, 4);
        assert_eq!(s.nonzero, 2);
        assert_eq!(s.max_abs, 4);
        assert_eq!(s.bias, -1);
        assert!((s.mean_abs - 7.0 / 4.0).abs() < 1e-12);
        assert!((s.rms - (25.0f64 / 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn zero_grid_is_all_zeros() {
        let s = ErrorStats::measure(&CounterGrid::new(2, 8));
        assert_eq!(s.nonzero, 0);
        assert_eq!(s.mean_abs, 0.0);
        assert_eq!(s.bias, 0);
    }

    #[test]
    fn serde_round_trip() {
        let mut g = CounterGrid::new(1, 2);
        g.add(0, 0, 9);
        let s = ErrorStats::measure(&g);
        let json = serde_json::to_string(&s).unwrap();
        let back: ErrorStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
