//! Forecast-error magnitude summaries.
//!
//! Detection quality hinges on the forecast-error grids staying
//! small-and-centered for benign traffic; a drifting EWMA shows up here
//! (growing mean absolute error) intervals before it shows up as false
//! alerts. [`ErrorStats::measure`] condenses one error grid into a few
//! numbers the telemetry layer reports per interval.

use hifind_sketch::CounterGrid;
use serde::{Deserialize, Serialize};

/// Magnitude summary of one forecast-error grid.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ErrorStats {
    /// Number of grid cells.
    pub cells: usize,
    /// Cells with non-zero error.
    pub nonzero: usize,
    /// Mean of `|error|` over all cells.
    pub mean_abs: f64,
    /// Root mean square error over all cells.
    pub rms: f64,
    /// Largest `|error|`.
    pub max_abs: i64,
    /// Sum of signed errors (bias; near zero for a well-tracking model).
    pub bias: i64,
}

impl ErrorStats {
    /// Measures an error grid (as returned by
    /// [`crate::GridForecaster::step`]).
    pub fn measure(error_grid: &CounterGrid) -> Self {
        let mut nonzero = 0usize;
        let mut abs_sum = 0.0f64;
        let mut sq_sum = 0.0f64;
        let mut max_abs = 0i64;
        let mut bias = 0i64;
        let mut cells = 0usize;
        for stage in 0..error_grid.stages() {
            for &v in error_grid.stage(stage) {
                cells = cells.saturating_add(1);
                if v != 0 {
                    nonzero = nonzero.saturating_add(1);
                }
                abs_sum += v.abs() as f64;
                sq_sum += (v as f64) * (v as f64);
                max_abs = max_abs.max(v.abs());
                bias = bias.saturating_add(v);
            }
        }
        if cells == 0 {
            return ErrorStats::default();
        }
        ErrorStats {
            cells,
            nonzero,
            mean_abs: abs_sum / cells as f64,
            rms: (sq_sum / cells as f64).sqrt(),
            max_abs,
            bias,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_small_grid() {
        let mut g = CounterGrid::new(1, 4);
        g.add(0, 0, 3);
        g.add(0, 1, -4);
        let s = ErrorStats::measure(&g);
        assert_eq!(s.cells, 4);
        assert_eq!(s.nonzero, 2);
        assert_eq!(s.max_abs, 4);
        assert_eq!(s.bias, -1);
        assert!((s.mean_abs - 7.0 / 4.0).abs() < 1e-12);
        assert!((s.rms - (25.0f64 / 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn zero_grid_is_all_zeros() {
        let s = ErrorStats::measure(&CounterGrid::new(2, 8));
        assert_eq!(s.nonzero, 0);
        assert_eq!(s.mean_abs, 0.0);
        assert_eq!(s.bias, 0);
    }

    #[test]
    fn serde_round_trip() {
        let mut g = CounterGrid::new(1, 2);
        g.add(0, 0, 9);
        let s = ErrorStats::measure(&g);
        let json = serde_json::to_string(&s).unwrap();
        let back: ErrorStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
