//! Additive Holt-Winters (triple exponential smoothing) — the seasonal
//! extension.
//!
//! Network traffic has strong diurnal/weekly cycles; with one-minute
//! intervals a day is a 1440-tick season. The sketch pipeline keeps the
//! memory-cheap EWMA (per-bucket seasonal state would multiply the grid by
//! the period, defeating the small-memory goal), but per-*service* scalar
//! series — e.g. the unresponded-SYN count of a protected service — can
//! afford the seasonal model, and it removes the morning-ramp false
//! positives EWMA produces. This is the "future work" style extension
//! DESIGN.md §8 lists alongside the Holt ablation.

use crate::scalar::ScalarForecaster;
use serde::{Deserialize, Serialize};

/// Additive Holt-Winters forecasting with period `m`:
///
/// ```text
/// forecast(t) = level + trend + season[t mod m]
/// level  ← α (x − season) + (1 − α)(level + trend)
/// trend  ← β (level − level₋₁) + (1 − β) trend
/// season ← γ (x − level) + (1 − γ) season
/// ```
///
/// Warm-up: the first full period initializes the seasonal profile (no
/// error output), matching the paper's "no detection at t = 1" convention
/// stretched to one season.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HoltWinters {
    alpha: f64,
    beta: f64,
    gamma: f64,
    period: usize,
    /// Observations collected during the first season.
    warmup: Vec<f64>,
    level: f64,
    trend: f64,
    season: Vec<f64>,
    t: usize,
    initialized: bool,
}

impl HoltWinters {
    /// Creates a model with smoothing factors in `[0, 1]` and a seasonal
    /// period of at least 2 ticks.
    ///
    /// # Panics
    ///
    /// Panics if any factor is outside `[0, 1]` or `period < 2`.
    pub fn new(alpha: f64, beta: f64, gamma: f64, period: usize) -> Self {
        for v in [alpha, beta, gamma] {
            assert!(
                v.is_finite() && (0.0..=1.0).contains(&v),
                "smoothing factors must be in [0, 1], got {v}"
            );
        }
        assert!(period >= 2, "seasonal period must be at least 2");
        HoltWinters {
            alpha,
            beta,
            gamma,
            period,
            warmup: Vec::with_capacity(period),
            level: 0.0,
            trend: 0.0,
            season: vec![0.0; period],
            t: 0,
            initialized: false,
        }
    }

    /// The seasonal period.
    pub fn period(&self) -> usize {
        self.period
    }

    /// The current seasonal profile (empty before initialization).
    pub fn seasonal_profile(&self) -> &[f64] {
        if self.initialized {
            &self.season
        } else {
            &[]
        }
    }
}

impl ScalarForecaster for HoltWinters {
    fn step(&mut self, observed: f64) -> Option<f64> {
        if !self.initialized {
            self.warmup.push(observed);
            if self.warmup.len() == self.period {
                let mean = self.warmup.iter().sum::<f64>() / self.period as f64;
                self.level = mean;
                self.trend = 0.0;
                for (i, &v) in self.warmup.iter().enumerate() {
                    self.season[i] = v - mean;
                }
                self.initialized = true;
                self.t = 0;
            }
            return None;
        }
        let s = self.t % self.period;
        let forecast = self.level + self.trend + self.season[s];
        let error = observed - forecast;
        let prev_level = self.level;
        self.level = self.alpha * (observed - self.season[s])
            + (1.0 - self.alpha) * (self.level + self.trend);
        self.trend = self.beta * (self.level - prev_level) + (1.0 - self.beta) * self.trend;
        self.season[s] = self.gamma * (observed - self.level) + (1.0 - self.gamma) * self.season[s];
        self.t = self.t.saturating_add(1);
        Some(error)
    }

    fn next_forecast(&self) -> Option<f64> {
        if !self.initialized {
            return None;
        }
        Some(self.level + self.trend + self.season[self.t % self.period])
    }

    fn reset(&mut self) {
        self.warmup.clear();
        self.level = 0.0;
        self.trend = 0.0;
        self.season.fill(0.0);
        self.t = 0;
        self.initialized = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Ewma;

    /// A clean daily-ish pattern: sine over a 24-tick period.
    fn seasonal_series(periods: usize, period: usize) -> Vec<f64> {
        (0..periods * period)
            .map(|t| {
                let phase = (t % period) as f64 / period as f64 * std::f64::consts::TAU;
                1000.0 + 400.0 * phase.sin()
            })
            .collect()
    }

    #[test]
    fn warmup_lasts_one_period() {
        let mut hw = HoltWinters::new(0.3, 0.1, 0.3, 24);
        for (t, &v) in seasonal_series(2, 24).iter().enumerate() {
            let out = hw.step(v);
            assert_eq!(out.is_none(), t < 24, "tick {t}");
        }
        assert_eq!(hw.seasonal_profile().len(), 24);
    }

    #[test]
    fn beats_ewma_on_seasonal_traffic() {
        let series = seasonal_series(6, 24);
        let mut hw = HoltWinters::new(0.3, 0.05, 0.4, 24);
        let mut ewma = Ewma::new(0.5);
        let (mut hw_err, mut ewma_err) = (0.0, 0.0);
        // Score only the last two periods (both models fully warmed).
        for (t, &v) in series.iter().enumerate() {
            let he = hw.step(v);
            let ee = ewma.step(v);
            if t >= 4 * 24 {
                hw_err += he.unwrap().abs();
                ewma_err += ee.unwrap().abs();
            }
        }
        assert!(
            hw_err < ewma_err * 0.35,
            "Holt-Winters {hw_err:.0} should beat EWMA {ewma_err:.0} on cycles"
        );
    }

    #[test]
    fn attack_spike_still_stands_out() {
        let mut series = seasonal_series(8, 24);
        let n = series.len();
        series[n - 10] += 5000.0; // the attack
        let mut hw = HoltWinters::new(0.3, 0.05, 0.4, 24);
        let mut spike_error = 0.0;
        let mut background_max: f64 = 0.0;
        for (t, &v) in series.iter().enumerate() {
            if let Some(e) = hw.step(v) {
                if t == n - 10 {
                    spike_error = e;
                } else if t > 5 * 24 {
                    // Score background only once level/trend/season have
                    // converged (the first post-warm-up periods still
                    // carry initialization transients).
                    background_max = background_max.max(e.abs());
                }
            }
        }
        assert!(
            spike_error > 2.5 * background_max && spike_error > 3000.0,
            "spike {spike_error:.0} vs background {background_max:.0}"
        );
    }

    #[test]
    fn constant_series_converges_to_zero_error() {
        let mut hw = HoltWinters::new(0.3, 0.1, 0.3, 4);
        let mut last = f64::MAX;
        for t in 0..200 {
            if let Some(e) = hw.step(42.0) {
                if t > 100 {
                    last = e.abs();
                }
            }
        }
        assert!(last < 1e-6, "residual {last}");
    }

    #[test]
    fn reset_restarts_warmup() {
        let mut hw = HoltWinters::new(0.3, 0.1, 0.3, 4);
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            hw.step(v);
        }
        assert!(hw.next_forecast().is_some());
        hw.reset();
        assert!(hw.next_forecast().is_none());
        assert!(hw.step(1.0).is_none());
    }

    #[test]
    #[should_panic(expected = "seasonal period")]
    fn rejects_tiny_period() {
        let _ = HoltWinters::new(0.3, 0.1, 0.3, 1);
    }

    #[test]
    #[should_panic(expected = "smoothing factors")]
    fn rejects_bad_gamma() {
        let _ = HoltWinters::new(0.3, 0.1, 1.5, 24);
    }
}
