//! Time-series forecasting over sketches for change detection.
//!
//! HiFIND turns sketches into *forecast error* sketches (paper §3.1/§3.3):
//! per interval `t` an EWMA forecast `M_f(t)` is produced from history, and
//! the detection signal is `e_t = M_0(t) − M_f(t)`. Because sketches are
//! linear, forecasting element-wise over the counter grid yields exactly
//! the sketch of the forecast-error signal, which the reversible sketch can
//! then run INFERENCE over.
//!
//! The paper's model (eq. 1) is
//!
//! ```text
//! M_f(t) = α·M_0(t−1) + (1−α)·M_f(t−1)   for t > 2
//! M_f(2) = M_0(1)
//! ```
//!
//! with no forecast (hence no detection) at `t = 1`.
//!
//! * [`Ewma`] — the scalar recurrence (used by baselines as well).
//! * [`GridEwma`] — the same recurrence applied element-wise to a
//!   [`hifind_sketch::CounterGrid`], producing error grids.
//! * [`Holt`] / [`GridHolt`] — double exponential smoothing (level +
//!   trend), implemented as the forecasting ablation DESIGN.md calls out.
//!
//! # Example
//!
//! ```
//! use hifind_forecast::{Ewma, ScalarForecaster};
//!
//! let mut f = Ewma::new(0.5);
//! assert_eq!(f.step(10.0), None);        // t = 1: no forecast yet
//! assert_eq!(f.step(10.0), Some(0.0));   // t = 2: forecast = M0(1)
//! let e = f.step(30.0).unwrap();         // surge shows up as error
//! assert!(e > 15.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod scalar;
pub mod seasonal;
pub mod stats;

pub use grid::{GridEwma, GridEwmaState, GridForecaster, GridHolt};
pub use scalar::{Ewma, Holt, ScalarForecaster};
pub use seasonal::HoltWinters;
pub use stats::ErrorStats;
