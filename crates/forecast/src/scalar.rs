//! Scalar forecasting models.

use serde::{Deserialize, Serialize};

/// A forecasting model over a scalar time series.
///
/// `step(observed)` consumes the observation for the current interval and
/// returns the *forecast error* `observed − forecast`, or `None` while the
/// model is still warming up (the paper's `t = 1`).
pub trait ScalarForecaster {
    /// Feeds one interval's observation; returns the forecast error once a
    /// forecast exists.
    fn step(&mut self, observed: f64) -> Option<f64>;

    /// The forecast the model would make for the *next* interval, if any.
    fn next_forecast(&self) -> Option<f64>;

    /// Resets to the initial (untrained) state.
    fn reset(&mut self);
}

/// Exponentially weighted moving average forecasting (paper eq. 1).
///
/// `M_f(t) = α·M_0(t−1) + (1−α)·M_f(t−1)`, seeded with `M_f(2) = M_0(1)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    prev_observed: Option<f64>,
    prev_forecast: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA model with smoothing factor `alpha ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]` or not finite.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && (0.0..=1.0).contains(&alpha),
            "alpha must be in [0, 1], got {alpha}"
        );
        Ewma {
            alpha,
            prev_observed: None,
            prev_forecast: None,
        }
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl ScalarForecaster for Ewma {
    fn step(&mut self, observed: f64) -> Option<f64> {
        let forecast = match (self.prev_observed, self.prev_forecast) {
            (None, _) => None,            // t = 1
            (Some(po), None) => Some(po), // t = 2: M_f(2) = M_0(1)
            (Some(po), Some(pf)) => Some(self.alpha * po + (1.0 - self.alpha) * pf),
        };
        if let Some(f) = forecast {
            self.prev_forecast = Some(f);
        }
        self.prev_observed = Some(observed);
        forecast.map(|f| observed - f)
    }

    fn next_forecast(&self) -> Option<f64> {
        match (self.prev_observed, self.prev_forecast) {
            (None, _) => None,
            (Some(po), None) => Some(po),
            (Some(po), Some(pf)) => Some(self.alpha * po + (1.0 - self.alpha) * pf),
        }
    }

    fn reset(&mut self) {
        self.prev_observed = None;
        self.prev_forecast = None;
    }
}

/// Holt's double exponential smoothing (level + trend).
///
/// An ablation alternative to [`Ewma`]: tracks a linear trend so slowly
/// ramping diurnal traffic produces smaller forecast errors.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Holt {
    alpha: f64,
    beta: f64,
    state: Option<(f64, f64)>, // (level, trend)
    warm: Option<f64>,         // first observation, waiting for the second
}

impl Holt {
    /// Creates a Holt model with level factor `alpha` and trend factor
    /// `beta`, both in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if either factor is outside `[0, 1]` or not finite.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha.is_finite() && (0.0..=1.0).contains(&alpha),
            "alpha must be in [0, 1], got {alpha}"
        );
        assert!(
            beta.is_finite() && (0.0..=1.0).contains(&beta),
            "beta must be in [0, 1], got {beta}"
        );
        Holt {
            alpha,
            beta,
            state: None,
            warm: None,
        }
    }
}

impl ScalarForecaster for Holt {
    fn step(&mut self, observed: f64) -> Option<f64> {
        match (self.state, self.warm) {
            (None, None) => {
                self.warm = Some(observed);
                None
            }
            (None, Some(first)) => {
                // Initialize level = first, trend = difference.
                let forecast = first;
                self.state = Some((
                    self.alpha * observed + (1.0 - self.alpha) * first,
                    observed - first,
                ));
                Some(observed - forecast)
            }
            (Some((level, trend)), _) => {
                let forecast = level + trend;
                let new_level = self.alpha * observed + (1.0 - self.alpha) * forecast;
                let new_trend = self.beta * (new_level - level) + (1.0 - self.beta) * trend;
                self.state = Some((new_level, new_trend));
                Some(observed - forecast)
            }
        }
    }

    fn next_forecast(&self) -> Option<f64> {
        match (self.state, self.warm) {
            (Some((level, trend)), _) => Some(level + trend),
            (None, Some(first)) => Some(first),
            _ => None,
        }
    }

    fn reset(&mut self) {
        self.state = None;
        self.warm = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_warmup_then_forecast() {
        let mut f = Ewma::new(0.5);
        assert_eq!(f.next_forecast(), None);
        assert_eq!(f.step(10.0), None);
        assert_eq!(f.next_forecast(), Some(10.0));
        // t=2: forecast = 10, error = 2.
        assert_eq!(f.step(12.0), Some(2.0));
        // t=3: forecast = 0.5*12 + 0.5*10 = 11, error = 3.
        assert_eq!(f.step(14.0), Some(3.0));
    }

    #[test]
    fn ewma_constant_series_has_zero_error() {
        let mut f = Ewma::new(0.3);
        f.step(5.0);
        for _ in 0..20 {
            let e = f.step(5.0).unwrap();
            assert!(e.abs() < 1e-9);
        }
    }

    #[test]
    fn ewma_detects_surge() {
        let mut f = Ewma::new(0.5);
        for _ in 0..10 {
            f.step(100.0);
        }
        let e = f.step(500.0).unwrap();
        assert!((e - 400.0).abs() < 1e-6);
    }

    #[test]
    fn ewma_alpha_one_tracks_previous_observation() {
        let mut f = Ewma::new(1.0);
        f.step(1.0);
        f.step(2.0);
        // forecast(t) = observed(t-1).
        assert_eq!(f.step(10.0), Some(8.0));
    }

    #[test]
    fn ewma_alpha_zero_freezes_initial_forecast() {
        let mut f = Ewma::new(0.0);
        f.step(7.0);
        f.step(9.0); // forecast stays 7
        assert_eq!(f.step(9.0), Some(2.0));
        assert_eq!(f.step(9.0), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(1.5);
    }

    #[test]
    fn ewma_reset() {
        let mut f = Ewma::new(0.5);
        f.step(1.0);
        f.step(2.0);
        f.reset();
        assert_eq!(f.step(100.0), None);
    }

    #[test]
    fn holt_tracks_linear_trend() {
        let mut h = Holt::new(0.5, 0.5);
        let mut e = Ewma::new(0.5);
        let mut holt_err = 0.0;
        let mut ewma_err = 0.0;
        for t in 0..30 {
            let v = 10.0 * t as f64; // perfect ramp
            if let Some(err) = h.step(v) {
                holt_err += err.abs();
            }
            if let Some(err) = e.step(v) {
                ewma_err += err.abs();
            }
        }
        assert!(
            holt_err < ewma_err * 0.5,
            "holt {holt_err} should beat ewma {ewma_err} on a ramp"
        );
    }

    #[test]
    fn holt_warmup() {
        let mut h = Holt::new(0.5, 0.5);
        assert_eq!(h.next_forecast(), None);
        assert_eq!(h.step(10.0), None);
        assert!(h.step(10.0).is_some());
    }

    #[test]
    fn holt_constant_series_small_error() {
        let mut h = Holt::new(0.4, 0.3);
        h.step(50.0);
        let mut last = f64::MAX;
        for _ in 0..30 {
            last = h.step(50.0).unwrap().abs();
        }
        assert!(last < 1e-6, "residual error {last}");
    }

    #[test]
    fn holt_reset() {
        let mut h = Holt::new(0.5, 0.5);
        h.step(1.0);
        h.step(2.0);
        h.reset();
        assert_eq!(h.step(3.0), None);
    }

    #[test]
    #[should_panic(expected = "beta must be in")]
    fn holt_rejects_bad_beta() {
        let _ = Holt::new(0.5, -0.1);
    }
}
