//! Property-based tests for the forecasting models.

use hifind_forecast::{Ewma, GridEwma, GridForecaster, Holt, ScalarForecaster};
use hifind_sketch::CounterGrid;
use proptest::prelude::*;

proptest! {
    /// EWMA never emits an error before it has seen one observation, and
    /// always emits after.
    #[test]
    fn ewma_warmup_is_exactly_one_interval(alpha in 0.0f64..=1.0, series in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let mut f = Ewma::new(alpha);
        for (t, &v) in series.iter().enumerate() {
            let e = f.step(v);
            prop_assert_eq!(e.is_none(), t == 0);
        }
    }

    /// A constant series has zero error from t=2 on, for any alpha.
    #[test]
    fn ewma_constant_series_zero_error(alpha in 0.0f64..=1.0, level in -1e6f64..1e6, n in 2usize..30) {
        let mut f = Ewma::new(alpha);
        f.step(level);
        for _ in 0..n {
            let e = f.step(level).unwrap();
            prop_assert!(e.abs() < 1e-6, "error {e}");
        }
    }

    /// The forecast is always a convex combination of past observations:
    /// it lies within [min, max] of the history.
    #[test]
    fn ewma_forecast_within_observed_range(alpha in 0.0f64..=1.0, series in prop::collection::vec(-1e6f64..1e6, 2..50)) {
        let mut f = Ewma::new(alpha);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &series {
            if let Some(forecast) = f.next_forecast() {
                prop_assert!(forecast >= lo - 1e-9 && forecast <= hi + 1e-9,
                    "forecast {forecast} outside [{lo}, {hi}]");
            }
            f.step(v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }

    /// Scalar and grid EWMA implement the identical recurrence.
    #[test]
    fn grid_matches_scalar(alpha in 0.0f64..=1.0, series in prop::collection::vec(-100_000i64..100_000, 1..30)) {
        let mut gf = GridEwma::new(alpha);
        let mut sf = Ewma::new(alpha);
        for &v in &series {
            let mut g = CounterGrid::new(1, 2);
            g.add(0, 0, v);
            let ge = gf.step(&g).map(|e| e.get(0, 0));
            let se = sf.step(v as f64).map(|e| e.round() as i64);
            prop_assert_eq!(ge, se);
        }
    }

    /// Error grids are linear in the observation: scaling the whole
    /// history scales the errors (EWMA is a linear filter).
    #[test]
    fn ewma_is_linear_in_observations(series in prop::collection::vec(-1000i64..1000, 2..20)) {
        let mut f1 = GridEwma::new(0.5);
        let mut f2 = GridEwma::new(0.5);
        for &v in &series {
            let mut g1 = CounterGrid::new(1, 1);
            g1.add(0, 0, v);
            let mut g2 = CounterGrid::new(1, 1);
            g2.add(0, 0, 3 * v);
            let e1 = f1.step(&g1);
            let e2 = f2.step(&g2);
            if let (Some(e1), Some(e2)) = (e1, e2) {
                prop_assert!((e2.get(0, 0) - 3 * e1.get(0, 0)).abs() <= 3,
                    "linearity violated: {} vs 3×{}", e2.get(0, 0), e1.get(0, 0));
            }
        }
    }

    /// Holt's warm-up is exactly one interval too, and it never emits NaN.
    #[test]
    fn holt_no_nan(alpha in 0.0f64..=1.0, beta in 0.0f64..=1.0, series in prop::collection::vec(-1e6f64..1e6, 1..40)) {
        let mut h = Holt::new(alpha, beta);
        for (t, &v) in series.iter().enumerate() {
            match h.step(v) {
                None => prop_assert_eq!(t, 0),
                Some(e) => prop_assert!(e.is_finite()),
            }
        }
    }
}
