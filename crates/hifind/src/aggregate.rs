//! Aggregated detection over multiple routers (paper §3.1, §5.3.2).
//!
//! Each edge router runs only the cheap data plane
//! ([`crate::SketchRecorder`]) and ships its per-interval
//! [`IntervalSnapshot`] — a few megabytes of counters, no packets, no
//! flows — to a central site. Sketch linearity guarantees the combined
//! snapshot equals the snapshot of the merged traffic, so detection over
//! the aggregate is *identical* to single-router detection even under
//! per-packet load balancing that splits a connection's SYN and SYN/ACK
//! across different routers.

use crate::config::HiFindConfig;
use crate::pipeline::{DetectionCore, IntervalOutcome};
use crate::recorder::IntervalSnapshot;
use crate::report::AlertLog;
use hifind_sketch::SketchError;

/// The central aggregation site: combines per-router snapshots and runs
/// the standard detection pipeline on the sum.
///
/// # Example
///
/// ```
/// use hifind::{HiFindAggregator, HiFindConfig, SketchRecorder};
///
/// let cfg = HiFindConfig::small(1);
/// let mut routers: Vec<SketchRecorder> =
///     (0..3).map(|_| SketchRecorder::new(&cfg).unwrap()).collect();
/// let mut site = HiFindAggregator::new(cfg).unwrap();
/// // ... feed packets to each router's recorder ...
/// let snapshots: Vec<_> = routers.iter_mut().map(|r| r.take_snapshot()).collect();
/// let outcome = site.process_interval(&snapshots).unwrap();
/// assert_eq!(outcome.interval, 0);
/// ```
#[derive(Clone, Debug)]
pub struct HiFindAggregator {
    core: DetectionCore,
    fingerprint: u64,
}

impl HiFindAggregator {
    /// Builds the aggregation site. All routers must use recorders built
    /// from the *same* configuration (same seeds → same hash functions).
    /// Every snapshot carries its configuration fingerprint
    /// ([`HiFindConfig::fingerprint`]); snapshots from differently-seeded
    /// or differently-shaped recorders are rejected with
    /// [`SketchError::FingerprintMismatch`] before any combining happens.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn new(cfg: HiFindConfig) -> Result<Self, SketchError> {
        Ok(HiFindAggregator {
            fingerprint: cfg.fingerprint(),
            core: DetectionCore::new(cfg)?,
        })
    }

    /// Combines one interval's snapshots from all routers and runs the
    /// detection pipeline on the aggregate.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::CombineEmpty`] for an empty slice,
    /// [`SketchError::FingerprintMismatch`] if any snapshot was recorded
    /// under a configuration other than this site's, and
    /// [`SketchError::CombineMismatch`] if hand-assembled snapshot shapes
    /// differ.
    pub fn process_interval(
        &mut self,
        snapshots: &[IntervalSnapshot],
    ) -> Result<IntervalOutcome, SketchError> {
        let (first, rest) = snapshots.split_first().ok_or(SketchError::CombineEmpty)?;
        if first.fingerprint != self.fingerprint {
            return Err(SketchError::FingerprintMismatch {
                expected: self.fingerprint,
                got: first.fingerprint,
            });
        }
        let mut combined = first.clone();
        for s in rest {
            combined.combine_into(s)?;
        }
        Ok(self.core.process_snapshot(&combined))
    }

    /// The deduplicated alert log across all processed intervals.
    pub fn log(&self) -> &AlertLog {
        self.core.log()
    }

    /// The configuration in use.
    pub fn config(&self) -> &HiFindConfig {
        self.core.config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::HiFind;
    use crate::recorder::SketchRecorder;
    use crate::report::{AlertKind, Phase};
    use hifind_flow::rng::SplitMix64;
    use hifind_flow::{Ip4, Packet, Trace};

    /// A flood + scan trace and its per-packet split across 3 routers.
    fn scenario(cfg: &HiFindConfig) -> (Trace, Vec<Trace>) {
        let mut t = Trace::new();
        let victim: Ip4 = [129, 105, 0, 1].into();
        let scanner: Ip4 = [66, 6, 6, 6].into();
        for iv in 0..5u64 {
            let base = iv * cfg.interval_ms;
            for i in 0..30u32 {
                let c: Ip4 = [9, 9, 9, (i % 100) as u8].into();
                t.push(Packet::syn(
                    base + i as u64 * 7,
                    c,
                    4000 + i as u16,
                    victim,
                    80,
                ));
                t.push(Packet::syn_ack(
                    base + i as u64 * 7 + 1,
                    c,
                    4000 + i as u16,
                    victim,
                    80,
                ));
            }
            if iv >= 1 {
                for i in 0..250u32 {
                    t.push(Packet::syn(
                        base + 200 + i as u64,
                        Ip4::new(0x5100_0000 + i),
                        2000,
                        victim,
                        80,
                    ));
                    let dst: Ip4 = [129, 105, (i >> 8) as u8, i as u8].into();
                    t.push(Packet::syn(base + 300 + i as u64, scanner, 2100, dst, 445));
                }
            }
        }
        t.sort_by_time();
        // Per-packet random split (asymmetric routing simulation).
        let mut rng = SplitMix64::new(99);
        let mut parts = vec![Trace::new(); 3];
        for p in t.iter() {
            parts[rng.below(3) as usize].push(*p);
        }
        (t, parts)
    }

    #[test]
    fn aggregate_equals_single_router() {
        let cfg = HiFindConfig::small(50);
        let (merged, parts) = scenario(&cfg);

        // Single-router reference run.
        let mut single = HiFind::new(cfg).unwrap();
        let single_log = single.run_trace(&merged);

        // Distributed run: three recorders, one aggregator.
        let mut routers: Vec<SketchRecorder> =
            (0..3).map(|_| SketchRecorder::new(&cfg).unwrap()).collect();
        let mut site = HiFindAggregator::new(cfg).unwrap();
        let mut windows: Vec<Vec<&[Packet]>> = Vec::new();
        let per_router: Vec<Vec<_>> = parts
            .iter()
            .map(|t| t.intervals(cfg.interval_ms).collect::<Vec<_>>())
            .collect();
        let _ = &mut windows;
        let n = per_router.iter().map(Vec::len).max().unwrap();
        for iv in 0..n {
            let mut snaps = Vec::new();
            for (r, windows) in routers.iter_mut().zip(&per_router) {
                if let Some(w) = windows.get(iv) {
                    for p in w.packets {
                        r.record(p);
                    }
                }
                snaps.push(r.take_snapshot());
            }
            site.process_interval(&snaps).unwrap();
        }

        // Identical final detections (the paper's §5.3.2 claim).
        let mut single_final: Vec<_> = single_log
            .final_alerts()
            .iter()
            .map(|a| a.identity())
            .collect();
        let mut agg_final: Vec<_> = site
            .log()
            .final_alerts()
            .iter()
            .map(|a| a.identity())
            .collect();
        single_final.sort();
        agg_final.sort();
        assert_eq!(single_final, agg_final);
        assert!(
            site.log().count(Phase::Final, AlertKind::SynFlooding) >= 1,
            "aggregate must still detect the flood"
        );
        assert!(site.log().count(Phase::Final, AlertKind::HScan) >= 1);
    }

    #[test]
    fn foreign_config_snapshots_rejected() {
        // A router running a different seed must be rejected at the site
        // even if it is the only reporter (no pairwise combine happens).
        let site_cfg = HiFindConfig::small(60);
        let rogue_cfg = HiFindConfig::small(61);
        let mut site = HiFindAggregator::new(site_cfg).unwrap();
        let mut rogue = SketchRecorder::new(&rogue_cfg).unwrap();
        let err = site.process_interval(&[rogue.take_snapshot()]).unwrap_err();
        assert_eq!(
            err,
            SketchError::FingerprintMismatch {
                expected: site_cfg.fingerprint(),
                got: rogue_cfg.fingerprint(),
            }
        );
    }

    #[test]
    fn empty_snapshot_list_rejected() {
        let mut site = HiFindAggregator::new(HiFindConfig::small(51)).unwrap();
        assert_eq!(
            site.process_interval(&[]).unwrap_err(),
            SketchError::CombineEmpty
        );
    }

    #[test]
    fn single_router_under_split_loses_flows() {
        // Sanity check of the premise: one router alone sees only ~1/3 of
        // packets, and SYN/SYN-ACK pairs are separated, so a per-router
        // run differs from the aggregate. (This is what breaks TRW.)
        let cfg = HiFindConfig::small(52);
        let (_, parts) = scenario(&cfg);
        let mut solo = HiFind::new(cfg).unwrap();
        let solo_log = solo.run_trace(&parts[0]);
        // The solo router may or may not alert, but its view of traffic
        // volume must be partial.
        assert!(parts[0].len() < 2 * parts[1].len());
        let _ = solo_log;
    }
}
