//! Alert ↔ ground-truth matching for the experiment harness.
//!
//! Maps HiFIND (and baseline) alerts onto
//! [`hifind_trafficgen::GroundTruth`] records and computes the
//! detected / false-positive / missed counts the paper's tables report.

use crate::report::{Alert, AlertKind};
use hifind_trafficgen::{EventClass, GroundTruth, TruthEntry};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Evaluation of one alert kind against ground truth.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindEval {
    /// Distinct true attacks matched by at least one alert.
    pub detected: usize,
    /// Total true attacks of the kind in the ground truth.
    pub total_true: usize,
    /// Alerts matching a benign anomaly (classic false positives).
    pub benign_matches: usize,
    /// Alerts matching nothing in the ground truth at all.
    pub unmatched: usize,
}

impl KindEval {
    /// Detection rate in `[0, 1]` (1 when there is nothing to detect).
    pub fn recall(&self) -> f64 {
        if self.total_true == 0 {
            1.0
        } else {
            self.detected as f64 / self.total_true as f64
        }
    }

    /// False positives (benign + unmatched alerts).
    pub fn false_positives(&self) -> usize {
        self.benign_matches + self.unmatched
    }
}

impl fmt::Display for KindEval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} detected, {} FP ({} benign, {} unmatched)",
            self.detected,
            self.total_true,
            self.false_positives(),
            self.benign_matches,
            self.unmatched
        )
    }
}

/// Full evaluation summary across alert kinds.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalSummary {
    /// SYN flooding evaluation.
    pub flooding: KindEval,
    /// Horizontal-scan evaluation.
    pub hscan: KindEval,
    /// Vertical-scan evaluation.
    pub vscan: KindEval,
}

impl fmt::Display for EvalSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SYN flooding: {}", self.flooding)?;
        writeln!(f, "Hscan:        {}", self.hscan)?;
        write!(f, "Vscan:        {}", self.vscan)
    }
}

/// Whether an alert kind can legitimately match a truth class.
fn kind_matches_class(kind: AlertKind, class: EventClass) -> bool {
    match kind {
        AlertKind::SynFlooding => class.is_flooding(),
        AlertKind::HScan => matches!(class, EventClass::HScan | EventClass::BlockScan),
        AlertKind::VScan => matches!(class, EventClass::VScan | EventClass::BlockScan),
    }
}

/// Finds the truth entry an alert corresponds to, preferring true attacks
/// of the matching class, then benign events sharing the identifying
/// fields.
pub fn match_alert<'t>(alert: &Alert, truth: &'t GroundTruth) -> Option<&'t TruthEntry> {
    let mut best: Option<&TruthEntry> = None;
    for e in truth.iter() {
        if !e.matches(alert.sip, alert.dip, alert.dport) {
            continue;
        }
        let class_ok = kind_matches_class(alert.kind, e.class);
        match best {
            None => best = Some(e),
            Some(b) => {
                let b_ok = kind_matches_class(alert.kind, b.class);
                // Prefer class-consistent attacks over anything else.
                if (class_ok && e.class.is_attack()) && !(b_ok && b.class.is_attack()) {
                    best = Some(e);
                }
            }
        }
    }
    best
}

/// Evaluates a set of alerts (typically [`crate::AlertLog::final_alerts`])
/// against the scenario's ground truth.
pub fn evaluate(alerts: &[Alert], truth: &GroundTruth) -> EvalSummary {
    let mut summary = EvalSummary::default();
    let mut matched_truth: HashSet<usize> = HashSet::new();

    for alert in alerts {
        let eval = match alert.kind {
            AlertKind::SynFlooding => &mut summary.flooding,
            AlertKind::HScan => &mut summary.hscan,
            AlertKind::VScan => &mut summary.vscan,
        };
        match match_alert(alert, truth) {
            Some(e) if e.class.is_attack() && kind_matches_class(alert.kind, e.class) => {
                // Count each true attack once. `match_alert` returns a
                // reference into `truth`, so the position lookup always
                // succeeds; a miss would only mean a duplicate count was
                // avoided, so it is silently skipped rather than panicking.
                if let Some(idx) = truth.iter().position(|x| std::ptr::eq(x, e)) {
                    if matched_truth.insert(idx) {
                        eval.detected += 1;
                    }
                }
            }
            Some(_) => eval.benign_matches += 1,
            None => eval.unmatched += 1,
        }
    }

    for e in truth.attacks() {
        match e.class {
            c if c.is_flooding() => summary.flooding.total_true += 1,
            EventClass::HScan => summary.hscan.total_true += 1,
            EventClass::VScan => summary.vscan.total_true += 1,
            EventClass::BlockScan => summary.hscan.total_true += 1,
            _ => {}
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind_flow::Ip4;
    use hifind_trafficgen::TruthEntry;

    fn truth() -> GroundTruth {
        let mut gt = GroundTruth::new();
        gt.push(TruthEntry {
            class: EventClass::SynFloodSpoofed,
            sip: None,
            dip: Some([129, 105, 0, 1].into()),
            dport: Some(80),
            start_ms: 0,
            end_ms: 300_000,
            label: "flood".into(),
            packets: 10_000,
        });
        gt.push(TruthEntry {
            class: EventClass::HScan,
            sip: Some([66, 6, 6, 6].into()),
            dip: None,
            dport: Some(445),
            start_ms: 0,
            end_ms: 300_000,
            label: "scan".into(),
            packets: 3000,
        });
        gt.push(TruthEntry {
            class: EventClass::Congestion,
            sip: None,
            dip: Some([129, 105, 0, 2].into()),
            dport: Some(443),
            start_ms: 0,
            end_ms: 60_000,
            label: "congestion".into(),
            packets: 200,
        });
        gt
    }

    fn alert(kind: AlertKind, sip: Option<Ip4>, dip: Option<Ip4>, dport: Option<u16>) -> Alert {
        Alert {
            kind,
            sip,
            dip,
            dport,
            interval: 1,
            magnitude: 100,
            attacker_identified: sip.is_some(),
        }
    }

    #[test]
    fn true_positive_counted_once() {
        let gt = truth();
        let alerts = vec![
            alert(
                AlertKind::SynFlooding,
                None,
                Some([129, 105, 0, 1].into()),
                Some(80),
            ),
            alert(
                AlertKind::SynFlooding,
                None,
                Some([129, 105, 0, 1].into()),
                Some(80),
            ),
        ];
        let s = evaluate(&alerts, &gt);
        assert_eq!(s.flooding.detected, 1);
        assert_eq!(s.flooding.total_true, 1);
        assert_eq!(s.flooding.false_positives(), 0);
        assert_eq!(s.flooding.recall(), 1.0);
    }

    #[test]
    fn benign_match_is_false_positive() {
        let gt = truth();
        let alerts = vec![alert(
            AlertKind::SynFlooding,
            None,
            Some([129, 105, 0, 2].into()),
            Some(443),
        )];
        let s = evaluate(&alerts, &gt);
        assert_eq!(s.flooding.detected, 0);
        assert_eq!(s.flooding.benign_matches, 1);
        assert_eq!(s.flooding.false_positives(), 1);
    }

    #[test]
    fn unmatched_alert_is_false_positive() {
        let gt = truth();
        let alerts = vec![alert(
            AlertKind::VScan,
            Some([1, 2, 3, 4].into()),
            Some([5, 6, 7, 8].into()),
            None,
        )];
        let s = evaluate(&alerts, &gt);
        assert_eq!(s.vscan.unmatched, 1);
    }

    #[test]
    fn scan_detection_matched_by_source_and_port() {
        let gt = truth();
        let alerts = vec![alert(
            AlertKind::HScan,
            Some([66, 6, 6, 6].into()),
            None,
            Some(445),
        )];
        let s = evaluate(&alerts, &gt);
        assert_eq!(s.hscan.detected, 1);
        assert_eq!(s.hscan.total_true, 1);
    }

    #[test]
    fn missed_attacks_lower_recall() {
        let gt = truth();
        let s = evaluate(&[], &gt);
        assert_eq!(s.flooding.detected, 0);
        assert_eq!(s.flooding.recall(), 0.0);
        assert_eq!(s.hscan.recall(), 0.0);
        // No vscans in truth → vacuous recall of 1.
        assert_eq!(s.vscan.recall(), 1.0);
    }

    #[test]
    fn wrong_kind_does_not_steal_match() {
        // A vscan alert naming the flood victim must not count as
        // detecting the flood.
        let gt = truth();
        let alerts = vec![alert(
            AlertKind::VScan,
            Some([7, 7, 7, 7].into()),
            Some([129, 105, 0, 1].into()),
            None,
        )];
        let s = evaluate(&alerts, &gt);
        assert_eq!(s.flooding.detected, 0);
        // It matches the flood entry by dip but with the wrong kind →
        // counted as a (benign-ish) mismatch FP.
        assert_eq!(s.vscan.false_positives(), 1);
    }

    #[test]
    fn display_is_informative() {
        let s = evaluate(&[], &truth());
        let text = s.to_string();
        assert!(text.contains("SYN flooding"));
        assert!(text.contains("0/1 detected"));
    }
}
