//! `hifind` — command-line front end for the HiFIND IDS.
//!
//! ```console
//! $ hifind generate --preset nu --scale 0.05 --seed 7 --out campus.hfnd
//! $ hifind info     --trace campus.hfnd
//! $ hifind detect   --trace campus.hfnd --mitigate
//! ```

use hifind::mitigate::{plan, MitigationPolicy};
use hifind::postprocess::correlate_block_scans;
use hifind::{AlertKind, HiFind, HiFindConfig, Phase, RunReport};
use hifind_flow::Trace;
use hifind_trafficgen::presets;
use std::process::ExitCode;

const USAGE: &str = "\
hifind — DoS-resilient flow-level intrusion detection (ICDCS'06 reproduction)

USAGE:
    hifind generate --preset <nu|lbl|dos> [--scale F] [--seed N] --out FILE
    hifind info     --trace FILE [--metrics-json FILE]
    hifind detect   --trace FILE [--seed N] [--interval-secs N] [--threshold-per-sec F]
                    [--phases] [--mitigate] [--stats] [--metrics-json FILE]

    Trace files ending in .csv use the human-readable CSV format
    (ts_ms,src,sport,dst,dport,kind,direction); anything else uses the
    compact binary .hfnd format.

COMMANDS:
    generate   synthesize a workload trace (binary .hfnd format)
    info       print trace statistics
    detect     run the full three-phase pipeline and print final alerts

OPTIONS:
    --preset             workload preset: nu (campus mix), lbl (scan-heavy lab),
                         dos (spoofed smokescreen + real scan)
    --scale F            workload intensity multiplier (default 0.1)
    --seed N             deterministic seed (default 2026)
    --interval-secs N    detection interval (default 60)
    --threshold-per-sec F  unresponded SYNs per second to alert on (default 1)
    --phases             also print per-phase alert counts (Table 4 style)
    --mitigate           print the derived mitigation plan
    --stats              print the run telemetry summary (phase latencies,
                         alert funnel, sketch health)
    --metrics-json FILE  write machine-readable run telemetry (detect) or
                         trace statistics (info) as JSON
";

struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                let value = argv.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_string(), value));
            }
            i += 1;
        }
        Args { flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {raw}")),
        }
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        return Err(USAGE.into());
    };
    let args = Args::parse(&argv[1..]);
    match command.as_str() {
        "generate" => generate(&args),
        "info" => info(&args),
        "detect" => detect(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn load_trace(args: &Args) -> Result<Trace, String> {
    let path = args.get("trace").ok_or("missing --trace FILE")?;
    if path.ends_with(".csv") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        hifind_flow::text::parse_csv(&text).map_err(|e| format!("cannot parse {path}: {e}"))
    } else {
        let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Trace::from_bytes(&bytes).map_err(|e| format!("cannot decode {path}: {e}"))
    }
}

fn generate(args: &Args) -> Result<(), String> {
    let preset = args.get("preset").ok_or("missing --preset <nu|lbl|dos>")?;
    let scale: f64 = args.get_parsed("scale", 0.1)?;
    let seed: u64 = args.get_parsed("seed", 2026)?;
    let out = args.get("out").ok_or("missing --out FILE")?;
    let scenario = match preset {
        "nu" => presets::nu_like(seed),
        "lbl" => presets::lbl_like(seed),
        "dos" => presets::dos_resilience(seed),
        other => return Err(format!("unknown preset '{other}' (use nu, lbl or dos)")),
    }
    .scaled(scale);
    eprintln!("generating {} at scale {scale}...", scenario.name);
    let (trace, truth) = scenario.generate();
    if out.ends_with(".csv") {
        std::fs::write(out, hifind_flow::text::to_csv(&trace))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
    } else {
        std::fs::write(out, trace.to_bytes()).map_err(|e| format!("cannot write {out}: {e}"))?;
    }
    println!("{}", trace.stats());
    println!(
        "{} attack campaigns, {} benign anomalies; written to {out}",
        truth.attacks().count(),
        truth.benign().count()
    );
    Ok(())
}

/// The value of `--metrics-json`, or an error if the flag is present
/// without a file operand.
fn metrics_json_path(args: &Args) -> Result<Option<String>, String> {
    if args.has("metrics-json") && args.get("metrics-json").is_none() {
        return Err("--metrics-json needs a FILE operand".into());
    }
    Ok(args.get("metrics-json").map(String::from))
}

fn write_json<T: serde::Serialize>(path: &str, value: &T) -> Result<(), String> {
    let bytes = serde_json::to_vec_pretty(value).map_err(|e| format!("serialize: {e}"))?;
    std::fs::write(path, bytes).map_err(|e| format!("cannot write {path}: {e}"))
}

fn info(args: &Args) -> Result<(), String> {
    let metrics_json = metrics_json_path(args)?;
    let trace = load_trace(args)?;
    let stats = trace.stats();
    println!("{stats}");
    if let Some(path) = metrics_json {
        write_json(&path, &stats)?;
        eprintln!("trace statistics written to {path}");
    }
    Ok(())
}

fn detect(args: &Args) -> Result<(), String> {
    let metrics_json = metrics_json_path(args)?;
    let trace = load_trace(args)?;
    let seed: u64 = args.get_parsed("seed", 2026)?;
    let interval_secs: u64 = args.get_parsed("interval-secs", 60)?;
    let threshold: f64 = args.get_parsed("threshold-per-sec", 1.0)?;
    let mut cfg = HiFindConfig::paper(seed);
    cfg.interval_ms = interval_secs.max(1) * 1000;
    cfg.threshold_per_sec = threshold;
    cfg.validate()?;
    let interval_ms = cfg.interval_ms;
    let saturation_threshold = cfg.interval_threshold();
    let mut ids = HiFind::new(cfg).map_err(|e| e.to_string())?;

    // Telemetry is collected whenever someone will consume it.
    let mut report = (metrics_json.is_some() || args.has("stats")).then(RunReport::new);
    if let Some(r) = &mut report {
        r.sketch_memory_bytes = ids.recorder().memory_bytes();
    }
    for window in trace.intervals(interval_ms) {
        for p in window.packets {
            ids.record(p);
        }
        match &mut report {
            Some(r) => {
                let (outcome, snapshot) = ids.end_interval_with_snapshot();
                r.record_interval(&outcome, &snapshot, saturation_threshold);
            }
            None => {
                ids.end_interval();
            }
        }
    }
    let log = ids.log().clone();

    if args.has("phases") {
        println!("{:<18}{:>6}{:>10}{:>8}", "type", "raw", "after-2D", "final");
        for kind in [AlertKind::SynFlooding, AlertKind::HScan, AlertKind::VScan] {
            println!(
                "{:<18}{:>6}{:>10}{:>8}",
                kind.to_string(),
                log.count(Phase::Raw, kind),
                log.count(Phase::AfterClassification, kind),
                log.count(Phase::Final, kind),
            );
        }
        println!();
    }

    if log.final_alerts().is_empty() {
        println!("no intrusions detected");
    } else {
        println!("{} final alerts:", log.final_alerts().len());
        for alert in log.final_alerts() {
            println!("  {alert}");
        }
        let blocks = correlate_block_scans(log.final_alerts(), 3, 3);
        for b in &blocks {
            println!("  {b}");
        }
    }

    if args.has("mitigate") {
        let actions = plan(log.final_alerts(), &MitigationPolicy::default());
        println!("\nmitigation plan ({} actions):", actions.len());
        for a in &actions {
            println!("  {a}");
        }
    }

    if let Some(report) = &report {
        if args.has("stats") {
            println!("\n{}", report.summary_text());
        }
        if let Some(path) = &metrics_json {
            write_json(path, report)?;
            eprintln!("run telemetry written to {path}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_flags_with_and_without_values() {
        let a = args(&["--preset", "nu", "--phases", "--scale", "0.5"]);
        assert_eq!(a.get("preset"), Some("nu"));
        assert!(a.has("phases"));
        assert_eq!(a.get_parsed::<f64>("scale", 1.0).unwrap(), 0.5);
        assert_eq!(a.get_parsed::<u64>("seed", 7).unwrap(), 7); // default
    }

    #[test]
    fn flag_followed_by_flag_has_no_value() {
        let a = args(&["--phases", "--mitigate"]);
        assert!(a.has("phases"));
        assert!(a.has("mitigate"));
        assert_eq!(a.get("phases"), None);
    }

    #[test]
    fn invalid_numeric_value_is_an_error() {
        let a = args(&["--scale", "abc"]);
        let err = a.get_parsed::<f64>("scale", 1.0).unwrap_err();
        assert!(err.contains("--scale"));
    }

    #[test]
    fn generate_requires_preset_and_out() {
        assert!(generate(&args(&[])).unwrap_err().contains("--preset"));
        assert!(generate(&args(&["--preset", "nu"]))
            .unwrap_err()
            .contains("--out"));
        assert!(generate(&args(&["--preset", "bogus", "--out", "/tmp/x"]))
            .unwrap_err()
            .contains("unknown preset"));
    }

    #[test]
    fn detect_requires_trace() {
        assert!(detect(&args(&[])).unwrap_err().contains("--trace"));
        assert!(detect(&args(&["--trace", "/nonexistent/file.hfnd"]))
            .unwrap_err()
            .contains("cannot read"));
    }

    #[test]
    fn malformed_binary_trace_is_a_clean_error() {
        let dir = std::env::temp_dir().join(format!("hifind-cli-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Garbage bytes: wrong magic.
        let garbage = dir.join("garbage.hfnd");
        std::fs::write(&garbage, b"this is not a trace file at all").unwrap();
        let err = detect(&args(&["--trace", garbage.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("cannot decode"), "{err}");

        // Truncated: valid header claiming more records than present.
        let full = dir.join("full.hfnd");
        generate(&args(&[
            "--preset",
            "dos",
            "--scale",
            "0.02",
            "--seed",
            "3",
            "--out",
            full.to_str().unwrap(),
        ]))
        .unwrap();
        let bytes = std::fs::read(&full).unwrap();
        let truncated = dir.join("truncated.hfnd");
        std::fs::write(&truncated, &bytes[..bytes.len() - 7]).unwrap();
        let err = detect(&args(&["--trace", truncated.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("cannot decode"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_csv_trace_is_a_clean_error() {
        let dir = std::env::temp_dir().join(format!("hifind-cli-badcsv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.csv");
        std::fs::write(
            &bad,
            "ts_ms,src,sport,dst,dport,kind,direction\nnot,a,valid,row\n",
        )
        .unwrap();
        let err = detect(&args(&["--trace", bad.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("cannot parse"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_json_needs_a_file_operand() {
        let err = detect(&args(&["--trace", "/tmp/x.hfnd", "--metrics-json"])).unwrap_err();
        assert!(err.contains("--metrics-json"), "{err}");
    }

    #[test]
    fn detect_writes_run_report_json() {
        let dir = std::env::temp_dir().join(format!("hifind-cli-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.hfnd");
        let metrics = dir.join("metrics.json");
        generate(&args(&[
            "--preset",
            "dos",
            "--scale",
            "0.03",
            "--seed",
            "9",
            "--out",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        detect(&args(&[
            "--trace",
            trace.to_str().unwrap(),
            "--stats",
            "--metrics-json",
            metrics.to_str().unwrap(),
        ]))
        .unwrap();

        let json = std::fs::read_to_string(&metrics).unwrap();
        let report: RunReport = serde_json::from_str(&json).unwrap();
        assert!(!report.intervals.is_empty());
        assert_eq!(
            report.phase_latency.total.count,
            report.intervals.len() as u64
        );
        assert!(report.phase_latency.total.sum_ns > 0);
        assert!(report.sketch_memory_bytes > 0);
        // Every interval carries the health of all six sketch grids.
        assert!(report
            .intervals
            .iter()
            .all(|iv| iv.sketch_health.len() == 6));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn info_writes_trace_stats_json() {
        let dir = std::env::temp_dir().join(format!("hifind-cli-info-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.hfnd");
        let stats = dir.join("stats.json");
        generate(&args(&[
            "--preset",
            "nu",
            "--scale",
            "0.02",
            "--seed",
            "4",
            "--out",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        info(&args(&[
            "--trace",
            trace.to_str().unwrap(),
            "--metrics-json",
            stats.to_str().unwrap(),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&stats).unwrap();
        assert!(json.contains("packets"), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_trace_round_trip_through_cli() {
        let dir = std::env::temp_dir().join(format!("hifind-cli-csv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("t.csv");
        let out_str = out.to_str().unwrap();
        generate(&args(&[
            "--preset", "dos", "--scale", "0.02", "--seed", "6", "--out", out_str,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.starts_with("ts_ms,src,sport"));
        info(&args(&["--trace", out_str])).unwrap();
        detect(&args(&["--trace", out_str])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_info_detect_round_trip() {
        let dir = std::env::temp_dir().join(format!("hifind-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("t.hfnd");
        let out_str = out.to_str().unwrap();
        generate(&args(&[
            "--preset", "dos", "--scale", "0.03", "--seed", "5", "--out", out_str,
        ]))
        .unwrap();
        info(&args(&["--trace", out_str])).unwrap();
        detect(&args(&[
            "--trace",
            out_str,
            "--phases",
            "--mitigate",
            "--interval-secs",
            "60",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
