//! The per-packet data plane: six sketches plus the active-service filter.

use crate::config::HiFindConfig;
use crate::plan::{HashPlan, PlanBatch};
use hifind_flow::{Packet, SegmentKind};
use hifind_hashing::BloomFilter;
use hifind_sketch::{CounterGrid, KarySketch, ReversibleSketch, SketchError, TwoDSketch};
use serde::{Deserialize, Serialize};

/// Everything one router records during one detection interval, in
/// combinable (linear) form.
///
/// Snapshots are what routers ship to the aggregation site (§3.1): pure
/// counter grids plus the active-service Bloom filter — no keys, no
/// per-flow state. [`IntervalSnapshot::combine_into`] is the paper's
/// `COMBINE` applied across vantage points.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IntervalSnapshot {
    /// `{SIP,Dport}` reversible-sketch grid (value `#SYN − #SYN/ACK`).
    pub rs_sip_dport: CounterGrid,
    /// Verifier grid for [`IntervalSnapshot::rs_sip_dport`].
    pub rs_sip_dport_verifier: CounterGrid,
    /// `{DIP,Dport}` reversible-sketch grid.
    pub rs_dip_dport: CounterGrid,
    /// Verifier grid for [`IntervalSnapshot::rs_dip_dport`].
    pub rs_dip_dport_verifier: CounterGrid,
    /// `{SIP,DIP}` reversible-sketch grid.
    pub rs_sip_dip: CounterGrid,
    /// Verifier grid for [`IntervalSnapshot::rs_sip_dip`].
    pub rs_sip_dip_verifier: CounterGrid,
    /// Original-sketch grid (`#SYN` per `{DIP,Dport}`).
    pub os: CounterGrid,
    /// 2D grid for `{SIP,Dport} × {DIP}`.
    pub twod_sipdport_dip: CounterGrid,
    /// 2D grid for `{SIP,DIP} × {Dport}`.
    pub twod_sipdip_dport: CounterGrid,
    /// Cumulative active-service filter (services that ever SYN/ACKed).
    pub active_services: BloomFilter,
    /// Total SYNs this interval.
    pub syn_count: u64,
    /// Total SYN/ACKs this interval.
    pub syn_ack_count: u64,
    /// Total FIN+RST this interval (for the CPM comparison harness).
    pub fin_rst_count: u64,
    /// Record-plane configuration fingerprint
    /// ([`HiFindConfig::fingerprint`]): shapes **and** seeds of every
    /// sketch this snapshot was recorded with. Combining checks it first,
    /// so same-shape/different-seed snapshots are rejected instead of
    /// summing counters of unrelated key sets.
    pub fingerprint: u64,
}

impl IntervalSnapshot {
    /// Adds another router's snapshot into this one (sketch linearity +
    /// Bloom union).
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::FingerprintMismatch`] if the two snapshots
    /// were recorded under different configurations or seeds, and
    /// [`SketchError::CombineMismatch`] if grid shapes differ (possible
    /// only for hand-assembled snapshots, since the fingerprint already
    /// covers shapes).
    pub fn combine_into(&mut self, other: &IntervalSnapshot) -> Result<(), SketchError> {
        self.combine_many(&[other]).map(|_| ())
    }

    /// Adds several routers' snapshots into this one in a single
    /// cache-blocked pass per grid ([`CounterGrid::add_assign_many`]): each
    /// destination tile is brought into cache once and every source's
    /// matching tile is folded in before moving on, instead of streaming
    /// the full destination through cache once per source.
    ///
    /// Returns the counter bytes the merge touched — every source grid
    /// read once plus the destination read and written once — which the
    /// parallel-record bench reports as merge bandwidth.
    ///
    /// # Errors
    ///
    /// [`SketchError::FingerprintMismatch`] /
    /// [`SketchError::CombineMismatch`] as for
    /// [`IntervalSnapshot::combine_into`]. Every fingerprint is checked
    /// before any counter is modified; a shape mismatch (possible only for
    /// hand-assembled snapshots, since the fingerprint covers shapes) may
    /// leave earlier grids already combined, as with `combine_into`.
    pub fn combine_many(&mut self, others: &[&IntervalSnapshot]) -> Result<u64, SketchError> {
        if others.is_empty() {
            return Ok(0);
        }
        for other in others {
            if self.fingerprint != other.fingerprint {
                return Err(SketchError::FingerprintMismatch {
                    expected: self.fingerprint,
                    got: other.fingerprint,
                });
            }
        }
        let mut bytes = 0u64;
        macro_rules! merge_grid {
            ($field:ident) => {{
                let sources: Vec<&CounterGrid> = others.iter().map(|o| &o.$field).collect();
                self.$field.add_assign_many(&sources)?;
                // Each source read once + destination read and written once.
                bytes += self.$field.memory_bytes() as u64 * (others.len() as u64 + 2);
            }};
        }
        merge_grid!(rs_sip_dport);
        merge_grid!(rs_sip_dport_verifier);
        merge_grid!(rs_dip_dport);
        merge_grid!(rs_dip_dport_verifier);
        merge_grid!(rs_sip_dip);
        merge_grid!(rs_sip_dip_verifier);
        merge_grid!(os);
        merge_grid!(twod_sipdport_dip);
        merge_grid!(twod_sipdip_dport);
        for other in others {
            self.active_services.union(&other.active_services);
            self.syn_count += other.syn_count;
            self.syn_ack_count += other.syn_ack_count;
            self.fin_rst_count += other.fin_rst_count;
        }
        Ok(bytes)
    }

    /// Serialized size estimate in bytes (what a router ships per
    /// interval).
    pub fn wire_size_bytes(&self) -> usize {
        [
            &self.rs_sip_dport,
            &self.rs_sip_dport_verifier,
            &self.rs_dip_dport,
            &self.rs_dip_dport_verifier,
            &self.rs_sip_dip,
            &self.rs_sip_dip_verifier,
            &self.os,
            &self.twod_sipdport_dip,
            &self.twod_sipdip_dport,
        ]
        .iter()
        .map(|g| g.memory_bytes())
        .sum::<usize>()
            + self.active_services.memory_bytes()
    }
}

/// The streaming data-recording module of Figure 2.
///
/// `record` is the only per-packet operation in HiFIND; everything else
/// runs once per interval in the background. Per SYN or SYN/ACK it touches
/// `3 × (6 + 6)` reversible-sketch counters, `6` k-ary counters and
/// `2 × 5` 2D cells — constant work, independent of the number of flows,
/// which is the DoS-resilience property (§3.5). Hash inputs are computed
/// once per packet into a [`HashPlan`] and shared by all six sketches,
/// so the ALU work per packet is a single pass too.
#[derive(Clone, Debug)]
pub struct SketchRecorder {
    rs_sip_dport: ReversibleSketch,
    rs_dip_dport: ReversibleSketch,
    rs_sip_dip: ReversibleSketch,
    os: KarySketch,
    twod_sipdport_dip: TwoDSketch,
    twod_sipdip_dport: TwoDSketch,
    active_services: BloomFilter,
    syn_count: u64,
    syn_ack_count: u64,
    fin_rst_count: u64,
    fingerprint: u64,
    /// Reusable plan batch for [`SketchRecorder::record_all`].
    scratch: PlanBatch,
}

/// Plans accumulated per [`SketchRecorder::record_all`] flush: a few SIMD
/// chunks' worth, small enough that all twelve premix columns stay within
/// L1 while the sketches scatter from them.
const RECORD_BATCH: usize = 256;

impl SketchRecorder {
    /// Builds the recorder from a configuration.
    ///
    /// # Errors
    ///
    /// Propagates sketch construction errors (invalid stage/bucket
    /// combinations).
    pub fn new(cfg: &HiFindConfig) -> Result<Self, SketchError> {
        Ok(SketchRecorder {
            fingerprint: cfg.fingerprint(),
            rs_sip_dport: ReversibleSketch::new(cfg.rs_sip_dport_config())?,
            rs_dip_dport: ReversibleSketch::new(cfg.rs_dip_dport_config())?,
            rs_sip_dip: ReversibleSketch::new(cfg.rs_sip_dip_config())?,
            os: KarySketch::new(cfg.os)?,
            twod_sipdport_dip: TwoDSketch::new(cfg.twod_sipdport_dip_config())?,
            twod_sipdip_dport: TwoDSketch::new(cfg.twod_sipdip_dport_config())?,
            active_services: BloomFilter::new(cfg.active_service_bloom_bits, 4, cfg.seed ^ 0xB100),
            syn_count: 0,
            syn_ack_count: 0,
            fin_rst_count: 0,
            scratch: PlanBatch::with_capacity(RECORD_BATCH),
        })
    }

    /// Records one packet (the hot path).
    #[inline]
    pub fn record(&mut self, packet: &Packet) {
        let Some(o) = packet.orient() else { return };
        match o.kind {
            SegmentKind::Syn | SegmentKind::SynAck => {
                self.record_plan(&HashPlan::for_oriented(&o));
            }
            SegmentKind::Fin | SegmentKind::Rst => self.fin_rst_count += 1,
            SegmentKind::Other => {}
        }
    }

    /// Applies one prepared [`HashPlan`]: the single-pass hot path. Keys
    /// are packed and pre-mixed exactly once (in the plan) and every
    /// sketch consumes the shared digests, instead of each of the six
    /// re-deriving them.
    #[inline]
    pub fn record_plan(&mut self, plan: &HashPlan) {
        let v = plan.value;
        self.rs_sip_dport
            .update_premixed(plan.sip_dport, plan.sip_dport_mix, v);
        self.rs_dip_dport
            .update_premixed(plan.dip_dport, plan.dip_dport_mix, v);
        self.rs_sip_dip
            .update_premixed(plan.sip_dip, plan.sip_dip_mix, v);
        self.twod_sipdport_dip
            .update_premixed(plan.sip_dport_mix, plan.dip_mix, v);
        self.twod_sipdip_dport
            .update_premixed(plan.sip_dip_mix, plan.dport_mix, v);
        if plan.is_syn {
            self.os.update_premixed(plan.dip_dport_mix, 1);
            self.syn_count += 1;
        } else {
            self.active_services.insert(plan.dip_dport);
            self.syn_ack_count += 1;
        }
    }

    /// Records a slice of packets through the batched SIMD path.
    ///
    /// Packets are planned into a structure-of-arrays [`PlanBatch`] and
    /// flushed to the sketches in [`RECORD_BATCH`]-sized groups, letting
    /// the dispatched [`hifind_sketch::SketchKernel`] finish bucket indices
    /// four packets per instruction and the per-stage counter scatter run
    /// as a deep chain of independent accesses. Bit-identical to calling
    /// [`SketchRecorder::record`] per packet: every sketch sees the same
    /// update sequence, just grouped.
    pub fn record_all(&mut self, packets: &[Packet]) {
        let mut batch = std::mem::take(&mut self.scratch);
        batch.clear();
        for packet in packets {
            let Some(o) = packet.orient() else { continue };
            match o.kind {
                SegmentKind::Syn | SegmentKind::SynAck => {
                    batch.push(&HashPlan::for_oriented(&o));
                    if batch.len() >= RECORD_BATCH {
                        self.record_batch(&batch);
                        batch.clear();
                    }
                }
                SegmentKind::Fin | SegmentKind::Rst => self.fin_rst_count += 1,
                SegmentKind::Other => {}
            }
        }
        self.record_batch(&batch);
        batch.clear();
        self.scratch = batch;
    }

    /// Applies a prepared [`PlanBatch`]: each sketch consumes its premix
    /// columns whole, so the kernels vectorize the hash finishing and the
    /// counter scatters are issued back-to-back per stage.
    pub fn record_batch(&mut self, batch: &PlanBatch) {
        if batch.is_empty() {
            return;
        }
        self.rs_sip_dport
            .update_batch(&batch.sip_dport, &batch.sip_dport_mix, &batch.values);
        self.rs_dip_dport
            .update_batch(&batch.dip_dport, &batch.dip_dport_mix, &batch.values);
        self.rs_sip_dip
            .update_batch(&batch.sip_dip, &batch.sip_dip_mix, &batch.values);
        self.twod_sipdport_dip.update_batch_premixed(
            &batch.sip_dport_mix,
            &batch.dip_mix,
            &batch.values,
        );
        self.twod_sipdip_dport.update_batch_premixed(
            &batch.sip_dip_mix,
            &batch.dport_mix,
            &batch.values,
        );
        self.os.update_batch_premixed(&batch.os_mix, &batch.os_ones);
        for &key in &batch.synack_keys {
            self.active_services.insert(key);
        }
        self.syn_count += batch.os_ones.len() as u64;
        self.syn_ack_count += batch.synack_keys.len() as u64;
    }

    /// Ends the interval: returns the snapshot and clears the per-interval
    /// counters (the active-service filter is cumulative and persists).
    pub fn take_snapshot(&mut self) -> IntervalSnapshot {
        // Paper configurations always attach verifiers; a verifier-less
        // sketch contributes a minimal zero grid instead of aborting the
        // data plane, keeping snapshots structurally complete either way.
        fn verifier_grid(s: &ReversibleSketch) -> CounterGrid {
            s.verifier()
                .map_or_else(|| CounterGrid::new(1, 1), |v| v.grid().clone())
        }
        let snap = IntervalSnapshot {
            rs_sip_dport: self.rs_sip_dport.grid().clone(),
            rs_sip_dport_verifier: verifier_grid(&self.rs_sip_dport),
            rs_dip_dport: self.rs_dip_dport.grid().clone(),
            rs_dip_dport_verifier: verifier_grid(&self.rs_dip_dport),
            rs_sip_dip: self.rs_sip_dip.grid().clone(),
            rs_sip_dip_verifier: verifier_grid(&self.rs_sip_dip),
            os: self.os.grid().clone(),
            twod_sipdport_dip: self.twod_sipdport_dip.grid().clone(),
            twod_sipdip_dport: self.twod_sipdip_dport.grid().clone(),
            active_services: self.active_services.clone(),
            syn_count: self.syn_count,
            syn_ack_count: self.syn_ack_count,
            fin_rst_count: self.fin_rst_count,
            fingerprint: self.fingerprint,
        };
        self.rs_sip_dport.clear();
        self.rs_dip_dport.clear();
        self.rs_sip_dip.clear();
        self.os.clear();
        self.twod_sipdport_dip.clear();
        self.twod_sipdip_dport.clear();
        self.syn_count = 0;
        self.syn_ack_count = 0;
        self.fin_rst_count = 0;
        snap
    }

    /// The record-plane configuration fingerprint stamped on every
    /// snapshot (see [`HiFindConfig::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Total recording memory in bytes (§5.5.1; the Table 9 model applies
    /// hardware counter widths to the same bucket counts).
    pub fn memory_bytes(&self) -> usize {
        self.rs_sip_dport.memory_bytes()
            + self.rs_dip_dport.memory_bytes()
            + self.rs_sip_dip.memory_bytes()
            + self.os.memory_bytes()
            + self.twod_sipdport_dip.memory_bytes()
            + self.twod_sipdip_dport.memory_bytes()
            + self.active_services.memory_bytes()
    }

    /// Counter memory accesses per recorded SYN/SYN-ACK (§5.5.2).
    pub fn accesses_per_packet(&self) -> usize {
        self.rs_sip_dport.accesses_per_update()
            + self.rs_dip_dport.accesses_per_update()
            + self.rs_sip_dip.accesses_per_update()
            + self.os.accesses_per_update()
            + self.twod_sipdport_dip.accesses_per_update()
            + self.twod_sipdip_dport.accesses_per_update()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind_flow::keys::{DipDport, SketchKey};
    use hifind_flow::{Ip4, Packet};

    fn cfg() -> HiFindConfig {
        HiFindConfig::small(5)
    }

    fn syn(ts: u64) -> Packet {
        Packet::syn(ts, [1, 2, 3, 4].into(), 999, [129, 105, 0, 1].into(), 80)
    }

    #[test]
    fn syn_and_synack_cancel_in_all_value_sketches() {
        let mut r = SketchRecorder::new(&cfg()).unwrap();
        let c: Ip4 = [1, 2, 3, 4].into();
        let s: Ip4 = [129, 105, 0, 1].into();
        for i in 0..50 {
            r.record(&Packet::syn(i, c, 999, s, 80));
            r.record(&Packet::syn_ack(i, c, 999, s, 80));
        }
        let snap = r.take_snapshot();
        assert!(snap.rs_sip_dport.is_zero());
        assert!(snap.rs_dip_dport.is_zero());
        assert!(snap.rs_sip_dip.is_zero());
        assert!(snap.twod_sipdip_dport.is_zero());
        // The OS records #SYN only, so it is NOT zero.
        assert!(!snap.os.is_zero());
        assert_eq!(snap.syn_count, 50);
        assert_eq!(snap.syn_ack_count, 50);
    }

    #[test]
    fn active_services_learns_from_synacks_only() {
        let mut r = SketchRecorder::new(&cfg()).unwrap();
        let c: Ip4 = [1, 2, 3, 4].into();
        let live: Ip4 = [129, 105, 0, 1].into();
        let dead: Ip4 = [129, 105, 0, 2].into();
        r.record(&Packet::syn(0, c, 999, live, 80));
        r.record(&Packet::syn_ack(1, c, 999, live, 80));
        r.record(&Packet::syn(2, c, 998, dead, 80));
        let snap = r.take_snapshot();
        assert!(snap
            .active_services
            .contains(DipDport::new(live, 80).to_u64()));
        assert!(!snap
            .active_services
            .contains(DipDport::new(dead, 80).to_u64()));
    }

    #[test]
    fn snapshot_clears_interval_state_but_keeps_bloom() {
        let mut r = SketchRecorder::new(&cfg()).unwrap();
        let c: Ip4 = [1, 2, 3, 4].into();
        let s: Ip4 = [129, 105, 0, 1].into();
        r.record(&Packet::syn(0, c, 999, s, 80));
        r.record(&Packet::syn_ack(1, c, 999, s, 80));
        let _ = r.take_snapshot();
        let snap2 = r.take_snapshot();
        assert!(snap2.rs_dip_dport.is_zero());
        assert!(snap2.os.is_zero());
        assert_eq!(snap2.syn_count, 0);
        // Bloom is cumulative.
        assert!(snap2
            .active_services
            .contains(DipDport::new(s, 80).to_u64()));
    }

    #[test]
    fn fins_and_rsts_do_not_touch_sketches() {
        let mut r = SketchRecorder::new(&cfg()).unwrap();
        let c: Ip4 = [1, 2, 3, 4].into();
        let s: Ip4 = [129, 105, 0, 1].into();
        r.record(&Packet::fin(0, c, 999, s, 80));
        r.record(&Packet::rst(1, c, 999, s, 80));
        let snap = r.take_snapshot();
        assert!(snap.rs_dip_dport.is_zero());
        assert!(snap.os.is_zero());
        assert_eq!(snap.fin_rst_count, 2);
    }

    #[test]
    fn combine_equals_single_recorder() {
        let config = cfg();
        let mut merged = SketchRecorder::new(&config).unwrap();
        let mut a = SketchRecorder::new(&config).unwrap();
        let mut b = SketchRecorder::new(&config).unwrap();
        for i in 0..500u64 {
            let p = syn(i);
            merged.record(&p);
            if i % 2 == 0 {
                a.record(&p);
            } else {
                b.record(&p);
            }
        }
        let mut sa = a.take_snapshot();
        let sb = b.take_snapshot();
        sa.combine_into(&sb).unwrap();
        let sm = merged.take_snapshot();
        assert_eq!(sa.rs_dip_dport, sm.rs_dip_dport);
        assert_eq!(sa.rs_sip_dip, sm.rs_sip_dip);
        assert_eq!(sa.os, sm.os);
        assert_eq!(sa.twod_sipdip_dport, sm.twod_sipdip_dport);
        assert_eq!(sa.syn_count, sm.syn_count);
    }

    #[test]
    fn record_all_is_bit_identical_to_per_packet_record() {
        use hifind_flow::rng::SplitMix64;
        let config = cfg();
        let mut serial = SketchRecorder::new(&config).unwrap();
        let mut batched = SketchRecorder::new(&config).unwrap();
        let mut rng = SplitMix64::new(77);
        // 3 × RECORD_BATCH + ragged tail, with FIN/RST/Other mixed in so
        // the batched path's bookkeeping is exercised too.
        let pkts: Vec<Packet> = (0..(3 * RECORD_BATCH + 19) as u64)
            .map(|i| {
                let c = Ip4::new(rng.next_u32());
                let s = Ip4::new(0x8169_0000 | (rng.next_u32() & 0xFF));
                let port = 1 + (rng.next_u32() & 0x3FF) as u16;
                match rng.below(6) {
                    0 => Packet::syn_ack(i, c, 999, s, port),
                    1 => Packet::fin(i, c, 999, s, port),
                    2 => Packet::rst(i, c, 999, s, port),
                    _ => Packet::syn(i, c, 999, s, port),
                }
            })
            .collect();
        for p in &pkts {
            serial.record(p);
        }
        batched.record_all(&pkts);
        assert_eq!(batched.take_snapshot(), serial.take_snapshot());
    }

    #[test]
    fn combine_many_matches_sequential_combines() {
        let config = cfg();
        let mut recorders: Vec<SketchRecorder> = (0..4)
            .map(|_| SketchRecorder::new(&config).unwrap())
            .collect();
        for i in 0..800u64 {
            recorders[(i % 4) as usize].record(&syn(i));
        }
        let snaps: Vec<IntervalSnapshot> =
            recorders.iter_mut().map(|r| r.take_snapshot()).collect();
        let mut seq = snaps[0].clone();
        for s in &snaps[1..] {
            seq.combine_into(s).unwrap();
        }
        let mut many = snaps[0].clone();
        let refs: Vec<&IntervalSnapshot> = snaps[1..].iter().collect();
        let bytes = many.combine_many(&refs).unwrap();
        assert_eq!(many, seq);
        assert!(bytes > 0);
        // Empty source list is a no-op reporting zero traffic.
        assert_eq!(many.clone().combine_many(&[]).unwrap(), 0);
    }

    #[test]
    fn combine_rejects_mismatched_configs() {
        let mut a = SketchRecorder::new(&HiFindConfig::small(1)).unwrap();
        let mut big = HiFindConfig::small(1);
        big.rs48.buckets = 1 << 6;
        let mut b = SketchRecorder::new(&big).unwrap();
        let mut sa = a.take_snapshot();
        let sb = b.take_snapshot();
        assert!(sa.combine_into(&sb).is_err());
    }

    #[test]
    fn combine_rejects_same_shape_different_seed() {
        // Identical shapes, different hash functions: the case the
        // grid-shape checks cannot catch and that used to combine into
        // garbage. The fingerprint rejects it with a named error.
        let cfg_a = HiFindConfig::small(1);
        let cfg_b = HiFindConfig::small(2);
        let mut a = SketchRecorder::new(&cfg_a).unwrap();
        let mut b = SketchRecorder::new(&cfg_b).unwrap();
        let mut sa = a.take_snapshot();
        let sb = b.take_snapshot();
        assert_eq!(
            sa.combine_into(&sb),
            Err(SketchError::FingerprintMismatch {
                expected: cfg_a.fingerprint(),
                got: cfg_b.fingerprint(),
            })
        );
    }

    #[test]
    fn plan_driven_record_matches_per_sketch_updates() {
        // Guards the hash-plan refactor against silent hash divergence:
        // the recorder (single-pass plan) must produce bit-identical grids
        // to six independently-driven sketches using the plain `update`
        // entry points on the same keys.
        use hifind_flow::keys::{SipDip, SipDport};
        use hifind_flow::rng::SplitMix64;
        use hifind_sketch::{KarySketch, ReversibleSketch, TwoDSketch};

        let config = cfg();
        let mut r = SketchRecorder::new(&config).unwrap();
        let mut rs_sip_dport = ReversibleSketch::new(config.rs_sip_dport_config()).unwrap();
        let mut rs_dip_dport = ReversibleSketch::new(config.rs_dip_dport_config()).unwrap();
        let mut rs_sip_dip = ReversibleSketch::new(config.rs_sip_dip_config()).unwrap();
        let mut os = KarySketch::new(config.os).unwrap();
        let mut twod_a = TwoDSketch::new(config.twod_sipdport_dip_config()).unwrap();
        let mut twod_b = TwoDSketch::new(config.twod_sipdip_dport_config()).unwrap();

        let mut rng = SplitMix64::new(31);
        for i in 0..3000u64 {
            let c = Ip4::new(rng.next_u32());
            let s = Ip4::new(0x8169_0000 | (rng.next_u32() & 0xFF));
            let port = 1 + (rng.next_u32() & 0x3FF) as u16;
            let p = if rng.chance(0.4) {
                Packet::syn_ack(i, c, 999, s, port)
            } else {
                Packet::syn(i, c, 999, s, port)
            };
            r.record(&p);
            let o = p.orient().unwrap();
            let v = o.syn_minus_synack();
            let sip_dport = SipDport::new(o.client, o.server_port).to_u64();
            let dip_dport = DipDport::new(o.server, o.server_port).to_u64();
            let sip_dip = SipDip::new(o.client, o.server).to_u64();
            rs_sip_dport.update(sip_dport, v);
            rs_dip_dport.update(dip_dport, v);
            rs_sip_dip.update(sip_dip, v);
            twod_a.update(sip_dport, o.server.raw() as u64, v);
            twod_b.update(sip_dip, o.server_port as u64, v);
            if o.kind == SegmentKind::Syn {
                os.update(dip_dport, 1);
            }
        }
        let snap = r.take_snapshot();
        assert_eq!(&snap.rs_sip_dport, rs_sip_dport.grid());
        assert_eq!(
            Some(&snap.rs_sip_dport_verifier),
            rs_sip_dport.verifier().map(|v| v.grid())
        );
        assert_eq!(&snap.rs_dip_dport, rs_dip_dport.grid());
        assert_eq!(
            Some(&snap.rs_dip_dport_verifier),
            rs_dip_dport.verifier().map(|v| v.grid())
        );
        assert_eq!(&snap.rs_sip_dip, rs_sip_dip.grid());
        assert_eq!(
            Some(&snap.rs_sip_dip_verifier),
            rs_sip_dip.verifier().map(|v| v.grid())
        );
        assert_eq!(&snap.os, os.grid());
        assert_eq!(&snap.twod_sipdport_dip, twod_a.grid());
        assert_eq!(&snap.twod_sipdip_dport, twod_b.grid());
    }

    #[test]
    #[ignore = "manual profiling probe; run with --ignored --nocapture in release"]
    fn profile_record_phases() {
        use hifind_flow::rng::SplitMix64;
        use std::time::Instant;
        let config = HiFindConfig::paper(9);
        let mut rng = SplitMix64::new(6);
        let pkts: Vec<Packet> = (0..500_000u64)
            .map(|i| {
                let c = Ip4::new(rng.next_u32());
                let s = Ip4::new(0x8169_0000 | (rng.next_u32() & 0xFFFF));
                if rng.chance(0.45) {
                    Packet::syn_ack(i, c, 4000, s, 80)
                } else {
                    Packet::syn(i, c, 4000, s, 80)
                }
            })
            .collect();
        let mut r = SketchRecorder::new(&config).unwrap();
        let n = pkts.len() as f64;
        for round in 0..3 {
            let t = Instant::now();
            let mut batch = PlanBatch::with_capacity(pkts.len());
            for p in &pkts {
                let Some(o) = p.orient() else { continue };
                batch.push(&HashPlan::for_oriented(&o));
            }
            let plan_ns = t.elapsed().as_nanos() as f64 / n;
            macro_rules! time_it {
                ($label:expr, $e:expr) => {{
                    let t = Instant::now();
                    $e;
                    println!(
                        "round {round} {:<14} {:6.1} ns/pkt",
                        $label,
                        t.elapsed().as_nanos() as f64 / n
                    );
                }};
            }
            println!("round {round} {:<14} {plan_ns:6.1} ns/pkt", "plan");
            time_it!(
                "rs_sip_dport",
                r.rs_sip_dport
                    .update_batch(&batch.sip_dport, &batch.sip_dport_mix, &batch.values)
            );
            time_it!(
                "rs_dip_dport",
                r.rs_dip_dport
                    .update_batch(&batch.dip_dport, &batch.dip_dport_mix, &batch.values)
            );
            time_it!(
                "rs_sip_dip",
                r.rs_sip_dip
                    .update_batch(&batch.sip_dip, &batch.sip_dip_mix, &batch.values)
            );
            time_it!(
                "twod_a",
                r.twod_sipdport_dip.update_batch_premixed(
                    &batch.sip_dport_mix,
                    &batch.dip_mix,
                    &batch.values
                )
            );
            time_it!(
                "twod_b",
                r.twod_sipdip_dport.update_batch_premixed(
                    &batch.sip_dip_mix,
                    &batch.dport_mix,
                    &batch.values
                )
            );
            time_it!(
                "os",
                r.os.update_batch_premixed(&batch.os_mix, &batch.os_ones)
            );
            time_it!(
                "bloom",
                for &key in &batch.synack_keys {
                    r.active_services.insert(key);
                }
            );
        }
    }

    #[test]
    fn memory_and_accesses_are_reported() {
        let r = SketchRecorder::new(&HiFindConfig::paper(0)).unwrap();
        // 3 RS × (6 + 6 verifier) + 6 OS + 2 × 5 2D = 52 counter accesses.
        assert_eq!(r.accesses_per_packet(), 3 * 12 + 6 + 10);
        assert!(r.memory_bytes() > 1 << 20);
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let mut r = SketchRecorder::new(&cfg()).unwrap();
        r.record(&syn(3));
        let snap = r.take_snapshot();
        let json = serde_json::to_vec(&snap).unwrap();
        let back: IntervalSnapshot = serde_json::from_slice(&json).unwrap();
        assert_eq!(back, snap);
        assert!(snap.wire_size_bytes() > 0);
    }
}
