//! Phase 2: intrusion classification with the 2D sketches (paper §4).
//!
//! Step 2/3 candidates can be *misclassified floodings*: a flooding whose
//! `{DIP,Dport}` error hovered under the step-1 threshold still produces a
//! heavy `{SIP,DIP}` or `{SIP,Dport}` pair, which the raw algorithm files
//! as a scan. The 2D sketches resolve the ambiguity by looking at the
//! *distribution* of the orthogonal dimension:
//!
//! * a vertical-scan candidate `{SIP,DIP}` whose destination-port column is
//!   **concentrated** (top-p buckets hold > φ of the mass) is flooding-like
//!   — a real vertical scan touches many ports;
//! * a horizontal-scan candidate `{SIP,Dport}` whose destination-address
//!   column is **concentrated** is flooding-like — a real horizontal scan
//!   touches many addresses.
//!
//! Following Table 4 (the flooding row is unchanged between phases 1 and
//! 2), reclassified candidates are *removed from the scan lists*; they are
//! not added as new flooding alerts.

use crate::detector::{Detector, RawDetections};
use crate::recorder::IntervalSnapshot;
use crate::report::Alert;
use hifind_flow::keys::{SipDip, SipDport, SketchKey};
use hifind_sketch::ColumnShape;
use serde::{Deserialize, Serialize};

/// Phase-2 output: the surviving alerts plus the reclassified ones (kept
/// for diagnostics).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ClassifiedDetections {
    /// Flooding alerts (passed through unchanged from phase 1).
    pub floodings: Vec<Alert>,
    /// Vertical scans that the 2D sketch confirmed as dispersed.
    pub vscans: Vec<Alert>,
    /// Horizontal scans that the 2D sketch confirmed as dispersed.
    pub hscans: Vec<Alert>,
    /// Scan candidates dropped as flooding-like (false positives avoided).
    pub reclassified: Vec<Alert>,
}

/// Applies the 2D-sketch classification to one interval's raw detections.
pub fn classify(
    detector: &Detector,
    snapshot: &IntervalSnapshot,
    raw: &RawDetections,
) -> ClassifiedDetections {
    let cfg = detector.config();
    let p = cfg.classify_top_p;
    let phi = cfg.classify_phi;
    let mut out = ClassifiedDetections {
        floodings: raw.floodings.clone(),
        ..ClassifiedDetections::default()
    };

    for alert in &raw.vscans {
        let (Some(sip), Some(dip)) = (alert.sip, alert.dip) else {
            // A vscan alert without its keys cannot be classified; fail
            // open and keep it rather than dropping a detection.
            out.vscans.push(*alert);
            continue;
        };
        let x = SipDip::new(sip, dip).to_u64();
        match detector
            .twod_sipdip_dport()
            .classify_grid(&snapshot.twod_sipdip_dport, x, p, phi)
        {
            ColumnShape::Dispersed => out.vscans.push(*alert),
            ColumnShape::Concentrated => out.reclassified.push(*alert),
        }
    }

    for alert in &raw.hscans {
        let (Some(sip), Some(dport)) = (alert.sip, alert.dport) else {
            // Same fail-open policy as above for an unkeyed hscan alert.
            out.hscans.push(*alert);
            continue;
        };
        let x = SipDport::new(sip, dport).to_u64();
        match detector
            .twod_sipdport_dip()
            .classify_grid(&snapshot.twod_sipdport_dip, x, p, phi)
        {
            ColumnShape::Dispersed => out.hscans.push(*alert),
            ColumnShape::Concentrated => out.reclassified.push(*alert),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HiFindConfig;
    use crate::recorder::SketchRecorder;
    use crate::report::AlertKind;
    use hifind_flow::{Ip4, Packet};

    fn snapshot_of(cfg: &HiFindConfig, packets: &[Packet]) -> IntervalSnapshot {
        let mut rec = SketchRecorder::new(cfg).unwrap();
        for p in packets {
            rec.record(p);
        }
        rec.take_snapshot()
    }

    fn vscan_alert(sip: Ip4, dip: Ip4) -> Alert {
        Alert {
            kind: AlertKind::VScan,
            sip: Some(sip),
            dip: Some(dip),
            dport: None,
            interval: 0,
            magnitude: 100,
            attacker_identified: true,
        }
    }

    fn hscan_alert(sip: Ip4, dport: u16) -> Alert {
        Alert {
            kind: AlertKind::HScan,
            sip: Some(sip),
            dip: None,
            dport: Some(dport),
            interval: 0,
            magnitude: 100,
            attacker_identified: true,
        }
    }

    #[test]
    fn true_vertical_scan_survives() {
        let cfg = HiFindConfig::small(20);
        let attacker: Ip4 = [66, 1, 1, 1].into();
        let victim: Ip4 = [129, 105, 0, 5].into();
        let packets: Vec<Packet> = (1..=400u16)
            .map(|port| Packet::syn(port as u64, attacker, 2000, victim, port))
            .collect();
        let snap = snapshot_of(&cfg, &packets);
        let det = Detector::new(&cfg).unwrap();
        let raw = RawDetections {
            vscans: vec![vscan_alert(attacker, victim)],
            ..RawDetections::default()
        };
        let classified = classify(&det, &snap, &raw);
        assert_eq!(classified.vscans.len(), 1);
        assert!(classified.reclassified.is_empty());
    }

    #[test]
    fn single_port_flooding_reclassified_from_vscan() {
        // The §4 motivating case: a non-spoofed flood looks like a vscan
        // to step 2 but its port distribution is a spike.
        let cfg = HiFindConfig::small(21);
        let attacker: Ip4 = [66, 2, 2, 2].into();
        let victim: Ip4 = [129, 105, 0, 6].into();
        let packets: Vec<Packet> = (0..400u32)
            .map(|i| Packet::syn(i as u64, attacker, 2000 + (i % 999) as u16, victim, 80))
            .collect();
        let snap = snapshot_of(&cfg, &packets);
        let det = Detector::new(&cfg).unwrap();
        let raw = RawDetections {
            vscans: vec![vscan_alert(attacker, victim)],
            ..RawDetections::default()
        };
        let classified = classify(&det, &snap, &raw);
        assert!(
            classified.vscans.is_empty(),
            "flooding must not stay a vscan"
        );
        assert_eq!(classified.reclassified.len(), 1);
    }

    #[test]
    fn true_horizontal_scan_survives() {
        let cfg = HiFindConfig::small(22);
        let attacker: Ip4 = [66, 3, 3, 3].into();
        let packets: Vec<Packet> = (0..400u32)
            .map(|i| {
                let dst: Ip4 = [129, 105, (i >> 8) as u8, i as u8].into();
                Packet::syn(i as u64, attacker, 2000, dst, 445)
            })
            .collect();
        let snap = snapshot_of(&cfg, &packets);
        let det = Detector::new(&cfg).unwrap();
        let raw = RawDetections {
            hscans: vec![hscan_alert(attacker, 445)],
            ..RawDetections::default()
        };
        let classified = classify(&det, &snap, &raw);
        assert_eq!(classified.hscans.len(), 1);
        assert!(classified.reclassified.is_empty());
    }

    #[test]
    fn single_target_flooding_reclassified_from_hscan() {
        let cfg = HiFindConfig::small(23);
        let attacker: Ip4 = [66, 4, 4, 4].into();
        let victim: Ip4 = [129, 105, 0, 7].into();
        let packets: Vec<Packet> = (0..400u32)
            .map(|i| Packet::syn(i as u64, attacker, 2000 + (i % 999) as u16, victim, 80))
            .collect();
        let snap = snapshot_of(&cfg, &packets);
        let det = Detector::new(&cfg).unwrap();
        let raw = RawDetections {
            hscans: vec![hscan_alert(attacker, 80)],
            ..RawDetections::default()
        };
        let classified = classify(&det, &snap, &raw);
        assert!(classified.hscans.is_empty());
        assert_eq!(classified.reclassified.len(), 1);
    }

    #[test]
    fn floodings_pass_through_untouched() {
        let cfg = HiFindConfig::small(24);
        let snap = snapshot_of(&cfg, &[]);
        let det = Detector::new(&cfg).unwrap();
        let flood = Alert {
            kind: AlertKind::SynFlooding,
            sip: None,
            dip: Some([129, 105, 0, 1].into()),
            dport: Some(80),
            interval: 3,
            magnitude: 999,
            attacker_identified: false,
        };
        let raw = RawDetections {
            floodings: vec![flood],
            ..RawDetections::default()
        };
        let classified = classify(&det, &snap, &raw);
        assert_eq!(classified.floodings, vec![flood]);
    }
}
