//! Memory and access-count models (paper §5.5, Table 9).
//!
//! Table 9 compares the fixed sketch memory against what per-flow state
//! costs under worst-case traffic: 100%-utilized links of all-40-byte SYN
//! packets, each packet a new flow (a spoofed flood). The analytical
//! models here regenerate that table for any link speed / interval.

use serde::{Deserialize, Serialize};

/// Hardware counter width used by the paper's memory figure (bytes).
pub const PAPER_COUNTER_BYTES: usize = 4;

/// Worst-case packet size (bytes) for line-rate flow arrival.
pub const WORST_CASE_PACKET_BYTES: f64 = 40.0;

/// Breakdown of HiFIND's fixed sketch memory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SketchMemoryModel {
    /// Two 48-bit reversible sketches (6 × 2^12 buckets each).
    pub rs48_bytes: usize,
    /// One 64-bit reversible sketch (6 × 2^16 buckets).
    pub rs64_bytes: usize,
    /// Three verification sketches (6 × 2^14 buckets each).
    pub verifier_bytes: usize,
    /// The original sketch (6 × 2^14 buckets).
    pub os_bytes: usize,
    /// Two 2D sketches (5 × 2^12 × 64 buckets each).
    pub twod_bytes: usize,
}

impl SketchMemoryModel {
    /// The paper's §5.1 configuration with `counter_bytes`-wide counters.
    pub fn paper(counter_bytes: usize) -> Self {
        SketchMemoryModel {
            rs48_bytes: 2 * 6 * (1 << 12) * counter_bytes,
            rs64_bytes: 6 * (1 << 16) * counter_bytes,
            verifier_bytes: 3 * 6 * (1 << 14) * counter_bytes,
            os_bytes: 6 * (1 << 14) * counter_bytes,
            twod_bytes: 2 * 5 * (1 << 12) * 64 * counter_bytes,
        }
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> usize {
        self.rs48_bytes + self.rs64_bytes + self.verifier_bytes + self.os_bytes + self.twod_bytes
    }

    /// Total in megabytes (10^6 bytes, as the paper quotes "13.2MB").
    pub fn total_mb(&self) -> f64 {
        self.total_bytes() as f64 / 1e6
    }
}

/// Worst-case flow arrivals for a link speed and measurement window:
/// all-40-byte packets at 100% utilization, every packet a distinct flow.
pub fn worst_case_flows(gbps: f64, seconds: f64) -> f64 {
    let packets_per_sec = gbps * 1e9 / 8.0 / WORST_CASE_PACKET_BYTES;
    packets_per_sec * seconds
}

/// Memory for the "HiFIND with complete information" row of Table 9: the
/// three per-key exact tables the three reversible sketches replace.
///
/// `bytes_per_entry` covers key + counter + hash-table overhead; the paper
/// implies ~14.7 bytes per entry per table under worst-case traffic
/// (10.3 GB at 2.5 Gbps × 60 s across three tables).
pub fn complete_info_bytes(gbps: f64, seconds: f64, bytes_per_entry: f64) -> f64 {
    3.0 * worst_case_flows(gbps, seconds) * bytes_per_entry
}

/// Memory for the TRW row of Table 9: per-source connection state.
///
/// The paper's 5.63 GB at 2.5 Gbps × 60 s corresponds to ~12 bytes per
/// worst-case flow (source entry + connection record amortized).
pub fn trw_bytes(gbps: f64, seconds: f64, bytes_per_flow: f64) -> f64 {
    worst_case_flows(gbps, seconds) * bytes_per_flow
}

/// Per-packet counter memory accesses (§5.5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessModel {
    /// Accesses for one 48-bit reversible sketch update (paper: 15 with
    /// its hardware layout; software: stages + verifier stages).
    pub rs48: usize,
    /// Accesses for one 64-bit reversible sketch update (paper: 16).
    pub rs64: usize,
    /// Accesses for one 2D sketch update (paper: 5).
    pub twod: usize,
}

impl AccessModel {
    /// The paper's reported hardware numbers.
    pub fn paper_hardware() -> Self {
        AccessModel {
            rs48: 15,
            rs64: 16,
            twod: 5,
        }
    }

    /// This implementation's software numbers (6 sketch stages + 6
    /// verifier stages; 5 matrices for the 2D sketch).
    pub fn this_implementation() -> Self {
        AccessModel {
            rs48: 12,
            rs64: 12,
            twod: 5,
        }
    }

    /// Total accesses for the full recorder (3 reversible + OS + two 2D),
    /// assuming the OS costs one access per stage (6).
    pub fn recorder_total(&self) -> usize {
        2 * self.rs48 + self.rs64 + 6 + 2 * self.twod
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_memory_is_about_13mb() {
        let m = SketchMemoryModel::paper(PAPER_COUNTER_BYTES);
        let mb = m.total_mb();
        assert!(
            (12.0..15.0).contains(&mb),
            "expected ~13.2 MB, modelled {mb:.1} MB"
        );
    }

    #[test]
    fn memory_is_independent_of_link_speed() {
        // The point of Table 9: the sketch row does not change with Gbps.
        let m = SketchMemoryModel::paper(PAPER_COUNTER_BYTES);
        assert_eq!(m.total_bytes(), m.total_bytes());
        let flows_2_5 = worst_case_flows(2.5, 60.0);
        let flows_10 = worst_case_flows(10.0, 60.0);
        assert!(flows_10 > 3.9 * flows_2_5);
    }

    #[test]
    fn worst_case_flow_arithmetic() {
        // 2.5 Gbps / 8 / 40 B = 7.8125 Mpps; × 60 s = 468.75 M flows.
        let flows = worst_case_flows(2.5, 60.0);
        assert!((flows - 468.75e6).abs() < 1e3);
    }

    #[test]
    fn complete_info_matches_paper_order_of_magnitude() {
        // Paper: 10.3 GB at 2.5 Gbps, 1 min.
        let bytes = complete_info_bytes(2.5, 60.0, 7.33);
        let gb = bytes / 1e9;
        assert!((9.0..12.0).contains(&gb), "modelled {gb:.1} GB");
        // Paper: 206 GB at 10 Gbps, 5 min.
        let gb5 = complete_info_bytes(10.0, 300.0, 7.33) / 1e9;
        assert!((190.0..220.0).contains(&gb5), "modelled {gb5:.1} GB");
    }

    #[test]
    fn trw_matches_paper_order_of_magnitude() {
        // Paper: 5.63 GB at 2.5 Gbps, 1 min.
        let gb = trw_bytes(2.5, 60.0, 12.0) / 1e9;
        assert!((5.0..6.5).contains(&gb), "modelled {gb:.1} GB");
        // Paper: 112.5 GB at 10 Gbps, 5 min.
        let gb5 = trw_bytes(10.0, 300.0, 12.0) / 1e9;
        assert!((105.0..120.0).contains(&gb5), "modelled {gb5:.1} GB");
    }

    #[test]
    fn access_models() {
        let hw = AccessModel::paper_hardware();
        assert_eq!(hw.rs48, 15);
        assert_eq!(hw.twod, 5);
        let sw = AccessModel::this_implementation();
        assert_eq!(sw.recorder_total(), 2 * 12 + 12 + 6 + 10);
        // Either way: a constant few dozen accesses per packet.
        assert!(hw.recorder_total() < 100);
    }
}
