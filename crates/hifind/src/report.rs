//! Alert types and the phased alert log.

use hifind_flow::Ip4;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// What kind of intrusion an alert reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AlertKind {
    /// TCP SYN flooding against `{dip, dport}`.
    SynFlooding,
    /// Horizontal scan from `sip` on `dport`.
    HScan,
    /// Vertical scan from `sip` against `dip`.
    VScan,
}

impl AlertKind {
    /// Whether the kind is a port scan (horizontal or vertical).
    pub fn is_scan(self) -> bool {
        matches!(self, AlertKind::HScan | AlertKind::VScan)
    }
}

impl fmt::Display for AlertKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AlertKind::SynFlooding => "SYN flooding",
            AlertKind::HScan => "horizontal scan",
            AlertKind::VScan => "vertical scan",
        })
    }
}

/// The pipeline phase an alert survived to (paper Table 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Raw three-step sketch detection (§3.3).
    Raw,
    /// After 2D-sketch port-scan false-positive reduction (§4).
    AfterClassification,
    /// After the SYN-flooding heuristics (§3.4) — the final output.
    Final,
}

/// One intrusion alert.
///
/// The identifying fields depend on the kind: flooding fills `dip`/`dport`
/// (and `sip` when a non-spoofed attacker was pinned down), horizontal
/// scans fill `sip`/`dport`, vertical scans fill `sip`/`dip`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alert {
    /// Alert kind.
    pub kind: AlertKind,
    /// Attacking source, when known (non-spoofed flooding, scans).
    pub sip: Option<Ip4>,
    /// Victim address, when the attack targets one.
    pub dip: Option<Ip4>,
    /// Targeted port, when the attack targets one.
    pub dport: Option<u16>,
    /// Interval index the alert (first) fired in.
    pub interval: u64,
    /// Forecast-error magnitude that triggered the alert.
    pub magnitude: i64,
    /// `true` if the flooding attacker's source was identified
    /// (non-spoofed); meaningless for scans.
    pub attacker_identified: bool,
}

impl Alert {
    /// The alert's deduplication identity: kind + identifying fields
    /// (repeated alerts for the same attack across intervals collapse, as
    /// in the paper's evaluation).
    pub fn identity(&self) -> (AlertKind, Option<u32>, Option<u32>, Option<u16>) {
        (
            self.kind,
            self.sip.map(Ip4::raw),
            self.dip.map(Ip4::raw),
            self.dport,
        )
    }
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[interval {}] {}", self.interval, self.kind)?;
        if let Some(s) = self.sip {
            write!(f, " from {s}")?;
        }
        if let Some(d) = self.dip {
            write!(f, " against {d}")?;
        }
        if let Some(p) = self.dport {
            write!(f, " port {p}")?;
        }
        write!(f, " (Δ = {})", self.magnitude)
    }
}

/// Accumulates alerts per phase over a run, deduplicating repeats of the
/// same attack.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AlertLog {
    raw: Vec<Alert>,
    after_classification: Vec<Alert>,
    fin: Vec<Alert>,
    #[serde(skip)]
    seen_raw: SeenMap,
    #[serde(skip)]
    seen_classified: SeenMap,
    #[serde(skip)]
    seen_final: SeenMap,
}

/// Alert identity → index of its first occurrence in the phase list.
type SeenMap = HashMap<(AlertKind, Option<u32>, Option<u32>, Option<u16>), usize>;

impl AlertLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        AlertLog::default()
    }

    /// Records an alert at a phase, deduplicated by [`Alert::identity`]
    /// (repeated alerts for the same attack collapse, as in the paper's
    /// evaluation). The stored alert keeps the *first* firing interval and
    /// the *maximum* observed magnitude — a multi-interval attack's change
    /// difference is its largest forecast error, not the partial-interval
    /// onset. Returns `true` if the attack was new for that phase.
    pub fn record(&mut self, phase: Phase, alert: Alert) -> bool {
        let id = alert.identity();
        let (seen, list) = match phase {
            Phase::Raw => (&mut self.seen_raw, &mut self.raw),
            Phase::AfterClassification => {
                (&mut self.seen_classified, &mut self.after_classification)
            }
            Phase::Final => (&mut self.seen_final, &mut self.fin),
        };
        match seen.entry(id) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(list.len());
                list.push(alert);
                true
            }
            std::collections::hash_map::Entry::Occupied(o) => {
                let stored = &mut list[*o.get()];
                stored.magnitude = stored.magnitude.max(alert.magnitude);
                stored.attacker_identified |= alert.attacker_identified;
                if stored.sip.is_none() {
                    stored.sip = alert.sip;
                }
                false
            }
        }
    }

    /// Unique alerts at a phase.
    pub fn alerts(&self, phase: Phase) -> &[Alert] {
        match phase {
            Phase::Raw => &self.raw,
            Phase::AfterClassification => &self.after_classification,
            Phase::Final => &self.fin,
        }
    }

    /// The final (phase-3) alerts.
    pub fn final_alerts(&self) -> &[Alert] {
        &self.fin
    }

    /// Count of unique alerts of one kind at one phase — a Table 4 cell.
    pub fn count(&self, phase: Phase, kind: AlertKind) -> usize {
        self.alerts(phase).iter().filter(|a| a.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flood_alert(interval: u64) -> Alert {
        Alert {
            kind: AlertKind::SynFlooding,
            sip: None,
            dip: Some([129, 105, 0, 1].into()),
            dport: Some(80),
            interval,
            magnitude: 500,
            attacker_identified: false,
        }
    }

    #[test]
    fn dedup_across_intervals() {
        let mut log = AlertLog::new();
        assert!(log.record(Phase::Raw, flood_alert(1)));
        let mut repeat = flood_alert(2);
        repeat.magnitude = 900;
        assert!(!log.record(Phase::Raw, repeat), "same attack repeats");
        assert_eq!(log.count(Phase::Raw, AlertKind::SynFlooding), 1);
        let stored = log.alerts(Phase::Raw)[0];
        assert_eq!(stored.interval, 1, "first firing kept");
        assert_eq!(stored.magnitude, 900, "maximum magnitude kept");
    }

    #[test]
    fn phases_are_independent() {
        let mut log = AlertLog::new();
        log.record(Phase::Raw, flood_alert(1));
        assert_eq!(log.count(Phase::Final, AlertKind::SynFlooding), 0);
        log.record(Phase::Final, flood_alert(3));
        assert_eq!(log.final_alerts().len(), 1);
    }

    #[test]
    fn identity_distinguishes_kinds_and_keys() {
        let a = flood_alert(1);
        let mut b = a;
        b.kind = AlertKind::VScan;
        assert_ne!(a.identity(), b.identity());
        let mut c = a;
        c.dport = Some(443);
        assert_ne!(a.identity(), c.identity());
        // Magnitude and interval do not affect identity.
        let mut d = a;
        d.magnitude = 9;
        d.interval = 99;
        assert_eq!(a.identity(), d.identity());
    }

    #[test]
    fn kind_predicates_and_display() {
        assert!(AlertKind::HScan.is_scan());
        assert!(AlertKind::VScan.is_scan());
        assert!(!AlertKind::SynFlooding.is_scan());
        let s = flood_alert(4).to_string();
        assert!(s.contains("SYN flooding"));
        assert!(s.contains("129.105.0.1"));
        assert!(s.contains("port 80"));
    }
}
