//! Live telemetry bridge (enabled by the `telemetry` feature).
//!
//! Publishes pipeline activity into a [`hifind_telemetry::Registry`]:
//! sampled hot-path record timings, per-phase latency histograms, alert
//! counters by phase, and sketch-health gauges. Attach one to a pipeline
//! with [`crate::HiFind::attach_telemetry`]; snapshot the registry for
//! JSON or Prometheus output.
//!
//! The hot path is protected two ways: packet counts accumulate in a plain
//! local integer and flush to the shared atomic counter once per sample
//! window (and at interval end), and record timing is *sampled* — only one
//! packet in [`RECORD_SAMPLE_MASK`]` + 1` pays for two `Instant::now`
//! calls. Both keep the `telemetry`-enabled recorder within the <5%
//! overhead budget the bench suite asserts.

use crate::pipeline::IntervalOutcome;
use crate::recorder::{IntervalSnapshot, SketchRecorder};
use crate::run_report::snapshot_health;
use hifind_flow::Packet;
use hifind_sketch::health::register_health_gauges;
use hifind_telemetry::{exponential_buckets, Counter, Gauge, Histogram, Registry, TelemetryError};
use std::sync::Arc;
use std::time::Instant;

/// Sample one in `MASK + 1` packets for record-path timing.
pub const RECORD_SAMPLE_MASK: u64 = 63;

/// Handles into a registry for every pipeline metric.
///
/// Cloning shares the underlying metrics (clones publish into the same
/// registry), which is what a cloned [`crate::HiFind`] should do.
#[derive(Clone)]
pub struct PipelineTelemetry {
    registry: Registry,
    packets_total: Arc<Counter>,
    record_seconds: Arc<Histogram>,
    forecast_seconds: Arc<Histogram>,
    detect_seconds: Arc<Histogram>,
    classify_seconds: Arc<Histogram>,
    flood_filter_seconds: Arc<Histogram>,
    interval_seconds: Arc<Histogram>,
    intervals_total: Arc<Counter>,
    alerts_raw_total: Arc<Counter>,
    alerts_classified_total: Arc<Counter>,
    alerts_final_total: Arc<Counter>,
    syn_count_gauge: Arc<Gauge>,
    seq: u64,
    // Packets counted locally but not yet flushed to `packets_total`.
    pending_packets: u64,
    // Failed best-effort metric publications (name/kind clashes with
    // metrics someone else put in the shared registry). Monitoring must
    // never abort detection, so these are counted, not propagated.
    publish_errors: u64,
}

impl std::fmt::Debug for PipelineTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineTelemetry").finish_non_exhaustive()
    }
}

impl PipelineTelemetry {
    /// Registers all pipeline metrics in `registry`.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::KindMismatch`] if any `hifind_*` pipeline
    /// metric name is already registered in `registry` under a different
    /// kind — the caller keeps running uninstrumented instead of aborting.
    pub fn new(registry: Registry) -> Result<Self, TelemetryError> {
        // Record path: 32ns .. ~33µs. Interval phases: 1µs .. ~17s.
        let record_buckets = exponential_buckets(32e-9, 4.0, 11);
        let phase_buckets = exponential_buckets(1e-6, 4.0, 13);
        let h = |name: &str, help: &str, buckets: &[f64]| {
            registry.histogram(name, help, buckets.to_vec())
        };
        Ok(PipelineTelemetry {
            packets_total: registry
                .counter("hifind_packets_total", "Packets offered to the recorder")?,
            record_seconds: h(
                "hifind_record_seconds",
                "Sampled per-packet record latency (1/64 packets)",
                &record_buckets,
            )?,
            forecast_seconds: h(
                "hifind_forecast_seconds",
                "Per-interval EWMA forecast latency",
                &phase_buckets,
            )?,
            detect_seconds: h(
                "hifind_detect_seconds",
                "Per-interval phase-1 detection latency",
                &phase_buckets,
            )?,
            classify_seconds: h(
                "hifind_classify_seconds",
                "Per-interval phase-2 classification latency",
                &phase_buckets,
            )?,
            flood_filter_seconds: h(
                "hifind_flood_filter_seconds",
                "Per-interval phase-3 flood-filter latency",
                &phase_buckets,
            )?,
            interval_seconds: h(
                "hifind_interval_seconds",
                "Whole per-interval processing latency",
                &phase_buckets,
            )?,
            intervals_total: registry
                .counter("hifind_intervals_total", "Detection intervals processed")?,
            alerts_raw_total: registry.counter("hifind_alerts_raw_total", "Phase-1 raw alerts")?,
            alerts_classified_total: registry
                .counter("hifind_alerts_classified_total", "Phase-2 surviving alerts")?,
            alerts_final_total: registry
                .counter("hifind_alerts_final_total", "Phase-3 final alerts")?,
            syn_count_gauge: registry
                .gauge("hifind_interval_syns", "SYNs recorded in the last interval")?,
            registry,
            seq: 0,
            pending_packets: 0,
            publish_errors: 0,
        })
    }

    /// The registry everything is published into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records one packet through `recorder`, counting it and sampling the
    /// record latency.
    #[inline]
    pub fn record_packet(&mut self, recorder: &mut SketchRecorder, packet: &Packet) {
        self.seq = self.seq.wrapping_add(1);
        self.pending_packets += 1;
        if self.seq & RECORD_SAMPLE_MASK == 0 {
            // Cold branch: flush the batched count and time this packet.
            self.packets_total
                .add(std::mem::take(&mut self.pending_packets));
            let start = Instant::now();
            recorder.record(packet);
            self.record_seconds.observe_duration(start.elapsed());
        } else {
            recorder.record(packet);
        }
    }

    /// Publishes one finished interval: phase latencies, alert counters,
    /// and sketch-health gauges.
    pub fn publish_interval(
        &mut self,
        outcome: &IntervalOutcome,
        snapshot: &IntervalSnapshot,
        saturation_threshold: i64,
    ) {
        self.packets_total
            .add(std::mem::take(&mut self.pending_packets));
        let ns = &outcome.phase_ns;
        self.forecast_seconds.observe(ns.forecast as f64 / 1e9);
        self.detect_seconds.observe(ns.detect as f64 / 1e9);
        self.classify_seconds.observe(ns.classify as f64 / 1e9);
        self.flood_filter_seconds
            .observe(ns.flood_filter as f64 / 1e9);
        self.interval_seconds.observe(ns.total as f64 / 1e9);
        self.intervals_total.inc();
        self.alerts_raw_total.add(outcome.raw.len() as u64);
        self.alerts_classified_total
            .add(outcome.classified.len() as u64);
        self.alerts_final_total.add(outcome.fin.len() as u64);
        self.syn_count_gauge.set(snapshot.syn_count as i64);
        for health in snapshot_health(snapshot, saturation_threshold) {
            if register_health_gauges(&self.registry, &health).is_err() {
                self.publish_errors += 1;
            }
        }
    }

    /// Best-effort publications that failed (e.g. a health gauge name was
    /// already registered as a different metric kind).
    pub fn publish_errors(&self) -> u64 {
        self.publish_errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HiFindConfig;
    use crate::pipeline::HiFind;
    use hifind_flow::{Ip4, Packet};
    use hifind_telemetry::registry::MetricValue;

    #[test]
    fn pipeline_publishes_into_registry() {
        let registry = Registry::new();
        let mut ids = HiFind::new(HiFindConfig::small(3)).unwrap();
        ids.attach_telemetry(registry.clone()).unwrap();
        let victim: Ip4 = [129, 105, 0, 1].into();
        for iv in 0..3u64 {
            for i in 0..200u32 {
                ids.record(&Packet::syn(
                    iv,
                    Ip4::new(0x5000_0000 + i),
                    2000,
                    victim,
                    80,
                ));
            }
            ids.end_interval();
        }
        let snap = registry.snapshot();
        let get = |name: &str| {
            snap.get(name)
                .unwrap_or_else(|| panic!("metric {name} missing"))
                .clone()
        };
        assert_eq!(
            get("hifind_packets_total"),
            MetricValue::Counter { value: 600 }
        );
        assert_eq!(
            get("hifind_intervals_total"),
            MetricValue::Counter { value: 3 }
        );
        match get("hifind_record_seconds") {
            MetricValue::Histogram(h) => {
                // 600 packets sampled 1-in-64.
                assert!(h.count >= 600 / 64, "sampled {} record timings", h.count)
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        match get("hifind_interval_seconds") {
            MetricValue::Histogram(h) => assert_eq!(h.count, 3),
            other => panic!("expected histogram, got {other:?}"),
        }
        // Sketch health gauges exist for every sketch.
        for sketch in ["rs_sip_dport", "os", "twod_sipdip_dport"] {
            assert!(
                snap.metrics
                    .iter()
                    .any(|m| m.name == format!("hifind_sketch_occupancy_ppm_{sketch}")),
                "occupancy gauge for {sketch} missing"
            );
        }
        // And the whole thing renders to Prometheus text.
        let text = snap.to_prometheus_text();
        assert!(text.contains("hifind_packets_total 600"));
        assert!(text.contains("hifind_record_seconds_bucket"));
    }
}
