//! Attack mitigation: turning alerts into enforcement actions.
//!
//! The paper's third requirement (§1) is *attack root cause analysis for
//! mitigation*: because the reversible sketches name the culprit flow keys
//! and the 2D sketches name the attack type, each alert maps directly to a
//! concrete countermeasure — and to a *different* one per attack type,
//! which is why distinguishing flooding from scans matters:
//!
//! | Attack | Action |
//! |--------|--------|
//! | spoofed SYN flooding | deploy a SYN proxy/cookie in front of the victim service |
//! | non-spoofed SYN flooding | block the attacker address at the border |
//! | horizontal scan | block the scanner address (it probes many hosts) |
//! | vertical scan | block the scanner address and watch the probed host |
//!
//! This module derives those actions from an [`Alert`] stream, deduplicates
//! them, and renders them in a firewall-ish textual form for operators.

use crate::report::{Alert, AlertKind};
use hifind_flow::Ip4;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A concrete mitigation action derived from one or more alerts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Action {
    /// Drop all traffic from this source at the border.
    BlockSource(Ip4),
    /// Answer SYNs for this service from a SYN proxy (cookies) until the
    /// flood subsides.
    SynProxy {
        /// Protected service address.
        dip: Ip4,
        /// Protected service port.
        dport: u16,
    },
    /// Rate-limit new connections to this service (fallback when the
    /// flooding source is unknown and a proxy is unavailable).
    RateLimit {
        /// Throttled service address.
        dip: Ip4,
        /// Throttled service port.
        dport: u16,
        /// Permitted new connections per second.
        per_sec: u32,
    },
    /// Flag a host for compromise review (it was vertically scanned; a
    /// follow-up intrusion may use discovered ports).
    WatchHost(Ip4),
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::BlockSource(s) => write!(f, "deny from {s} any"),
            Action::SynProxy { dip, dport } => {
                write!(f, "syn-proxy protect {dip} port {dport}")
            }
            Action::RateLimit {
                dip,
                dport,
                per_sec,
            } => {
                write!(f, "rate-limit to {dip} port {dport} {per_sec}/s")
            }
            Action::WatchHost(h) => write!(f, "audit host {h}"),
        }
    }
}

/// Mitigation policy knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MitigationPolicy {
    /// New-connection budget used for [`Action::RateLimit`] fallbacks.
    pub rate_limit_per_sec: u32,
    /// Whether vertically scanned hosts get an audit action.
    pub audit_scanned_hosts: bool,
}

impl Default for MitigationPolicy {
    fn default() -> Self {
        MitigationPolicy {
            rate_limit_per_sec: 100,
            audit_scanned_hosts: true,
        }
    }
}

/// Derives the deduplicated action set for a batch of (final-phase)
/// alerts.
///
/// Actions are returned sorted (stable output for diffing / tests).
pub fn plan(alerts: &[Alert], policy: &MitigationPolicy) -> Vec<Action> {
    let mut actions: BTreeSet<Action> = BTreeSet::new();
    for alert in alerts {
        match alert.kind {
            AlertKind::SynFlooding => {
                if let (true, Some(sip)) = (alert.attacker_identified, alert.sip) {
                    // Non-spoofed: cut the attacker off.
                    actions.insert(Action::BlockSource(sip));
                } else if let (Some(dip), Some(dport)) = (alert.dip, alert.dport) {
                    // Spoofed: blocking sources is useless; shield the
                    // victim instead.
                    actions.insert(Action::SynProxy { dip, dport });
                    actions.insert(Action::RateLimit {
                        dip,
                        dport,
                        per_sec: policy.rate_limit_per_sec,
                    });
                }
            }
            AlertKind::HScan => {
                if let Some(sip) = alert.sip {
                    actions.insert(Action::BlockSource(sip));
                }
            }
            AlertKind::VScan => {
                if let Some(sip) = alert.sip {
                    actions.insert(Action::BlockSource(sip));
                }
                if policy.audit_scanned_hosts {
                    if let Some(dip) = alert.dip {
                        actions.insert(Action::WatchHost(dip));
                    }
                }
            }
        }
    }
    actions.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(
        kind: AlertKind,
        sip: Option<[u8; 4]>,
        dip: Option<[u8; 4]>,
        dport: Option<u16>,
        identified: bool,
    ) -> Alert {
        Alert {
            kind,
            sip: sip.map(Ip4::from),
            dip: dip.map(Ip4::from),
            dport,
            interval: 1,
            magnitude: 100,
            attacker_identified: identified,
        }
    }

    #[test]
    fn spoofed_flood_gets_proxy_not_block() {
        let alerts = [alert(
            AlertKind::SynFlooding,
            None,
            Some([129, 105, 0, 1]),
            Some(80),
            false,
        )];
        let actions = plan(&alerts, &MitigationPolicy::default());
        assert!(actions.contains(&Action::SynProxy {
            dip: [129, 105, 0, 1].into(),
            dport: 80
        }));
        assert!(
            !actions.iter().any(|a| matches!(a, Action::BlockSource(_))),
            "there is no source to block in a spoofed flood"
        );
    }

    #[test]
    fn direct_flood_blocks_attacker() {
        let alerts = [alert(
            AlertKind::SynFlooding,
            Some([66, 6, 6, 6]),
            Some([129, 105, 0, 1]),
            Some(80),
            true,
        )];
        let actions = plan(&alerts, &MitigationPolicy::default());
        assert_eq!(actions, vec![Action::BlockSource([66, 6, 6, 6].into())]);
    }

    #[test]
    fn scans_block_scanner_and_audit_target() {
        let alerts = [
            alert(AlertKind::HScan, Some([7, 7, 7, 7]), None, Some(445), true),
            alert(
                AlertKind::VScan,
                Some([8, 8, 8, 8]),
                Some([129, 105, 0, 9]),
                None,
                true,
            ),
        ];
        let actions = plan(&alerts, &MitigationPolicy::default());
        assert!(actions.contains(&Action::BlockSource([7, 7, 7, 7].into())));
        assert!(actions.contains(&Action::BlockSource([8, 8, 8, 8].into())));
        assert!(actions.contains(&Action::WatchHost([129, 105, 0, 9].into())));
        // Audit disabled by policy.
        let no_audit = plan(
            &alerts,
            &MitigationPolicy {
                audit_scanned_hosts: false,
                ..MitigationPolicy::default()
            },
        );
        assert!(!no_audit.iter().any(|a| matches!(a, Action::WatchHost(_))));
    }

    #[test]
    fn actions_are_deduplicated_and_sorted() {
        let alerts = [
            alert(AlertKind::HScan, Some([7, 7, 7, 7]), None, Some(445), true),
            alert(AlertKind::HScan, Some([7, 7, 7, 7]), None, Some(139), true),
        ];
        let actions = plan(&alerts, &MitigationPolicy::default());
        assert_eq!(actions.len(), 1);
        let twice = plan(&alerts, &MitigationPolicy::default());
        assert_eq!(actions, twice);
    }

    #[test]
    fn display_is_firewall_like() {
        assert_eq!(
            Action::BlockSource([1, 2, 3, 4].into()).to_string(),
            "deny from 1.2.3.4 any"
        );
        assert!(Action::SynProxy {
            dip: [5, 6, 7, 8].into(),
            dport: 443
        }
        .to_string()
        .contains("port 443"));
    }
}
