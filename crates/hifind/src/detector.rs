//! The three-step sketch-based detection algorithm (paper §3.3).

use crate::config::HiFindConfig;
use crate::recorder::IntervalSnapshot;
use crate::report::{Alert, AlertKind};
use hifind_flow::keys::{DipDport, SipDip, SipDport};
use hifind_flow::Ip4;
use hifind_sketch::{KarySketch, ReversibleSketch, SketchError, TwoDSketch};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// The forecast-error grids for one interval (produced by the pipeline's
/// EWMA stage from an [`IntervalSnapshot`] stream).
#[derive(Clone, Debug)]
pub struct ErrorGrids {
    /// Error grid of the `{SIP,Dport}` sketch.
    pub rs_sip_dport: hifind_sketch::CounterGrid,
    /// Error grid of its verifier.
    pub rs_sip_dport_verifier: hifind_sketch::CounterGrid,
    /// Error grid of the `{DIP,Dport}` sketch.
    pub rs_dip_dport: hifind_sketch::CounterGrid,
    /// Error grid of its verifier.
    pub rs_dip_dport_verifier: hifind_sketch::CounterGrid,
    /// Error grid of the `{SIP,DIP}` sketch.
    pub rs_sip_dip: hifind_sketch::CounterGrid,
    /// Error grid of its verifier.
    pub rs_sip_dip_verifier: hifind_sketch::CounterGrid,
}

/// Raw (phase-1) detection output for one interval.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RawDetections {
    /// SYN flooding alerts from step 1 (victim endpoint known; attacker
    /// attached when steps 2–3 identified one).
    pub floodings: Vec<Alert>,
    /// Vertical-scan candidates from step 2.
    pub vscans: Vec<Alert>,
    /// Horizontal-scan candidates from step 3.
    pub hscans: Vec<Alert>,
}

impl RawDetections {
    /// All raw alerts in step order.
    pub fn all(&self) -> impl Iterator<Item = &Alert> {
        self.floodings
            .iter()
            .chain(self.vscans.iter())
            .chain(self.hscans.iter())
    }
}

/// Interprets snapshots/error grids through the sketch hash structures and
/// runs the three-step detection algorithm.
///
/// The detector holds *empty reference sketches* built from the same
/// configuration (and therefore the same seeds/hash functions) as the
/// recorder; it never accumulates counters of its own.
#[derive(Clone, Debug)]
pub struct Detector {
    cfg: HiFindConfig,
    ref_sip_dport: ReversibleSketch,
    ref_dip_dport: ReversibleSketch,
    ref_sip_dip: ReversibleSketch,
    ref_os: KarySketch,
    ref_twod_sipdport_dip: TwoDSketch,
    ref_twod_sipdip_dport: TwoDSketch,
}

impl Detector {
    /// Builds the reference hash structures for a configuration.
    ///
    /// # Errors
    ///
    /// Propagates sketch configuration errors.
    pub fn new(cfg: &HiFindConfig) -> Result<Self, SketchError> {
        Ok(Detector {
            cfg: *cfg,
            ref_sip_dport: ReversibleSketch::new(cfg.rs_sip_dport_config())?,
            ref_dip_dport: ReversibleSketch::new(cfg.rs_dip_dport_config())?,
            ref_sip_dip: ReversibleSketch::new(cfg.rs_sip_dip_config())?,
            ref_os: KarySketch::new(cfg.os)?,
            ref_twod_sipdport_dip: TwoDSketch::new(cfg.twod_sipdport_dip_config())?,
            ref_twod_sipdip_dport: TwoDSketch::new(cfg.twod_sipdip_dport_config())?,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &HiFindConfig {
        &self.cfg
    }

    /// Runs the three detection steps over one interval's forecast-error
    /// grids.
    ///
    /// * **Step 1** — `RS({DIP,Dport})`: heavy keys are SYN flooding
    ///   victims; their DIPs form `FLOODING_DIP_SET`.
    /// * **Step 2** — `RS({SIP,DIP})`: heavy pairs whose DIP is in the
    ///   flooding set contribute their SIP to `FLOODING_SIP_SET` (and pin
    ///   down a non-spoofed attacker); the rest are vertical-scan
    ///   candidates.
    /// * **Step 3** — `RS({SIP,Dport})`: heavy pairs whose SIP is in the
    ///   flooding SIP set are the non-spoofed flooding's traffic;
    ///   the rest are horizontal-scan candidates.
    pub fn detect(&self, interval: u64, errors: &ErrorGrids) -> RawDetections {
        let threshold = self.cfg.interval_threshold();
        let opts = &self.cfg.infer;

        // Step 1: SYN flooding victims.
        let flooding = self.ref_dip_dport.infer_grid(
            &errors.rs_dip_dport,
            Some(&errors.rs_dip_dport_verifier),
            threshold,
            opts,
        );
        let flooding_keys: Vec<(DipDport, i64)> = flooding.typed::<DipDport>();
        let flooding_dip_set: HashSet<Ip4> = flooding_keys.iter().map(|(k, _)| k.dip()).collect();

        // Step 2: vertical scans vs non-spoofed flooding attackers.
        let pairs = self.ref_sip_dip.infer_grid(
            &errors.rs_sip_dip,
            Some(&errors.rs_sip_dip_verifier),
            threshold,
            opts,
        );
        let mut flooding_sip_set: HashSet<Ip4> = HashSet::new();
        let mut flooding_attacker: HashMap<Ip4, Ip4> = HashMap::new();
        let mut vscans = Vec::new();
        for (key, magnitude) in pairs.typed::<SipDip>() {
            if flooding_dip_set.contains(&key.dip()) {
                flooding_sip_set.insert(key.sip());
                flooding_attacker.entry(key.dip()).or_insert(key.sip());
            } else {
                vscans.push(Alert {
                    kind: AlertKind::VScan,
                    sip: Some(key.sip()),
                    dip: Some(key.dip()),
                    dport: None,
                    interval,
                    magnitude,
                    attacker_identified: true,
                });
            }
        }

        // Step 3: horizontal scans vs non-spoofed flooding traffic.
        let sources = self.ref_sip_dport.infer_grid(
            &errors.rs_sip_dport,
            Some(&errors.rs_sip_dport_verifier),
            threshold,
            opts,
        );
        let mut hscans = Vec::new();
        for (key, magnitude) in sources.typed::<SipDport>() {
            if flooding_sip_set.contains(&key.sip()) {
                continue; // accounted to a flooding attack
            }
            hscans.push(Alert {
                kind: AlertKind::HScan,
                sip: Some(key.sip()),
                dip: None,
                dport: Some(key.dport()),
                interval,
                magnitude,
                attacker_identified: true,
            });
        }

        let floodings = flooding_keys
            .into_iter()
            .map(|(key, magnitude)| {
                let attacker = flooding_attacker.get(&key.dip()).copied();
                Alert {
                    kind: AlertKind::SynFlooding,
                    sip: attacker,
                    dip: Some(key.dip()),
                    dport: Some(key.dport()),
                    interval,
                    magnitude,
                    attacker_identified: attacker.is_some(),
                }
            })
            .collect();

        RawDetections {
            floodings,
            vscans,
            hscans,
        }
    }

    /// Estimates the current-interval `#SYN` for a service endpoint from
    /// the OS grid of a snapshot (used by the phase-3 ratio filter).
    pub fn syn_estimate(&self, snapshot: &IntervalSnapshot, key: DipDport) -> i64 {
        use hifind_flow::keys::SketchKey;
        self.ref_os.estimate_grid(&snapshot.os, key.to_u64()).max(0)
    }

    /// Estimates the current-interval `#SYN − #SYN/ACK` for a service
    /// endpoint from the `{DIP,Dport}` grid of a snapshot.
    pub fn unresponded_estimate(&self, snapshot: &IntervalSnapshot, key: DipDport) -> i64 {
        use hifind_flow::keys::SketchKey;
        self.ref_dip_dport
            .estimate_grid(&snapshot.rs_dip_dport, key.to_u64())
    }

    /// Reference 2D sketch for `{SIP,Dport} × {DIP}` (phase-2 hscan check).
    pub fn twod_sipdport_dip(&self) -> &TwoDSketch {
        &self.ref_twod_sipdport_dip
    }

    /// Reference 2D sketch for `{SIP,DIP} × {Dport}` (phase-2 vscan check).
    pub fn twod_sipdip_dport(&self) -> &TwoDSketch {
        &self.ref_twod_sipdip_dport
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::SketchRecorder;
    use hifind_flow::Packet;
    use hifind_forecast::{GridEwma, GridForecaster};

    /// Drives recorder + EWMA for a closure-generated interval stream and
    /// returns the detections of the last interval.
    fn detect_last(
        cfg: &HiFindConfig,
        intervals: Vec<Vec<Packet>>,
    ) -> (RawDetections, IntervalSnapshot) {
        let mut rec = SketchRecorder::new(cfg).unwrap();
        let det = Detector::new(cfg).unwrap();
        let mut fc: Vec<GridEwma> = (0..6).map(|_| GridEwma::new(cfg.ewma_alpha)).collect();
        let mut last = None;
        let n = intervals.len();
        for (i, packets) in intervals.into_iter().enumerate() {
            for p in &packets {
                rec.record(p);
            }
            let snap = rec.take_snapshot();
            let errs = [
                fc[0].step(&snap.rs_sip_dport),
                fc[1].step(&snap.rs_sip_dport_verifier),
                fc[2].step(&snap.rs_dip_dport),
                fc[3].step(&snap.rs_dip_dport_verifier),
                fc[4].step(&snap.rs_sip_dip),
                fc[5].step(&snap.rs_sip_dip_verifier),
            ];
            if i + 1 == n {
                let mut it = errs.into_iter().map(|e| e.expect("past warmup"));
                let grids = ErrorGrids {
                    rs_sip_dport: it.next().unwrap(),
                    rs_sip_dport_verifier: it.next().unwrap(),
                    rs_dip_dport: it.next().unwrap(),
                    rs_dip_dport_verifier: it.next().unwrap(),
                    rs_sip_dip: it.next().unwrap(),
                    rs_sip_dip_verifier: it.next().unwrap(),
                };
                last = Some((det.detect(i as u64, &grids), snap));
            }
        }
        last.unwrap()
    }

    fn quiet_interval() -> Vec<Packet> {
        let mut v = Vec::new();
        for i in 0..30u32 {
            let c: Ip4 = [9, 9, 9, (i % 50) as u8].into();
            let s: Ip4 = [129, 105, 0, 10].into();
            v.push(Packet::syn(i as u64 * 10, c, 4000 + i as u16, s, 80));
            v.push(Packet::syn_ack(
                i as u64 * 10 + 1,
                c,
                4000 + i as u16,
                s,
                80,
            ));
        }
        v
    }

    #[test]
    fn step1_detects_flooding_victim() {
        let cfg = HiFindConfig::small(10);
        let mut flood = quiet_interval();
        let victim: Ip4 = [129, 105, 0, 99].into();
        for i in 0..200u32 {
            flood.push(Packet::syn(
                i as u64,
                Ip4::new(0x5000_0000 + i),
                2000,
                victim,
                443,
            ));
        }
        let (d, _) = detect_last(&cfg, vec![quiet_interval(), quiet_interval(), flood]);
        assert_eq!(d.floodings.len(), 1, "raw: {:?}", d);
        let a = &d.floodings[0];
        assert_eq!(a.dip, Some(victim));
        assert_eq!(a.dport, Some(443));
        assert!(!a.attacker_identified, "spoofed flood has no single source");
        // A spoofed flood spreads sources, so steps 2/3 stay quiet.
        assert!(d.vscans.is_empty());
        assert!(d.hscans.is_empty());
    }

    #[test]
    fn step2_detects_vertical_scan() {
        let cfg = HiFindConfig::small(11);
        let mut scan = quiet_interval();
        let attacker: Ip4 = [66, 1, 2, 3].into();
        let victim: Ip4 = [129, 105, 0, 50].into();
        for port in 1..=300u16 {
            scan.push(Packet::syn(port as u64 * 5, attacker, 2000, victim, port));
        }
        let (d, _) = detect_last(&cfg, vec![quiet_interval(), quiet_interval(), scan]);
        assert!(
            d.vscans
                .iter()
                .any(|a| a.sip == Some(attacker) && a.dip == Some(victim)),
            "raw: {d:?}"
        );
        assert!(d.floodings.is_empty(), "no single port is heavy: {d:?}");
    }

    #[test]
    fn step3_detects_horizontal_scan() {
        let cfg = HiFindConfig::small(12);
        let mut scan = quiet_interval();
        let attacker: Ip4 = [66, 4, 5, 6].into();
        for i in 0..300u32 {
            let dst: Ip4 = [129, 105, (i >> 8) as u8, i as u8].into();
            scan.push(Packet::syn(i as u64 * 5, attacker, 2000, dst, 445));
        }
        let (d, _) = detect_last(&cfg, vec![quiet_interval(), quiet_interval(), scan]);
        assert!(
            d.hscans
                .iter()
                .any(|a| a.sip == Some(attacker) && a.dport == Some(445)),
            "raw: {d:?}"
        );
    }

    #[test]
    fn non_spoofed_flooding_not_misfiled_as_scan() {
        let cfg = HiFindConfig::small(13);
        let mut flood = quiet_interval();
        let attacker: Ip4 = [66, 7, 8, 9].into();
        let victim: Ip4 = [129, 105, 0, 60].into();
        for i in 0..300u32 {
            flood.push(Packet::syn(
                i as u64,
                attacker,
                2000 + (i % 1000) as u16,
                victim,
                80,
            ));
        }
        let (d, _) = detect_last(&cfg, vec![quiet_interval(), quiet_interval(), flood]);
        assert_eq!(d.floodings.len(), 1);
        let a = &d.floodings[0];
        assert_eq!(a.sip, Some(attacker), "attacker should be identified");
        assert!(a.attacker_identified);
        // Steps 2/3 must attribute the traffic to the flood, not to scans.
        assert!(d.vscans.is_empty(), "raw: {d:?}");
        assert!(d.hscans.is_empty(), "raw: {d:?}");
    }

    #[test]
    fn steady_traffic_detects_nothing() {
        let cfg = HiFindConfig::small(14);
        let (d, _) = detect_last(
            &cfg,
            vec![quiet_interval(), quiet_interval(), quiet_interval()],
        );
        assert!(d.floodings.is_empty());
        assert!(d.vscans.is_empty());
        assert!(d.hscans.is_empty());
    }

    #[test]
    fn syn_estimates_track_reality() {
        let cfg = HiFindConfig::small(15);
        let victim: Ip4 = [129, 105, 0, 99].into();
        let mut flood = quiet_interval();
        for i in 0..500u32 {
            flood.push(Packet::syn(
                i as u64,
                Ip4::new(0x5100_0000 + i),
                2000,
                victim,
                443,
            ));
        }
        let (_, snap) = detect_last(&cfg, vec![quiet_interval(), flood]);
        let det = Detector::new(&cfg).unwrap();
        let key = DipDport::new(victim, 443);
        let syn = det.syn_estimate(&snap, key);
        let unresp = det.unresponded_estimate(&snap, key);
        assert!((450..600).contains(&syn), "syn estimate {syn}");
        assert!(
            (450..600).contains(&unresp),
            "unresponded estimate {unresp}"
        );
    }
}
