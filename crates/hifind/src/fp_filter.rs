//! Phase 3: SYN-flooding false-positive reduction (paper §3.4).
//!
//! Two heuristics separate real floodings from benign anomalies:
//!
//! 1. **Ratio + persistence** — a flooding keeps the victim's
//!    `#SYN / #SYN/ACK` ratio high *and lasts some time*. Short
//!    congestion/failure bursts trip the raw detector for an interval or
//!    two and disappear; the filter requires the candidate to stay flagged
//!    for `flood_persist_intervals` consecutive intervals with the ratio
//!    above `flood_syn_ratio`.
//! 2. **Active service** — DoS attacks target services that exist. A
//!    victim endpoint that has *never* emitted a SYN/ACK (stale DNS entry,
//!    misconfigured client) is dropped. Implemented with the recorder's
//!    cumulative Bloom filter, whose one-sided error can only *keep* a
//!    true alert, never wrongly drop one.

use crate::detector::Detector;
use crate::recorder::IntervalSnapshot;
use crate::report::Alert;
use hifind_flow::keys::{DipDport, SketchKey};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Stateful flooding false-positive filter. One instance must see every
/// interval in order (persistence is tracked across calls).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FloodFpFilter {
    /// Candidate identity → (last interval flagged, consecutive count).
    streaks: HashMap<(u32, u16), (u64, u32)>,
}

/// One in-flight persistence streak, as exported for checkpointing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FloodStreak {
    /// Victim address (raw `u32`).
    pub dip: u32,
    /// Victim port.
    pub dport: u16,
    /// Last interval this candidate was flagged in.
    pub last_interval: u64,
    /// Consecutive flagged intervals ending at `last_interval`.
    pub count: u32,
}

/// Phase-3 outcome for one interval.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FilteredFloodings {
    /// Flooding alerts that passed all heuristics.
    pub confirmed: Vec<Alert>,
    /// Dropped: victim service never active (misconfiguration noise).
    pub dropped_inactive: Vec<Alert>,
    /// Dropped: SYN/SYN-ACK ratio too low (server still answering).
    pub dropped_ratio: Vec<Alert>,
    /// Dropped: candidate carried no victim endpoint, so neither heuristic
    /// can examine it (a classifier bug upstream, not a ratio verdict).
    pub dropped_unattributable: Vec<Alert>,
    /// Dropped (for now): not yet persistent — may confirm next interval.
    pub pending_persistence: Vec<Alert>,
}

impl FloodFpFilter {
    /// Creates an empty filter.
    pub fn new() -> Self {
        FloodFpFilter::default()
    }

    /// Applies the heuristics to one interval's flooding candidates.
    ///
    /// `interval` must be non-decreasing across calls.
    pub fn filter(
        &mut self,
        detector: &Detector,
        snapshot: &IntervalSnapshot,
        interval: u64,
        candidates: &[Alert],
    ) -> FilteredFloodings {
        let cfg = detector.config();
        let mut out = FilteredFloodings::default();
        for alert in candidates {
            let (Some(dip), Some(dport)) = (alert.dip, alert.dport) else {
                // Flooding alerts always carry the victim endpoint; a
                // candidate without one cannot be checked and is dropped
                // conservatively — into its own bucket, so run reports
                // don't mistake it for a ratio verdict.
                out.dropped_unattributable.push(*alert);
                continue;
            };
            let key = DipDport::new(dip, dport);

            // Heuristic 2: the victim must be (have been) a real service.
            if cfg.flood_require_active_service && !snapshot.active_services.contains(key.to_u64())
            {
                self.streaks.remove(&(dip.raw(), dport));
                out.dropped_inactive.push(*alert);
                continue;
            }

            // Heuristic 1a: ratio — the service must be mostly unanswered
            // *this interval*.
            let syn = detector.syn_estimate(snapshot, key);
            let unresponded = detector.unresponded_estimate(snapshot, key);
            let syn_ack = (syn - unresponded).max(0);
            let ratio_ok = syn as f64 >= cfg.flood_syn_ratio * (syn_ack.max(1)) as f64;
            if !ratio_ok {
                self.streaks.remove(&(dip.raw(), dport));
                out.dropped_ratio.push(*alert);
                continue;
            }

            // Heuristic 1b: persistence — attacks last some time.
            let entry = self
                .streaks
                .entry((dip.raw(), dport))
                .or_insert((interval, 0));
            let (last, count) = *entry;
            let new_count = if interval == last {
                // Duplicate candidate in the same interval: the streak may
                // advance at most once per interval (count == 0 marks a
                // fresh entry that hasn't been counted yet).
                count.max(1)
            } else if interval == last + 1 {
                count + 1
            } else {
                1
            };
            *entry = (interval, new_count);
            if new_count >= cfg.flood_persist_intervals {
                out.confirmed.push(*alert);
            } else {
                out.pending_persistence.push(*alert);
            }
        }
        out
    }

    /// Number of candidate streaks currently tracked.
    pub fn tracked(&self) -> usize {
        self.streaks.len()
    }

    /// Exports every in-flight streak, sorted by `(dip, dport)` so two
    /// filters with equal state export byte-identical lists (checkpoints
    /// must be deterministic).
    pub fn export_streaks(&self) -> Vec<FloodStreak> {
        let mut out: Vec<FloodStreak> = self
            .streaks
            .iter()
            .map(|(&(dip, dport), &(last_interval, count))| FloodStreak {
                dip,
                dport,
                last_interval,
                count,
            })
            .collect();
        out.sort_unstable_by_key(|s| (s.dip, s.dport));
        out
    }

    /// Rebuilds a filter from exported streaks. Later entries win on a
    /// duplicate `(dip, dport)` identity.
    pub fn from_streaks(streaks: impl IntoIterator<Item = FloodStreak>) -> Self {
        let mut filter = FloodFpFilter::new();
        for s in streaks {
            filter
                .streaks
                .insert((s.dip, s.dport), (s.last_interval, s.count));
        }
        filter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HiFindConfig;
    use crate::recorder::SketchRecorder;
    use crate::report::AlertKind;
    use hifind_flow::{Ip4, Packet};

    fn flood_alert(dip: Ip4, dport: u16, interval: u64) -> Alert {
        Alert {
            kind: AlertKind::SynFlooding,
            sip: None,
            dip: Some(dip),
            dport: Some(dport),
            interval,
            magnitude: 300,
            attacker_identified: false,
        }
    }

    /// Records an interval of flooding (optionally preceded by an answered
    /// handshake so the service is "active") and returns the snapshot.
    fn flooded_snapshot(
        cfg: &HiFindConfig,
        rec: &mut SketchRecorder,
        victim: Ip4,
        port: u16,
        syns: u32,
        answered: u32,
    ) -> IntervalSnapshot {
        let _ = cfg;
        for i in 0..answered {
            let c: Ip4 = [9, 9, 9, (i % 200) as u8].into();
            rec.record(&Packet::syn(i as u64, c, 5000 + i as u16, victim, port));
            rec.record(&Packet::syn_ack(i as u64, c, 5000 + i as u16, victim, port));
        }
        for i in 0..syns {
            rec.record(&Packet::syn(
                1000 + i as u64,
                Ip4::new(0x5000_0000 + i),
                2000,
                victim,
                port,
            ));
        }
        rec.take_snapshot()
    }

    #[test]
    fn persistent_flood_on_active_service_confirms() {
        let cfg = HiFindConfig::small(30);
        let mut rec = SketchRecorder::new(&cfg).unwrap();
        let det = Detector::new(&cfg).unwrap();
        let mut filter = FloodFpFilter::new();
        let victim: Ip4 = [129, 105, 0, 1].into();
        // Interval 0: service is alive and answering.
        let snap0 = flooded_snapshot(&cfg, &mut rec, victim, 80, 0, 20);
        let r0 = filter.filter(&det, &snap0, 0, &[]);
        assert!(r0.confirmed.is_empty());
        // Intervals 1 and 2: flooded.
        let snap1 = flooded_snapshot(&cfg, &mut rec, victim, 80, 400, 2);
        let r1 = filter.filter(&det, &snap1, 1, &[flood_alert(victim, 80, 1)]);
        assert!(r1.confirmed.is_empty(), "first interval is pending");
        assert_eq!(r1.pending_persistence.len(), 1);
        let snap2 = flooded_snapshot(&cfg, &mut rec, victim, 80, 400, 2);
        let r2 = filter.filter(&det, &snap2, 2, &[flood_alert(victim, 80, 2)]);
        assert_eq!(r2.confirmed.len(), 1, "{r2:?}");
    }

    #[test]
    fn never_active_target_is_dropped() {
        // Misconfiguration noise: the target never SYN/ACKed.
        let cfg = HiFindConfig::small(31);
        let mut rec = SketchRecorder::new(&cfg).unwrap();
        let det = Detector::new(&cfg).unwrap();
        let mut filter = FloodFpFilter::new();
        let dead: Ip4 = [129, 105, 9, 9].into();
        let snap = flooded_snapshot(&cfg, &mut rec, dead, 8080, 300, 0);
        for interval in 0..5 {
            let r = filter.filter(&det, &snap, interval, &[flood_alert(dead, 8080, interval)]);
            assert!(r.confirmed.is_empty());
            assert_eq!(r.dropped_inactive.len(), 1);
        }
    }

    #[test]
    fn answering_server_is_dropped_by_ratio() {
        // A flash-crowd-ish candidate: lots of SYNs but the server answers
        // most of them.
        let cfg = HiFindConfig::small(32);
        let mut rec = SketchRecorder::new(&cfg).unwrap();
        let det = Detector::new(&cfg).unwrap();
        let mut filter = FloodFpFilter::new();
        let busy: Ip4 = [129, 105, 0, 2].into();
        let snap = flooded_snapshot(&cfg, &mut rec, busy, 80, 40, 400);
        let r = filter.filter(&det, &snap, 1, &[flood_alert(busy, 80, 1)]);
        assert!(r.confirmed.is_empty());
        assert_eq!(r.dropped_ratio.len(), 1, "{r:?}");
    }

    #[test]
    fn short_burst_never_confirms() {
        // Congestion burst: one flagged interval, then gone for a while,
        // then one more — the streak must reset in between.
        let cfg = HiFindConfig::small(33);
        let mut rec = SketchRecorder::new(&cfg).unwrap();
        let det = Detector::new(&cfg).unwrap();
        let mut filter = FloodFpFilter::new();
        let victim: Ip4 = [129, 105, 0, 3].into();
        // Activate the service first.
        let warm = flooded_snapshot(&cfg, &mut rec, victim, 443, 0, 30);
        filter.filter(&det, &warm, 0, &[]);
        let burst1 = flooded_snapshot(&cfg, &mut rec, victim, 443, 300, 1);
        let r1 = filter.filter(&det, &burst1, 1, &[flood_alert(victim, 443, 1)]);
        assert!(r1.confirmed.is_empty());
        // Intervals 2–4: quiet (candidate absent). Interval 5: another burst.
        let burst2 = flooded_snapshot(&cfg, &mut rec, victim, 443, 300, 1);
        let r5 = filter.filter(&det, &burst2, 5, &[flood_alert(victim, 443, 5)]);
        assert!(
            r5.confirmed.is_empty(),
            "non-consecutive bursts must not confirm: {r5:?}"
        );
    }

    #[test]
    fn duplicate_candidates_in_one_interval_count_once() {
        // Regression: a noisy interval that lists the same (dip, dport)
        // twice used to bump the streak per duplicate, confirming a flood
        // before flood_persist_intervals distinct intervals elapsed.
        let cfg = HiFindConfig::small(36);
        assert!(cfg.flood_persist_intervals >= 2);
        let mut rec = SketchRecorder::new(&cfg).unwrap();
        let det = Detector::new(&cfg).unwrap();
        let mut filter = FloodFpFilter::new();
        let victim: Ip4 = [129, 105, 0, 6].into();
        let warm = flooded_snapshot(&cfg, &mut rec, victim, 80, 0, 20);
        filter.filter(&det, &warm, 0, &[]);
        let snap = flooded_snapshot(&cfg, &mut rec, victim, 80, 400, 2);
        let dupes = vec![flood_alert(victim, 80, 1); cfg.flood_persist_intervals as usize + 2];
        let r1 = filter.filter(&det, &snap, 1, &dupes);
        assert!(
            r1.confirmed.is_empty(),
            "duplicates in one interval must not satisfy persistence: {r1:?}"
        );
        assert_eq!(r1.pending_persistence.len(), dupes.len());
        // The streak still advances normally across real intervals.
        let snap2 = flooded_snapshot(&cfg, &mut rec, victim, 80, 400, 2);
        let r2 = filter.filter(&det, &snap2, 2, &[flood_alert(victim, 80, 2)]);
        assert_eq!(r2.confirmed.len(), 1, "{r2:?}");
    }

    #[test]
    fn unattributable_candidate_gets_its_own_bucket() {
        // Regression: candidates without a victim endpoint were misfiled
        // into dropped_ratio, inflating the ratio-drop count.
        let cfg = HiFindConfig::small(37);
        let mut rec = SketchRecorder::new(&cfg).unwrap();
        let det = Detector::new(&cfg).unwrap();
        let mut filter = FloodFpFilter::new();
        let snap = rec.take_snapshot();
        let mut bare = flood_alert([10, 0, 0, 1].into(), 80, 0);
        bare.dip = None;
        bare.dport = None;
        let r = filter.filter(&det, &snap, 0, &[bare]);
        assert_eq!(r.dropped_unattributable.len(), 1);
        assert!(r.dropped_ratio.is_empty(), "{r:?}");
        assert_eq!(filter.tracked(), 0);
    }

    #[test]
    fn streak_export_restore_round_trip() {
        // A restored filter must resume in-flight streaks exactly: one
        // more flagged interval confirms, same as without the restart.
        let cfg = HiFindConfig::small(38);
        let mut rec = SketchRecorder::new(&cfg).unwrap();
        let det = Detector::new(&cfg).unwrap();
        let mut filter = FloodFpFilter::new();
        let victim: Ip4 = [129, 105, 0, 8].into();
        let warm = flooded_snapshot(&cfg, &mut rec, victim, 80, 0, 20);
        filter.filter(&det, &warm, 0, &[]);
        let snap1 = flooded_snapshot(&cfg, &mut rec, victim, 80, 400, 2);
        let r1 = filter.filter(&det, &snap1, 1, &[flood_alert(victim, 80, 1)]);
        assert!(r1.confirmed.is_empty());

        let exported = filter.export_streaks();
        assert_eq!(exported.len(), 1);
        assert_eq!(exported[0].count, 1);
        let mut restored = FloodFpFilter::from_streaks(exported.clone());
        assert_eq!(restored.export_streaks(), exported);

        let snap2 = flooded_snapshot(&cfg, &mut rec, victim, 80, 400, 2);
        let r2 = restored.filter(&det, &snap2, 2, &[flood_alert(victim, 80, 2)]);
        assert_eq!(r2.confirmed.len(), 1, "{r2:?}");
    }

    #[test]
    fn streak_state_is_bounded_by_candidates() {
        let cfg = HiFindConfig::small(34);
        let mut rec = SketchRecorder::new(&cfg).unwrap();
        let det = Detector::new(&cfg).unwrap();
        let mut filter = FloodFpFilter::new();
        let victim: Ip4 = [129, 105, 0, 4].into();
        let snap = flooded_snapshot(&cfg, &mut rec, victim, 80, 300, 10);
        filter.filter(&det, &snap, 1, &[flood_alert(victim, 80, 1)]);
        assert_eq!(filter.tracked(), 1);
    }
}
