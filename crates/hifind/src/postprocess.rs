//! Alert post-processing: block-scan correlation.
//!
//! The paper's threat model (§3.2) includes *block scans* — one source
//! sweeping many ports across many destinations. The three-step algorithm
//! reports such behaviour as several horizontal-scan alerts (one per
//! scanned port) and/or several vertical-scan alerts (one per scanned
//! host) from the same source. This module correlates final alerts by
//! source to synthesize block-scan reports, giving operators one incident
//! instead of a page of related alerts.

use crate::report::{Alert, AlertKind};
use hifind_flow::Ip4;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A correlated block-scan incident.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockScanReport {
    /// The scanning source.
    pub sip: Ip4,
    /// Ports covered by this source's horizontal-scan alerts.
    pub ports: Vec<u16>,
    /// Hosts covered by this source's vertical-scan alerts.
    pub hosts: Vec<Ip4>,
    /// Sum of the underlying alerts' magnitudes.
    pub total_magnitude: i64,
    /// Earliest interval any constituent alert fired in.
    pub first_interval: u64,
}

impl fmt::Display for BlockScanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block scan from {}: {} ports x {} hosts (Δ = {}, first interval {})",
            self.sip,
            self.ports.len(),
            self.hosts.len(),
            self.total_magnitude,
            self.first_interval
        )
    }
}

/// Correlates scan alerts by source into block-scan incidents.
///
/// A source qualifies when its alerts cover at least `min_ports` distinct
/// ports **or** at least `min_hosts` distinct vertical-scan targets (a
/// block scan shows up on both axes, but sketch thresholds may surface
/// only one).
///
/// # Panics
///
/// Panics if `min_ports == 0` or `min_hosts == 0` (a block scan needs at
/// least some extent on an axis).
pub fn correlate_block_scans(
    alerts: &[Alert],
    min_ports: usize,
    min_hosts: usize,
) -> Vec<BlockScanReport> {
    assert!(min_ports > 0, "min_ports must be positive");
    assert!(min_hosts > 0, "min_hosts must be positive");
    #[derive(Default)]
    struct Acc {
        ports: Vec<u16>,
        hosts: Vec<Ip4>,
        magnitude: i64,
        first_interval: u64,
    }
    let mut per_source: BTreeMap<u32, Acc> = BTreeMap::new();
    for a in alerts {
        let Some(sip) = a.sip else { continue };
        match a.kind {
            AlertKind::HScan => {
                let acc = per_source.entry(sip.raw()).or_insert_with(|| Acc {
                    first_interval: a.interval,
                    ..Acc::default()
                });
                if let Some(p) = a.dport {
                    if !acc.ports.contains(&p) {
                        acc.ports.push(p);
                    }
                }
                acc.magnitude += a.magnitude;
                acc.first_interval = acc.first_interval.min(a.interval);
            }
            AlertKind::VScan => {
                let acc = per_source.entry(sip.raw()).or_insert_with(|| Acc {
                    first_interval: a.interval,
                    ..Acc::default()
                });
                if let Some(d) = a.dip {
                    if !acc.hosts.contains(&d) {
                        acc.hosts.push(d);
                    }
                }
                acc.magnitude += a.magnitude;
                acc.first_interval = acc.first_interval.min(a.interval);
            }
            AlertKind::SynFlooding => {}
        }
    }
    let mut out: Vec<BlockScanReport> = per_source
        .into_iter()
        .filter(|(_, acc)| acc.ports.len() >= min_ports || acc.hosts.len() >= min_hosts)
        .map(|(sip, mut acc)| {
            acc.ports.sort_unstable();
            acc.hosts.sort();
            BlockScanReport {
                sip: Ip4::new(sip),
                ports: acc.ports,
                hosts: acc.hosts,
                total_magnitude: acc.magnitude,
                first_interval: acc.first_interval,
            }
        })
        .collect();
    out.sort_by_key(|a| std::cmp::Reverse(a.total_magnitude));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hscan(sip: [u8; 4], dport: u16, interval: u64) -> Alert {
        Alert {
            kind: AlertKind::HScan,
            sip: Some(sip.into()),
            dip: None,
            dport: Some(dport),
            interval,
            magnitude: 100,
            attacker_identified: true,
        }
    }

    fn vscan(sip: [u8; 4], dip: [u8; 4], interval: u64) -> Alert {
        Alert {
            kind: AlertKind::VScan,
            sip: Some(sip.into()),
            dip: Some(dip.into()),
            dport: None,
            interval,
            magnitude: 100,
            attacker_identified: true,
        }
    }

    #[test]
    fn multi_port_source_becomes_block_scan() {
        let alerts = vec![
            hscan([6, 6, 6, 6], 135, 2),
            hscan([6, 6, 6, 6], 139, 1),
            hscan([6, 6, 6, 6], 445, 3),
            hscan([7, 7, 7, 7], 22, 1), // single-port scanner: not a block scan
        ];
        let reports = correlate_block_scans(&alerts, 3, 3);
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.sip, Ip4::from([6, 6, 6, 6]));
        assert_eq!(r.ports, vec![135, 139, 445]);
        assert_eq!(r.first_interval, 1);
        assert_eq!(r.total_magnitude, 300);
        assert!(r.to_string().contains("3 ports"));
    }

    #[test]
    fn multi_host_vertical_scans_also_qualify() {
        let alerts = vec![
            vscan([8, 8, 8, 8], [10, 0, 0, 1], 1),
            vscan([8, 8, 8, 8], [10, 0, 0, 2], 1),
            vscan([8, 8, 8, 8], [10, 0, 0, 3], 2),
        ];
        let reports = correlate_block_scans(&alerts, 5, 3);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].hosts.len(), 3);
    }

    #[test]
    fn mixed_axes_accumulate_per_source() {
        let alerts = vec![
            hscan([9, 9, 9, 9], 80, 1),
            hscan([9, 9, 9, 9], 443, 1),
            vscan([9, 9, 9, 9], [10, 0, 0, 1], 2),
        ];
        // Neither axis alone qualifies at (3, 3)...
        assert!(correlate_block_scans(&alerts, 3, 3).is_empty());
        // ...but at (2, _) the port axis does, and both axes are reported.
        let reports = correlate_block_scans(&alerts, 2, 3);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].ports.len(), 2);
        assert_eq!(reports[0].hosts.len(), 1);
    }

    #[test]
    fn flooding_alerts_are_ignored() {
        let alerts = vec![Alert {
            kind: AlertKind::SynFlooding,
            sip: Some([5, 5, 5, 5].into()),
            dip: Some([10, 0, 0, 1].into()),
            dport: Some(80),
            interval: 0,
            magnitude: 9999,
            attacker_identified: true,
        }];
        assert!(correlate_block_scans(&alerts, 1, 1).is_empty());
    }

    #[test]
    fn sorted_by_magnitude() {
        let mut alerts = vec![hscan([1, 1, 1, 1], 80, 1), hscan([1, 1, 1, 1], 81, 1)];
        alerts.push({
            let mut a = hscan([2, 2, 2, 2], 90, 1);
            a.magnitude = 500;
            a
        });
        alerts.push({
            let mut a = hscan([2, 2, 2, 2], 91, 1);
            a.magnitude = 500;
            a
        });
        let reports = correlate_block_scans(&alerts, 2, 2);
        assert_eq!(reports.len(), 2);
        assert!(reports[0].total_magnitude >= reports[1].total_magnitude);
    }

    #[test]
    #[should_panic(expected = "min_ports")]
    fn zero_min_ports_panics() {
        let _ = correlate_block_scans(&[], 0, 1);
    }
}
