//! The per-packet hash plan: single-pass key packing and pre-mixing.
//!
//! Six sketches consume every recorded SYN/SYN-ACK, and before this module
//! each of them re-derived its hash inputs from scratch: the three packed
//! keys were re-premixed by every pairwise consumer (three verifiers, the
//! OS sketch and both 2D x-axes — up to 44 redundant pre-mix computations
//! per packet), and each reversible sketch re-extracted the mangled key's
//! bytes once per stage. A [`HashPlan`] hoists all of that shared work
//! into one pass: pack the `{SIP,Dport}`, `{DIP,Dport}` and `{SIP,DIP}`
//! keys once, compute each key's seed-independent
//! [`PairwiseHasher::premix`] once (plus the two 2D y-keys), and feed
//! every sketch's `update_premixed` entry point from the plan.
//!
//! What the plan deliberately does *not* share: mangled words (each
//! reversible sketch manglees with its own secret seed, so the mangled key
//! is private per sketch — its byte decomposition is hoisted inside
//! `ReversibleSketch::update_premixed` instead) and the active-service
//! Bloom digests (structurally different multiply-rotate hashing on a
//! cold branch). Counter *memory* accesses are unchanged — the plan cuts
//! redundant ALU hash work, not the paper's per-packet access budget.

use hifind_flow::keys::{DipDport, SipDip, SipDport, SketchKey};
use hifind_flow::{Oriented, Packet, SegmentKind};
use hifind_hashing::PairwiseHasher;

/// All hash inputs the record plane shares across its six sketches for one
/// SYN or SYN/ACK, computed in a single pass over the packet's fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HashPlan {
    /// `#SYN − #SYN/ACK` contribution (`+1` for SYN, `−1` for SYN/ACK).
    pub value: i64,
    /// `true` for a SYN (feeds the OS sketch and SYN counter), `false`
    /// for a SYN/ACK (feeds the active-service filter).
    pub is_syn: bool,
    /// Packed `{SIP, Dport}` key.
    pub sip_dport: u64,
    /// Packed `{DIP, Dport}` key.
    pub dip_dport: u64,
    /// Packed `{SIP, DIP}` key.
    pub sip_dip: u64,
    /// [`PairwiseHasher::premix`] of [`HashPlan::sip_dport`] (verifier and
    /// 2D x-axis input).
    pub sip_dport_mix: u64,
    /// [`PairwiseHasher::premix`] of [`HashPlan::dip_dport`] (verifier and
    /// OS-sketch input).
    pub dip_dport_mix: u64,
    /// [`PairwiseHasher::premix`] of [`HashPlan::sip_dip`] (verifier and
    /// 2D x-axis input).
    pub sip_dip_mix: u64,
    /// [`PairwiseHasher::premix`] of the DIP y-key for the
    /// `{SIP,Dport} × DIP` 2D sketch.
    pub dip_mix: u64,
    /// [`PairwiseHasher::premix`] of the Dport y-key for the
    /// `{SIP,DIP} × Dport` 2D sketch.
    pub dport_mix: u64,
}

impl HashPlan {
    /// Builds the plan for an oriented SYN or SYN/ACK segment.
    ///
    /// Callers must only pass [`SegmentKind::Syn`] / [`SegmentKind::SynAck`]
    /// segments (other kinds never reach the sketches); the plan of any
    /// other kind would carry `value == 0` and corrupt nothing, but the
    /// recorder filters them out before planning.
    #[inline]
    #[must_use]
    pub fn for_oriented(o: &Oriented) -> HashPlan {
        let sip_dport = SipDport::new(o.client, o.server_port).to_u64();
        let dip_dport = DipDport::new(o.server, o.server_port).to_u64();
        let sip_dip = SipDip::new(o.client, o.server).to_u64();
        HashPlan {
            value: o.syn_minus_synack(),
            is_syn: o.kind == SegmentKind::Syn,
            sip_dport,
            dip_dport,
            sip_dip,
            sip_dport_mix: PairwiseHasher::premix(sip_dport),
            dip_dport_mix: PairwiseHasher::premix(dip_dport),
            sip_dip_mix: PairwiseHasher::premix(sip_dip),
            dip_mix: PairwiseHasher::premix(o.server.raw() as u64),
            dport_mix: PairwiseHasher::premix(o.server_port as u64),
        }
    }

    /// Builds the plan for a packet, or `None` if the packet is not a SYN
    /// or SYN/ACK (FIN/RST bookkeeping stays in the recorder).
    #[inline]
    #[must_use]
    pub fn for_packet(packet: &Packet) -> Option<HashPlan> {
        let o = packet.orient()?;
        match o.kind {
            SegmentKind::Syn | SegmentKind::SynAck => Some(HashPlan::for_oriented(&o)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind_flow::{Ip4, Packet};

    #[test]
    fn plan_packs_keys_and_premixes_once() {
        let c: Ip4 = [10, 0, 0, 7].into();
        let s: Ip4 = [129, 105, 0, 1].into();
        let p = Packet::syn(5, c, 4321, s, 80);
        let plan = HashPlan::for_packet(&p).expect("SYN gets a plan");
        assert_eq!(plan.value, 1);
        assert!(plan.is_syn);
        assert_eq!(plan.sip_dport, SipDport::new(c, 80).to_u64());
        assert_eq!(plan.dip_dport, DipDport::new(s, 80).to_u64());
        assert_eq!(plan.sip_dip, SipDip::new(c, s).to_u64());
        assert_eq!(plan.sip_dport_mix, PairwiseHasher::premix(plan.sip_dport));
        assert_eq!(plan.dip_dport_mix, PairwiseHasher::premix(plan.dip_dport));
        assert_eq!(plan.sip_dip_mix, PairwiseHasher::premix(plan.sip_dip));
        assert_eq!(plan.dip_mix, PairwiseHasher::premix(s.raw() as u64));
        assert_eq!(plan.dport_mix, PairwiseHasher::premix(80));
    }

    #[test]
    fn synack_plan_is_negative_and_not_syn() {
        let p = Packet::syn_ack(5, [1, 2, 3, 4].into(), 999, [5, 6, 7, 8].into(), 443);
        let plan = HashPlan::for_packet(&p).expect("SYN/ACK gets a plan");
        assert_eq!(plan.value, -1);
        assert!(!plan.is_syn);
    }

    #[test]
    fn non_handshake_packets_get_no_plan() {
        let c: Ip4 = [1, 2, 3, 4].into();
        let s: Ip4 = [5, 6, 7, 8].into();
        assert!(HashPlan::for_packet(&Packet::fin(0, c, 999, s, 80)).is_none());
        assert!(HashPlan::for_packet(&Packet::rst(0, c, 999, s, 80)).is_none());
    }
}
