//! The per-packet hash plan: single-pass key packing and pre-mixing.
//!
//! Six sketches consume every recorded SYN/SYN-ACK, and before this module
//! each of them re-derived its hash inputs from scratch: the three packed
//! keys were re-premixed by every pairwise consumer (three verifiers, the
//! OS sketch and both 2D x-axes — up to 44 redundant pre-mix computations
//! per packet), and each reversible sketch re-extracted the mangled key's
//! bytes once per stage. A [`HashPlan`] hoists all of that shared work
//! into one pass: pack the `{SIP,Dport}`, `{DIP,Dport}` and `{SIP,DIP}`
//! keys once, compute each key's seed-independent
//! [`PairwiseHasher::premix`] once (plus the two 2D y-keys), and feed
//! every sketch's `update_premixed` entry point from the plan.
//!
//! What the plan deliberately does *not* share: mangled words (each
//! reversible sketch manglees with its own secret seed, so the mangled key
//! is private per sketch — its byte decomposition is hoisted inside
//! `ReversibleSketch::update_premixed` instead) and the active-service
//! Bloom digests (structurally different multiply-rotate hashing on a
//! cold branch). Counter *memory* accesses are unchanged — the plan cuts
//! redundant ALU hash work, not the paper's per-packet access budget.

use hifind_flow::keys::{DipDport, SipDip, SipDport, SketchKey};
use hifind_flow::{Oriented, Packet, SegmentKind};
use hifind_hashing::PairwiseHasher;

/// All hash inputs the record plane shares across its six sketches for one
/// SYN or SYN/ACK, computed in a single pass over the packet's fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HashPlan {
    /// `#SYN − #SYN/ACK` contribution (`+1` for SYN, `−1` for SYN/ACK).
    pub value: i64,
    /// `true` for a SYN (feeds the OS sketch and SYN counter), `false`
    /// for a SYN/ACK (feeds the active-service filter).
    pub is_syn: bool,
    /// Packed `{SIP, Dport}` key.
    pub sip_dport: u64,
    /// Packed `{DIP, Dport}` key.
    pub dip_dport: u64,
    /// Packed `{SIP, DIP}` key.
    pub sip_dip: u64,
    /// [`PairwiseHasher::premix`] of [`HashPlan::sip_dport`] (verifier and
    /// 2D x-axis input).
    pub sip_dport_mix: u64,
    /// [`PairwiseHasher::premix`] of [`HashPlan::dip_dport`] (verifier and
    /// OS-sketch input).
    pub dip_dport_mix: u64,
    /// [`PairwiseHasher::premix`] of [`HashPlan::sip_dip`] (verifier and
    /// 2D x-axis input).
    pub sip_dip_mix: u64,
    /// [`PairwiseHasher::premix`] of the DIP y-key for the
    /// `{SIP,Dport} × DIP` 2D sketch.
    pub dip_mix: u64,
    /// [`PairwiseHasher::premix`] of the Dport y-key for the
    /// `{SIP,DIP} × Dport` 2D sketch.
    pub dport_mix: u64,
}

impl HashPlan {
    /// Builds the plan for an oriented SYN or SYN/ACK segment.
    ///
    /// Callers must only pass [`SegmentKind::Syn`] / [`SegmentKind::SynAck`]
    /// segments (other kinds never reach the sketches); the plan of any
    /// other kind would carry `value == 0` and corrupt nothing, but the
    /// recorder filters them out before planning.
    #[inline]
    #[must_use]
    pub fn for_oriented(o: &Oriented) -> HashPlan {
        let sip_dport = SipDport::new(o.client, o.server_port).to_u64();
        let dip_dport = DipDport::new(o.server, o.server_port).to_u64();
        let sip_dip = SipDip::new(o.client, o.server).to_u64();
        HashPlan {
            value: o.syn_minus_synack(),
            is_syn: o.kind == SegmentKind::Syn,
            sip_dport,
            dip_dport,
            sip_dip,
            sip_dport_mix: PairwiseHasher::premix(sip_dport),
            dip_dport_mix: PairwiseHasher::premix(dip_dport),
            sip_dip_mix: PairwiseHasher::premix(sip_dip),
            dip_mix: PairwiseHasher::premix(o.server.raw() as u64),
            dport_mix: PairwiseHasher::premix(o.server_port as u64),
        }
    }

    /// Builds the plan for a packet, or `None` if the packet is not a SYN
    /// or SYN/ACK (FIN/RST bookkeeping stays in the recorder).
    #[inline]
    #[must_use]
    pub fn for_packet(packet: &Packet) -> Option<HashPlan> {
        let o = packet.orient()?;
        match o.kind {
            SegmentKind::Syn | SegmentKind::SynAck => Some(HashPlan::for_oriented(&o)),
            _ => None,
        }
    }
}

/// A structure-of-arrays batch of [`HashPlan`]s: the contiguous premix
/// columns the SIMD kernels consume.
///
/// The per-packet [`HashPlan`] keeps hash work single-pass; the batch goes
/// one step further and lays each shared digest out as its own contiguous
/// column, so [`crate::SketchRecorder::record_batch`] can hand every sketch
/// a `&[u64]` premix slice and let the dispatched
/// [`hifind_sketch::SketchKernel`] finish bucket indices four packets at a
/// time. SYN-only columns (the OS sketch input) and SYN/ACK-only columns
/// (the active-service Bloom keys) are split out at push time, so the batch
/// consumers never re-branch on `is_syn`.
///
/// Column order within the batch is packet arrival order, which keeps the
/// batched path bit-identical to per-packet recording: each sketch sees the
/// same update sequence it would have seen packet-by-packet.
#[derive(Clone, Debug, Default)]
pub struct PlanBatch {
    /// `#SYN − #SYN/ACK` per packet (every value sketch's delta).
    pub(crate) values: Vec<i64>,
    /// Packed `{SIP,Dport}` keys (reversible-sketch mangling input).
    pub(crate) sip_dport: Vec<u64>,
    /// Premixed `{SIP,Dport}` (verifier + 2D x-axis).
    pub(crate) sip_dport_mix: Vec<u64>,
    /// Packed `{DIP,Dport}` keys.
    pub(crate) dip_dport: Vec<u64>,
    /// Premixed `{DIP,Dport}` (verifier; OS input for SYNs).
    pub(crate) dip_dport_mix: Vec<u64>,
    /// Packed `{SIP,DIP}` keys.
    pub(crate) sip_dip: Vec<u64>,
    /// Premixed `{SIP,DIP}` (verifier + 2D x-axis).
    pub(crate) sip_dip_mix: Vec<u64>,
    /// Premixed DIP y-keys for the `{SIP,Dport} × DIP` 2D sketch.
    pub(crate) dip_mix: Vec<u64>,
    /// Premixed Dport y-keys for the `{SIP,DIP} × Dport` 2D sketch.
    pub(crate) dport_mix: Vec<u64>,
    /// Premixed `{DIP,Dport}` of the SYNs only (OS-sketch column).
    pub(crate) os_mix: Vec<u64>,
    /// All-ones deltas matching [`PlanBatch::os_mix`] (`#SYN` counting).
    pub(crate) os_ones: Vec<i64>,
    /// Packed `{DIP,Dport}` of the SYN/ACKs only (Bloom-filter keys).
    pub(crate) synack_keys: Vec<u64>,
}

impl PlanBatch {
    /// An empty batch with room for `n` plans in every shared column.
    #[must_use]
    pub fn with_capacity(n: usize) -> PlanBatch {
        PlanBatch {
            values: Vec::with_capacity(n),
            sip_dport: Vec::with_capacity(n),
            sip_dport_mix: Vec::with_capacity(n),
            dip_dport: Vec::with_capacity(n),
            dip_dport_mix: Vec::with_capacity(n),
            sip_dip: Vec::with_capacity(n),
            sip_dip_mix: Vec::with_capacity(n),
            dip_mix: Vec::with_capacity(n),
            dport_mix: Vec::with_capacity(n),
            os_mix: Vec::with_capacity(n),
            os_ones: Vec::with_capacity(n),
            synack_keys: Vec::with_capacity(n),
        }
    }

    /// Appends one plan, splitting its SYN-only / SYN-ACK-only columns.
    #[inline]
    pub fn push(&mut self, plan: &HashPlan) {
        self.values.push(plan.value);
        self.sip_dport.push(plan.sip_dport);
        self.sip_dport_mix.push(plan.sip_dport_mix);
        self.dip_dport.push(plan.dip_dport);
        self.dip_dport_mix.push(plan.dip_dport_mix);
        self.sip_dip.push(plan.sip_dip);
        self.sip_dip_mix.push(plan.sip_dip_mix);
        self.dip_mix.push(plan.dip_mix);
        self.dport_mix.push(plan.dport_mix);
        if plan.is_syn {
            self.os_mix.push(plan.dip_dport_mix);
            self.os_ones.push(1);
        } else {
            self.synack_keys.push(plan.dip_dport);
        }
    }

    /// Number of plans in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no plans have been pushed since the last clear.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Empties every column, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.values.clear();
        self.sip_dport.clear();
        self.sip_dport_mix.clear();
        self.dip_dport.clear();
        self.dip_dport_mix.clear();
        self.sip_dip.clear();
        self.sip_dip_mix.clear();
        self.dip_mix.clear();
        self.dport_mix.clear();
        self.os_mix.clear();
        self.os_ones.clear();
        self.synack_keys.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind_flow::{Ip4, Packet};

    #[test]
    fn plan_packs_keys_and_premixes_once() {
        let c: Ip4 = [10, 0, 0, 7].into();
        let s: Ip4 = [129, 105, 0, 1].into();
        let p = Packet::syn(5, c, 4321, s, 80);
        let plan = HashPlan::for_packet(&p).expect("SYN gets a plan");
        assert_eq!(plan.value, 1);
        assert!(plan.is_syn);
        assert_eq!(plan.sip_dport, SipDport::new(c, 80).to_u64());
        assert_eq!(plan.dip_dport, DipDport::new(s, 80).to_u64());
        assert_eq!(plan.sip_dip, SipDip::new(c, s).to_u64());
        assert_eq!(plan.sip_dport_mix, PairwiseHasher::premix(plan.sip_dport));
        assert_eq!(plan.dip_dport_mix, PairwiseHasher::premix(plan.dip_dport));
        assert_eq!(plan.sip_dip_mix, PairwiseHasher::premix(plan.sip_dip));
        assert_eq!(plan.dip_mix, PairwiseHasher::premix(s.raw() as u64));
        assert_eq!(plan.dport_mix, PairwiseHasher::premix(80));
    }

    #[test]
    fn synack_plan_is_negative_and_not_syn() {
        let p = Packet::syn_ack(5, [1, 2, 3, 4].into(), 999, [5, 6, 7, 8].into(), 443);
        let plan = HashPlan::for_packet(&p).expect("SYN/ACK gets a plan");
        assert_eq!(plan.value, -1);
        assert!(!plan.is_syn);
    }

    #[test]
    fn batch_splits_syn_and_synack_columns() {
        let c: Ip4 = [1, 2, 3, 4].into();
        let s: Ip4 = [5, 6, 7, 8].into();
        let syn = HashPlan::for_packet(&Packet::syn(0, c, 999, s, 80)).unwrap();
        let sa = HashPlan::for_packet(&Packet::syn_ack(1, c, 999, s, 80)).unwrap();
        let mut b = PlanBatch::with_capacity(2);
        b.push(&syn);
        b.push(&sa);
        assert_eq!(b.len(), 2);
        assert_eq!(b.values, vec![1, -1]);
        assert_eq!(b.sip_dport_mix, vec![syn.sip_dport_mix, sa.sip_dport_mix]);
        // SYN-only and SYN/ACK-only columns are split at push time.
        assert_eq!(b.os_mix, vec![syn.dip_dport_mix]);
        assert_eq!(b.os_ones, vec![1]);
        assert_eq!(b.synack_keys, vec![sa.dip_dport]);
        b.clear();
        assert!(b.is_empty());
        assert!(b.os_mix.is_empty() && b.synack_keys.is_empty());
    }

    #[test]
    fn non_handshake_packets_get_no_plan() {
        let c: Ip4 = [1, 2, 3, 4].into();
        let s: Ip4 = [5, 6, 7, 8].into();
        assert!(HashPlan::for_packet(&Packet::fin(0, c, 999, s, 80)).is_none());
        assert!(HashPlan::for_packet(&Packet::rst(0, c, 999, s, 80)).is_none());
    }
}
