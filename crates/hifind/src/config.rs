//! HiFIND system configuration.

use hifind_sketch::{ConfigDigest, InferOptions, KaryConfig, RsConfig, TwoDConfig};
use serde::{Deserialize, Serialize};

/// Full configuration of a HiFIND instance.
///
/// [`HiFindConfig::paper`] reproduces the evaluation settings of §5.1:
/// one-minute intervals, a detection threshold of one unresponded SYN per
/// second, 6-stage reversible sketches (2^12 buckets for the 48-bit keys,
/// 2^16 for the 64-bit key, 2^14-bucket verifiers), a 6×2^14 k-ary sketch,
/// and two 5-stage 2^12×64 2D sketches with the top-5 / φ = 0.8 classifier.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HiFindConfig {
    /// Master seed; all sketch seeds derive from it.
    pub seed: u64,
    /// Detection interval in milliseconds (paper: one minute).
    pub interval_ms: u64,
    /// Detection threshold in unresponded SYNs *per second* (paper: 1/s);
    /// the per-interval threshold is `rate × interval`.
    pub threshold_per_sec: f64,
    /// EWMA smoothing factor α of paper eq. (1).
    pub ewma_alpha: f64,
    /// Reversible sketch configuration for the two 48-bit keys
    /// ({SIP,Dport} and {DIP,Dport}).
    pub rs48: RsConfig,
    /// Reversible sketch configuration for the 64-bit {SIP,DIP} key.
    pub rs64: RsConfig,
    /// The "original sketch" recording `#SYN` per {DIP,Dport}.
    pub os: KaryConfig,
    /// 2D sketch configuration (both 2D sketches share it).
    pub twod: TwoDConfig,
    /// Inference search options.
    pub infer: InferOptions,
    /// 2D classifier: how many top buckets may hold the mass (`p`).
    pub classify_top_p: usize,
    /// 2D classifier: concentration cutoff `φ`.
    pub classify_phi: f64,
    /// Phase 3: minimum consecutive flagged intervals before a flooding
    /// alert is reported ("attacks last some time").
    pub flood_persist_intervals: u32,
    /// Phase 3: required `#SYN / #SYN/ACK` ratio at the victim service for
    /// a flooding alert (congestion keeps answering *some*).
    pub flood_syn_ratio: f64,
    /// Phase 3: require the victim service to have been active (seen a
    /// SYN/ACK) — drops stale-DNS/misconfiguration targets.
    pub flood_require_active_service: bool,
    /// Bits of the active-service Bloom filter.
    pub active_service_bloom_bits: usize,
}

impl HiFindConfig {
    /// The paper's evaluation configuration (§5.1) derived from a master
    /// seed.
    pub fn paper(seed: u64) -> Self {
        HiFindConfig {
            seed,
            interval_ms: 60_000,
            threshold_per_sec: 1.0,
            ewma_alpha: 0.5,
            rs48: RsConfig::paper_48bit(seed ^ 0x48),
            rs64: RsConfig::paper_64bit(seed ^ 0x64),
            os: KaryConfig::paper_os(seed ^ 0x05),
            twod: TwoDConfig::paper(seed ^ 0x2D),
            infer: InferOptions::default(),
            classify_top_p: 5,
            classify_phi: 0.8,
            flood_persist_intervals: 2,
            flood_syn_ratio: 3.0,
            flood_require_active_service: true,
            active_service_bloom_bits: 1 << 20,
        }
    }

    /// A smaller configuration for fast unit tests: identical semantics,
    /// smaller sketches and ten-second intervals.
    pub fn small(seed: u64) -> Self {
        let mut cfg = HiFindConfig::paper(seed);
        cfg.interval_ms = 10_000;
        cfg.rs64.buckets = 1 << 16; // keep divisibility (8 words × 2 bits)
        cfg.os.buckets = 1 << 12;
        cfg.twod.x_buckets = 1 << 10;
        cfg.active_service_bloom_bits = 1 << 16;
        cfg
    }

    /// Derived configuration of the `{SIP,Dport}` reversible sketch.
    /// Recorder and detector both use this, so their hash functions agree.
    pub fn rs_sip_dport_config(&self) -> RsConfig {
        let mut c = self.rs48;
        c.seed ^= 0x51D0;
        c
    }

    /// Derived configuration of the `{DIP,Dport}` reversible sketch.
    pub fn rs_dip_dport_config(&self) -> RsConfig {
        let mut c = self.rs48;
        c.seed ^= 0xD1D0;
        c
    }

    /// Derived configuration of the `{SIP,DIP}` reversible sketch.
    pub fn rs_sip_dip_config(&self) -> RsConfig {
        self.rs64
    }

    /// Derived configuration of the `{SIP,Dport} × {DIP}` 2D sketch.
    pub fn twod_sipdport_dip_config(&self) -> TwoDConfig {
        let mut c = self.twod;
        c.seed ^= 0xA;
        c
    }

    /// Derived configuration of the `{SIP,DIP} × {Dport}` 2D sketch.
    pub fn twod_sipdip_dport_config(&self) -> TwoDConfig {
        let mut c = self.twod;
        c.seed ^= 0xB;
        c
    }

    /// Digest of the *record-plane* configuration: every parameter two
    /// recorders must share for their [`crate::IntervalSnapshot`]s to be
    /// combinable — the derived sketch configurations (shapes **and**
    /// seeds) and the active-service Bloom geometry. Snapshots carry this
    /// fingerprint and [`crate::IntervalSnapshot::combine_into`] rejects
    /// mismatches, so differently-seeded recorders can never silently sum
    /// into garbage. Detection-plane parameters (interval width,
    /// thresholds, classifier knobs) are deliberately excluded: they live
    /// at the aggregation site and need not match across routers.
    pub fn fingerprint(&self) -> u64 {
        let mut d = ConfigDigest::new();
        d.write_u64(self.seed); // the Bloom hash seeds derive from this
        self.rs_sip_dport_config().digest_into(&mut d);
        self.rs_dip_dport_config().digest_into(&mut d);
        self.rs_sip_dip_config().digest_into(&mut d);
        self.os.digest_into(&mut d);
        self.twod_sipdport_dip_config().digest_into(&mut d);
        self.twod_sipdip_dport_config().digest_into(&mut d);
        d.write_usize(self.active_service_bloom_bits);
        d.finish()
    }

    /// The per-interval detection threshold (at least 1).
    pub fn interval_threshold(&self) -> i64 {
        ((self.threshold_per_sec * self.interval_ms as f64 / 1000.0).round() as i64).max(1)
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.interval_ms == 0 {
            return Err("interval must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.ewma_alpha) {
            return Err(format!("ewma alpha {} outside [0, 1]", self.ewma_alpha));
        }
        if self.threshold_per_sec <= 0.0 {
            return Err("threshold must be positive".into());
        }
        if self.rs48.key_bits != 48 {
            return Err("rs48 must use 48-bit keys".into());
        }
        if self.rs64.key_bits != 64 {
            return Err("rs64 must use 64-bit keys".into());
        }
        if !(0.0..=1.0).contains(&self.classify_phi) {
            return Err(format!("phi {} outside [0, 1]", self.classify_phi));
        }
        if self.classify_top_p == 0 || self.classify_top_p > self.twod.y_buckets {
            return Err("top-p must be in 1..=y_buckets".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid_and_matches_section_5_1() {
        let cfg = HiFindConfig::paper(1);
        cfg.validate().unwrap();
        assert_eq!(cfg.interval_ms, 60_000);
        assert_eq!(cfg.interval_threshold(), 60);
        assert_eq!(cfg.rs48.stages, 6);
        assert_eq!(cfg.rs48.buckets, 1 << 12);
        assert_eq!(cfg.rs64.buckets, 1 << 16);
        assert_eq!(cfg.twod.stages, 5);
        assert_eq!(cfg.twod.x_buckets, 1 << 12);
        assert_eq!(cfg.twod.y_buckets, 64);
        assert_eq!(cfg.classify_top_p, 5);
        assert_eq!(cfg.classify_phi, 0.8);
    }

    #[test]
    fn small_config_is_valid() {
        HiFindConfig::small(2).validate().unwrap();
        assert_eq!(HiFindConfig::small(2).interval_threshold(), 10);
    }

    #[test]
    fn seeds_differentiate_instances() {
        assert_ne!(
            HiFindConfig::paper(1).rs48.seed,
            HiFindConfig::paper(2).rs48.seed
        );
        // Sub-seeds differ from each other too.
        let cfg = HiFindConfig::paper(1);
        assert_ne!(cfg.rs48.seed, cfg.rs64.seed);
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut cfg = HiFindConfig::paper(1);
        cfg.interval_ms = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = HiFindConfig::paper(1);
        cfg.ewma_alpha = 2.0;
        assert!(cfg.validate().is_err());
        let mut cfg = HiFindConfig::paper(1);
        cfg.rs48.key_bits = 64;
        assert!(cfg.validate().is_err());
        let mut cfg = HiFindConfig::paper(1);
        cfg.classify_top_p = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = HiFindConfig::paper(1);
        cfg.classify_top_p = 100_000;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn fingerprint_tracks_record_plane_only() {
        // Same config → same fingerprint; different seed → different.
        assert_eq!(
            HiFindConfig::paper(1).fingerprint(),
            HiFindConfig::paper(1).fingerprint()
        );
        assert_ne!(
            HiFindConfig::paper(1).fingerprint(),
            HiFindConfig::paper(2).fingerprint()
        );
        // Shape changes are visible too.
        let mut cfg = HiFindConfig::paper(1);
        cfg.os.buckets <<= 1;
        assert_ne!(cfg.fingerprint(), HiFindConfig::paper(1).fingerprint());
        // Detection-plane knobs do not affect combinability.
        let mut cfg = HiFindConfig::paper(1);
        cfg.interval_ms = 5_000;
        cfg.threshold_per_sec = 9.0;
        cfg.classify_phi = 0.5;
        assert_eq!(cfg.fingerprint(), HiFindConfig::paper(1).fingerprint());
    }

    #[test]
    fn threshold_scales_with_interval() {
        let mut cfg = HiFindConfig::paper(1);
        cfg.interval_ms = 1_000;
        assert_eq!(cfg.interval_threshold(), 1);
        cfg.threshold_per_sec = 0.001;
        assert_eq!(cfg.interval_threshold(), 1, "threshold is floored at 1");
    }
}
