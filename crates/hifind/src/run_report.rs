//! Machine-readable run telemetry: per-interval phase latencies, alert
//! counts by phase, and sketch health, aggregated into a [`RunReport`].
//!
//! This is the always-available observability layer: it relies only on
//! `std::time` measurements taken once per interval (see
//! [`crate::pipeline::DetectionCore::process_snapshot`]), so it adds
//! nothing to the per-packet hot path and needs no feature flags. The CLI
//! serializes it for `--metrics-json`; the bench harness embeds it in
//! result files. The optional `telemetry` feature layers live gauges and
//! Prometheus export on top (see [`crate::telemetry_ext`]).

use crate::pipeline::IntervalOutcome;
use crate::recorder::IntervalSnapshot;
use hifind_forecast::ErrorStats;
use hifind_sketch::SketchHealth;
use serde::{Deserialize, Serialize};

/// Wall time spent in each detection phase of one interval, nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseNanos {
    /// Forecaster `step` over all six grids (EWMA update + error grid).
    pub forecast: u64,
    /// Phase 1: three-step change detection (includes inference).
    pub detect: u64,
    /// Phase 2: 2D-sketch classification.
    pub classify: u64,
    /// Phase 3: flooding false-positive heuristics.
    pub flood_filter: u64,
    /// Whole `process_snapshot` call.
    pub total: u64,
}

/// Alert counts at each pipeline phase for one interval (or totals).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseAlertCounts {
    /// Phase-1 raw detections.
    pub raw: usize,
    /// Phase-2 survivors.
    pub classified: usize,
    /// Phase-3 final alerts.
    pub fin: usize,
    /// Scan candidates reclassified as flooding-like in phase 2.
    pub reclassified: usize,
}

impl PhaseAlertCounts {
    /// Counts the alerts in one interval outcome.
    pub fn from_outcome(outcome: &IntervalOutcome) -> Self {
        PhaseAlertCounts {
            raw: outcome.raw.len(),
            classified: outcome.classified.len(),
            fin: outcome.fin.len(),
            reclassified: outcome.reclassified.len(),
        }
    }

    fn accumulate(&mut self, other: &PhaseAlertCounts) {
        self.raw += other.raw;
        self.classified += other.classified;
        self.fin += other.fin;
        self.reclassified += other.reclassified;
    }
}

/// One interval's full telemetry record.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IntervalReport {
    /// Interval index.
    pub interval: u64,
    /// SYNs recorded this interval.
    pub syn_count: u64,
    /// SYN/ACKs recorded this interval.
    pub syn_ack_count: u64,
    /// Per-phase wall time.
    pub phase_ns: PhaseNanos,
    /// Alert counts by phase.
    pub alerts: PhaseAlertCounts,
    /// Health of each sketch grid at snapshot time.
    pub sketch_health: Vec<SketchHealth>,
    /// Forecast-error magnitudes for the three primary grids (empty
    /// during warm-up).
    pub forecast_error: Vec<ErrorStats>,
}

/// Fixed-bucket latency histogram over nanosecond observations.
///
/// Buckets are geometric from 1 µs to ~17 s (factor 4), which covers
/// everything from a warm-up interval on a small config to full paper-size
/// inference. A standalone type (rather than the telemetry crate's
/// histogram) so the default build needs no extra dependencies.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Ascending bucket upper bounds in nanoseconds.
    pub upper_bounds_ns: Vec<u64>,
    /// Per-bucket counts; one per bound plus a trailing overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, nanoseconds.
    pub sum_ns: u64,
    /// Smallest observation (0 when empty).
    pub min_ns: u64,
    /// Largest observation.
    pub max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        // 1µs, 4µs, 16µs, ..., ~17.2s — 13 geometric buckets.
        let upper_bounds_ns: Vec<u64> = (0..13).map(|i| 1_000u64 << (2 * i)).collect();
        let counts = vec![0; upper_bounds_ns.len() + 1];
        LatencyHistogram {
            upper_bounds_ns,
            counts,
            count: 0,
            sum_ns: 0,
            min_ns: 0,
            max_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one latency observation.
    pub fn observe(&mut self, ns: u64) {
        let idx = self.upper_bounds_ns.partition_point(|&ub| ns > ub);
        self.counts[idx] += 1;
        self.min_ns = if self.count == 0 {
            ns
        } else {
            self.min_ns.min(ns)
        };
        self.max_ns = self.max_ns.max(ns);
        self.count += 1;
        self.sum_ns += ns;
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Bucket-bound quantile estimate (`q` in `[0, 1]`), or `None` when
    /// empty. Reports the upper bound of the bucket holding the q-th
    /// observation, tightened to the tracked true extremes: never below
    /// `min_ns`, and the overflow bucket reports `max_ns` instead of
    /// infinity.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                let bound = match self.upper_bounds_ns.get(i) {
                    Some(ub) => (*ub).min(self.max_ns.max(self.min_ns)),
                    None => self.max_ns,
                };
                return Some(bound.max(self.min_ns));
            }
        }
        None
    }
}

/// Latency distribution per pipeline phase across the whole run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseLatency {
    /// Forecast step.
    pub forecast: LatencyHistogram,
    /// Phase-1 detection.
    pub detect: LatencyHistogram,
    /// Phase-2 classification.
    pub classify: LatencyHistogram,
    /// Phase-3 flood filtering.
    pub flood_filter: LatencyHistogram,
    /// Whole interval processing.
    pub total: LatencyHistogram,
}

impl PhaseLatency {
    fn observe(&mut self, ns: &PhaseNanos) {
        self.forecast.observe(ns.forecast);
        self.detect.observe(ns.detect);
        self.classify.observe(ns.classify);
        self.flood_filter.observe(ns.flood_filter);
        self.total.observe(ns.total);
    }
}

/// The complete machine-readable record of one detection run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Per-interval records, in order.
    pub intervals: Vec<IntervalReport>,
    /// Alert totals across all intervals.
    pub alert_totals: PhaseAlertCounts,
    /// Phase latency distributions across all intervals.
    pub phase_latency: PhaseLatency,
    /// Total SYNs across the run.
    pub syn_total: u64,
    /// Total SYN/ACKs across the run.
    pub syn_ack_total: u64,
    /// Recorder memory footprint in bytes (0 if not supplied).
    pub sketch_memory_bytes: usize,
}

impl RunReport {
    /// An empty report.
    pub fn new() -> Self {
        RunReport::default()
    }

    /// Folds one finished interval into the report.
    ///
    /// `saturation_threshold` is the per-interval detection threshold used
    /// to judge which buckets count as hot (see
    /// [`hifind_sketch::CounterGrid::saturation`]); pass
    /// [`crate::HiFindConfig::interval_threshold`].
    pub fn record_interval(
        &mut self,
        outcome: &IntervalOutcome,
        snapshot: &IntervalSnapshot,
        saturation_threshold: i64,
    ) {
        let alerts = PhaseAlertCounts::from_outcome(outcome);
        self.alert_totals.accumulate(&alerts);
        self.phase_latency.observe(&outcome.phase_ns);
        self.syn_total += snapshot.syn_count;
        self.syn_ack_total += snapshot.syn_ack_count;
        self.intervals.push(IntervalReport {
            interval: outcome.interval,
            syn_count: snapshot.syn_count,
            syn_ack_count: snapshot.syn_ack_count,
            phase_ns: outcome.phase_ns,
            alerts,
            sketch_health: snapshot_health(snapshot, saturation_threshold),
            forecast_error: outcome.forecast_error.clone(),
        });
    }

    /// Human-readable multi-line summary (the CLI's `--stats` output).
    pub fn summary_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} intervals, {} SYNs, {} SYN/ACKs",
            self.intervals.len(),
            self.syn_total,
            self.syn_ack_total
        );
        let _ = writeln!(
            out,
            "alerts: {} raw -> {} after-2D -> {} final ({} reclassified)",
            self.alert_totals.raw,
            self.alert_totals.classified,
            self.alert_totals.fin,
            self.alert_totals.reclassified
        );
        let _ = writeln!(
            out,
            "phase latency per interval ({:<13} {:>10} {:>10} {:>10} {:>10} {:>10}):",
            "phase", "mean", "p50", "p95", "p99", "max"
        );
        for (name, h) in [
            ("forecast", &self.phase_latency.forecast),
            ("detect", &self.phase_latency.detect),
            ("classify", &self.phase_latency.classify),
            ("flood_filter", &self.phase_latency.flood_filter),
            ("total", &self.phase_latency.total),
        ] {
            let q = |q: f64| h.quantile_ns(q).unwrap_or(0) as f64 / 1e6;
            let _ = writeln!(
                out,
                "  {name:<13} {:>7.3} ms {:>7.3} ms {:>7.3} ms {:>7.3} ms {:>7.3} ms",
                h.mean_ns() as f64 / 1e6,
                q(0.50),
                q(0.95),
                q(0.99),
                h.max_ns as f64 / 1e6,
            );
        }
        if let Some(last) = self.intervals.last() {
            let _ = writeln!(out, "sketch health (last interval):");
            for sh in &last.sketch_health {
                let _ = writeln!(
                    out,
                    "  {:<22} occupancy {:>6.2}%  saturation {:>6.2}%  max |c| {}",
                    sh.sketch,
                    sh.grid.mean_occupancy * 100.0,
                    sh.grid.saturation * 100.0,
                    sh.grid.max_abs,
                );
            }
        }
        out
    }
}

/// Measures every grid in a snapshot under its pipeline name.
pub fn snapshot_health(snapshot: &IntervalSnapshot, threshold: i64) -> Vec<SketchHealth> {
    [
        ("rs_sip_dport", &snapshot.rs_sip_dport),
        ("rs_dip_dport", &snapshot.rs_dip_dport),
        ("rs_sip_dip", &snapshot.rs_sip_dip),
        ("os", &snapshot.os),
        ("twod_sipdport_dip", &snapshot.twod_sipdport_dip),
        ("twod_sipdip_dport", &snapshot.twod_sipdip_dport),
    ]
    .into_iter()
    .map(|(name, grid)| SketchHealth::measure(name, grid, threshold))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HiFindConfig;
    use crate::pipeline::HiFind;
    use hifind_flow::{Ip4, Packet};

    fn run_small_flood() -> RunReport {
        let cfg = HiFindConfig::small(11);
        let threshold = cfg.interval_threshold();
        let interval_ms = cfg.interval_ms;
        let mut ids = HiFind::new(cfg).unwrap();
        let mut report = RunReport::new();
        let victim: Ip4 = [129, 105, 0, 1].into();
        for iv in 0..4u64 {
            for i in 0..200u32 {
                ids.record(&Packet::syn(
                    iv * interval_ms + i as u64,
                    Ip4::new(0x5000_0000 + i),
                    2000,
                    victim,
                    80,
                ));
            }
            let (outcome, snapshot) = ids.end_interval_with_snapshot();
            report.record_interval(&outcome, &snapshot, threshold);
        }
        report
    }

    #[test]
    fn report_collects_per_interval_records() {
        let report = run_small_flood();
        assert_eq!(report.intervals.len(), 4);
        assert_eq!(report.syn_total, 800);
        assert_eq!(report.phase_latency.total.count, 4);
        // Phase timings are measured, not defaulted: every interval took
        // nonzero total time, and sub-phases sum to no more than the total.
        for iv in &report.intervals {
            assert!(iv.phase_ns.total > 0);
            let parts = iv.phase_ns.forecast
                + iv.phase_ns.detect
                + iv.phase_ns.classify
                + iv.phase_ns.flood_filter;
            assert!(parts <= iv.phase_ns.total, "{:?}", iv.phase_ns);
            assert_eq!(iv.sketch_health.len(), 6);
        }
        // A pure-SYN flood leaves the sketches visibly occupied.
        let last = report.intervals.last().unwrap();
        let rs = &last.sketch_health[0];
        assert!(rs.grid.mean_occupancy > 0.0);
    }

    #[test]
    fn report_serde_round_trip() {
        let report = run_small_flood();
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn latency_histogram_buckets_and_stats() {
        let mut h = LatencyHistogram::default();
        h.observe(500); // below first bound (1µs)
        h.observe(1_000); // on the boundary: counts into the 1µs bucket
        h.observe(3_000_000); // 3ms
        assert_eq!(h.count, 3);
        assert_eq!(h.min_ns, 500);
        assert_eq!(h.max_ns, 3_000_000);
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts.iter().sum::<u64>(), 3);
        assert_eq!(h.mean_ns(), (500 + 1_000 + 3_000_000) / 3);
    }

    #[test]
    fn empty_report_summarizes_without_panic() {
        let text = RunReport::new().summary_text();
        assert!(text.contains("0 intervals"));
    }

    #[test]
    fn latency_quantiles_walk_the_buckets() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.quantile_ns(0.5), None, "empty histogram has no quantiles");
        // 98 fast observations in the first bucket, 2 slow outliers.
        for _ in 0..98 {
            h.observe(800);
        }
        h.observe(3_000_000);
        h.observe(9_000_000);
        // p50/p95 land in the first bucket; its 1µs bound is tightened
        // to nothing below min_ns.
        assert_eq!(h.quantile_ns(0.50), Some(1_000));
        assert_eq!(h.quantile_ns(0.95), Some(1_000));
        // p99 reaches the outliers' bucket (bound 4.096ms).
        assert_eq!(h.quantile_ns(0.99), Some(4_096_000));
        // p100's bucket bound (16.4ms) is tightened to the true max.
        assert_eq!(h.quantile_ns(1.0), Some(9_000_000));
        // A single observation pins every quantile to its own bucket,
        // clamped to the true extreme.
        let mut one = LatencyHistogram::default();
        one.observe(500);
        assert_eq!(one.quantile_ns(0.5), Some(500));
    }

    #[test]
    fn summary_text_reports_tail_latencies() {
        let report = run_small_flood();
        let text = report.summary_text();
        assert!(text.contains("p50"), "{text}");
        assert!(text.contains("p95"), "{text}");
        assert!(text.contains("p99"), "{text}");
    }
}
