//! # HiFIND — a DoS-resilient flow-level IDS for high-speed networks
//!
//! A from-scratch implementation of *"A DoS Resilient Flow-level Intrusion
//! Detection Approach for High-speed Networks"* (Gao, Li & Chen, ICDCS
//! 2006). HiFIND records traffic in a small, fixed set of sketches —
//! never per-flow state — and detects TCP SYN flooding and horizontal /
//! vertical port scans from EWMA forecast errors over those sketches.
//!
//! ## Architecture (paper Figure 2)
//!
//! ```text
//! packets ─▶ SketchRecorder ─▶ per-interval snapshots ─▶ GridEwma ─▶
//!   forecast-error grids ─▶ reversible-sketch INFERENCE (3 steps) ─▶
//!   raw alerts ─▶ 2D-sketch classification (phase 2) ─▶
//!   FP heuristics (phase 3) ─▶ final alerts
//! ```
//!
//! * [`recorder::SketchRecorder`] — the per-packet data plane: three
//!   reversible sketches ({SIP,Dport}, {DIP,Dport}, {SIP,DIP}, value
//!   `#SYN − #SYN/ACK`), one k-ary sketch ({DIP,Dport}, value `#SYN`) and
//!   two 2D sketches ({SIP,Dport}×{DIP}, {SIP,DIP}×{Dport}).
//! * [`detector`] — the three-step flow-level detection algorithm (§3.3).
//! * [`classify`] — intrusion classification with the 2D sketches (§4).
//! * [`fp_filter`] — SYN-flooding false-positive reduction (§3.4).
//! * [`pipeline::HiFind`] — everything wired together, one call per
//!   interval; [`pipeline::HiFind::run_trace`] for offline traces.
//! * [`aggregate`] — multi-router sketch aggregation (§3.1, Figure 3).
//! * [`metrics`] — the Table 9 memory model and §5.5.2 access counts.
//! * [`evaluate`] — alert ↔ ground-truth scoring for experiments.
//! * [`postprocess`] — block-scan correlation across alerts.
//! * [`mitigate`] — per-attack-type countermeasure planning (§1's "attack
//!   root cause analysis for mitigation").
//!
//! ## Quickstart
//!
//! ```
//! use hifind::{HiFind, HiFindConfig};
//! use hifind_flow::{Packet, Trace};
//!
//! // A tiny trace: two quiet minutes, then a scanner probing many
//! // addresses on port 445 (a *change* against the forecast).
//! let mut trace = Trace::new();
//! for minute in 0..3u64 {
//!     let client = [9, 9, 9, 9].into();
//!     trace.push(Packet::syn(minute * 60_000, client, 4000, [10, 0, 0, 1].into(), 80));
//!     trace.push(Packet::syn_ack(minute * 60_000 + 5, client, 4000, [10, 0, 0, 1].into(), 80));
//!     if minute == 2 {
//!         for i in 0..200u32 {
//!             let dst = [10, 0, (i >> 8) as u8, i as u8].into();
//!             trace.push(Packet::syn(
//!                 minute * 60_000 + 10 + i as u64 * 250,
//!                 [6, 6, 6, 6].into(), 2000, dst, 445,
//!             ));
//!         }
//!     }
//! }
//! let mut ids = HiFind::new(HiFindConfig::paper(7)).unwrap();
//! let log = ids.run_trace(&trace);
//! assert!(log.final_alerts().iter().any(|a| a.kind.is_scan()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod classify;
pub mod config;
pub mod detector;
pub mod evaluate;
pub mod fp_filter;
pub mod metrics;
pub mod mitigate;
pub mod parallel;
pub mod pipeline;
pub mod plan;
pub mod postprocess;
pub mod recorder;
pub mod report;
pub mod run_report;
#[cfg(feature = "telemetry")]
pub mod telemetry_ext;

pub use aggregate::HiFindAggregator;
pub use config::HiFindConfig;
pub use evaluate::{evaluate, EvalSummary};
pub use mitigate::{plan as mitigation_plan, Action, MitigationPolicy};
pub use parallel::{MergeStats, ParallelError, ParallelRecorder};
pub use pipeline::{CoreCheckpoint, DetectionCore, HiFind, IntervalOutcome};
pub use plan::{HashPlan, PlanBatch};
pub use postprocess::{correlate_block_scans, BlockScanReport};
pub use recorder::{IntervalSnapshot, SketchRecorder};
pub use report::{Alert, AlertKind, AlertLog, Phase};
pub use run_report::{IntervalReport, PhaseAlertCounts, PhaseNanos, RunReport};

/// The live-metrics crate, re-exported so downstream users of
/// [`HiFind::attach_telemetry`] (the CLI, the bench harness) can name
/// [`hifind_telemetry::Registry`] without a direct dependency.
#[cfg(feature = "telemetry")]
pub use hifind_telemetry as telemetry;
