//! Sharded parallel record plane.
//!
//! The paper's COMBINE primitive (§3.1) makes sketches linear: counter
//! grids recorded independently sum to exactly the grid a single recorder
//! would have produced, Bloom filters union bitwise, and the scalar
//! counters add. [`ParallelRecorder`] exploits that for multi-core
//! recording: `N` worker threads each own a private [`SketchRecorder`]
//! built from the *same* configuration (identical seeds, identical
//! fingerprint), packets are dealt to the workers in bounded batches, and
//! at interval close the per-worker snapshots are merged with
//! [`IntervalSnapshot::combine_into`]. Because integer addition is
//! commutative and associative, the merged snapshot is **bit-for-bit
//! identical** to the serial recorder's snapshot for any packet
//! partition — which partition a packet lands in never matters.
//!
//! The cumulative active-service Bloom filter stays correct for the same
//! reason: each worker's filter persists across intervals (snapshots never
//! clear it), and the union of the per-worker filters equals the filter a
//! serial recorder would hold, since all workers hash with the same seeds.
//!
//! Plumbing rules (enforced by `cargo xtask lint`): every channel is a
//! *bounded* [`std::sync::mpsc::sync_channel`], so a slow worker
//! back-pressures the feeder instead of queueing unbounded memory, and
//! every spawned thread is joined — [`ParallelRecorder::finish`] or `Drop`
//! closes the job channels and joins all workers.

use crate::config::HiFindConfig;
use crate::recorder::{IntervalSnapshot, SketchRecorder};
use hifind_flow::Packet;
use hifind_sketch::SketchError;
use std::fmt;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;
use std::time::Instant;

#[cfg(feature = "telemetry")]
use hifind_telemetry::{exponential_buckets, Counter, Gauge, Histogram, Registry, TelemetryError};
#[cfg(feature = "telemetry")]
use std::sync::Arc;

/// Packets per batch shipped to a worker. Large enough that channel
/// synchronization amortizes to well under a nanosecond per packet, small
/// enough that an interval's tail flush stays cheap.
const BATCH_SIZE: usize = 1024;

/// Batches a worker may have in flight before the feeder blocks.
const CHANNEL_BOUND: usize = 8;

/// Errors from the parallel record plane.
#[derive(Debug)]
pub enum ParallelError {
    /// Building a shard's recorder failed (invalid sketch configuration).
    Build(SketchError),
    /// The OS refused to spawn a shard worker thread.
    Spawn(std::io::Error),
    /// A shard worker exited before delivering its interval snapshot (it
    /// panicked or its channel closed); recorded data for the interval is
    /// incomplete and the recorder should be discarded.
    WorkerLost {
        /// Index of the lost shard worker.
        worker: usize,
    },
    /// Shard snapshots refused to combine. Impossible for shards built
    /// from one configuration; surfaced instead of panicking.
    Merge(SketchError),
}

impl fmt::Display for ParallelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelError::Build(e) => write!(f, "building shard recorder: {e}"),
            ParallelError::Spawn(e) => write!(f, "spawning shard worker: {e}"),
            ParallelError::WorkerLost { worker } => {
                write!(f, "shard worker {worker} exited before interval close")
            }
            ParallelError::Merge(e) => write!(f, "merging shard snapshots: {e}"),
        }
    }
}

impl std::error::Error for ParallelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParallelError::Build(e) | ParallelError::Merge(e) => Some(e),
            ParallelError::Spawn(e) => Some(e),
            ParallelError::WorkerLost { .. } => None,
        }
    }
}

impl From<SketchError> for ParallelError {
    fn from(e: SketchError) -> Self {
        ParallelError::Build(e)
    }
}

/// Per-phase breakdown of one interval close, from
/// [`ParallelRecorder::end_interval_with_stats`].
///
/// The close has two phases: *drain* (wait for each shard to finish its
/// queued batches and ship its snapshot) and *combine* (fold every shard
/// snapshot into one with the cache-blocked
/// [`IntervalSnapshot::combine_many`]). The bench's merge tables are built
/// from these numbers instead of a single opaque merge time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MergeStats {
    /// Nanoseconds spent waiting for + receiving each shard's snapshot, in
    /// shard order. Dominated by the slowest shard's queued work; receives
    /// after the first mostly measure channel latency.
    pub recv_ns: Vec<u64>,
    /// Nanoseconds in the single cache-blocked combine of all snapshots.
    pub combine_ns: u64,
    /// Counter bytes the combine touched: every source grid read once
    /// plus the destination read and written once, summed over all grids
    /// (see [`IntervalSnapshot::combine_many`]).
    pub combine_bytes: u64,
}

impl MergeStats {
    /// Total nanoseconds waiting on shard snapshots (the drain phase).
    #[must_use]
    pub fn recv_total_ns(&self) -> u64 {
        self.recv_ns.iter().sum()
    }
}

/// Work shipped to a shard worker.
enum Job {
    /// Record these packets.
    Batch(Vec<Packet>),
    /// Close the interval: send back the shard's snapshot.
    EndInterval,
}

struct Shard {
    /// `None` once the channel is closed for shutdown.
    job_tx: Option<SyncSender<Job>>,
    snap_rx: Receiver<IntervalSnapshot>,
    handle: Option<JoinHandle<()>>,
    /// Packets accumulated for this shard's next batch.
    batch: Vec<Packet>,
}

/// Metric handles for the `hifind_record_*` shard/merge metrics, plus the
/// locally-batched counts that keep the record path free of atomics.
#[cfg(feature = "telemetry")]
struct RecordTelemetry {
    workers: Arc<Gauge>,
    shard_packets: Arc<Counter>,
    shard_batches: Arc<Counter>,
    merges: Arc<Counter>,
    merge_seconds: Arc<Histogram>,
    pending_packets: u64,
    pending_batches: u64,
}

/// A record plane sharded over worker threads; drop-in equivalent of a
/// single [`SketchRecorder`] with bit-identical snapshots.
///
/// ```
/// use hifind::parallel::ParallelRecorder;
/// use hifind::{HiFindConfig, SketchRecorder};
/// use hifind_flow::{Ip4, Packet};
///
/// let cfg = HiFindConfig::small(7);
/// let mut serial = SketchRecorder::new(&cfg).unwrap();
/// let mut sharded = ParallelRecorder::new(&cfg, 3).unwrap();
/// for i in 0..1000u64 {
///     let p = Packet::syn(i, Ip4::new(i as u32), 999, [129, 105, 0, 1].into(), 80);
///     serial.record(&p);
///     sharded.record(&p);
/// }
/// assert_eq!(sharded.end_interval().unwrap(), serial.take_snapshot());
/// sharded.finish().unwrap();
/// ```
pub struct ParallelRecorder {
    shards: Vec<Shard>,
    /// Shard receiving the batch currently being filled.
    next: usize,
    batch_size: usize,
    fingerprint: u64,
    /// First worker whose channel broke during recording, surfaced at
    /// interval close (the per-packet path stays infallible).
    lost: Option<usize>,
    #[cfg(feature = "telemetry")]
    telemetry: Option<RecordTelemetry>,
}

impl fmt::Debug for ParallelRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParallelRecorder")
            .field("workers", &self.shards.len())
            .field("batch_size", &self.batch_size)
            .finish_non_exhaustive()
    }
}

impl ParallelRecorder {
    /// Builds a record plane sharded over `workers` threads (clamped to at
    /// least 1). All shards are built from `cfg`, so they share seeds and
    /// the snapshot fingerprint.
    ///
    /// # Errors
    ///
    /// [`ParallelError::Build`] for invalid sketch configurations,
    /// [`ParallelError::Spawn`] if a worker thread cannot be spawned.
    pub fn new(cfg: &HiFindConfig, workers: usize) -> Result<Self, ParallelError> {
        Self::with_batch_size(cfg, workers, BATCH_SIZE)
    }

    /// [`ParallelRecorder::new`] with an explicit batch size (smaller
    /// batches shrink the interval-tail flush at the cost of more channel
    /// synchronization; exposed for benches and tests).
    pub fn with_batch_size(
        cfg: &HiFindConfig,
        workers: usize,
        batch_size: usize,
    ) -> Result<Self, ParallelError> {
        let workers = workers.max(1);
        let batch_size = batch_size.max(1);
        let fingerprint = cfg.fingerprint();
        let mut shards = Vec::with_capacity(workers);
        for i in 0..workers {
            let recorder = SketchRecorder::new(cfg)?;
            let (job_tx, job_rx) = sync_channel::<Job>(CHANNEL_BOUND);
            // Bound 1 suffices: each worker owes at most one snapshot at a
            // time, and the coordinator drains them every interval.
            let (snap_tx, snap_rx) = sync_channel::<IntervalSnapshot>(1);
            let handle = std::thread::Builder::new()
                .name(format!("hifind-record-{i}"))
                .spawn(move || shard_loop(recorder, job_rx, snap_tx))
                .map_err(ParallelError::Spawn)?;
            shards.push(Shard {
                job_tx: Some(job_tx),
                snap_rx,
                handle: Some(handle),
                batch: Vec::with_capacity(batch_size),
            });
        }
        Ok(ParallelRecorder {
            shards,
            next: 0,
            batch_size,
            fingerprint,
            lost: None,
            #[cfg(feature = "telemetry")]
            telemetry: None,
        })
    }

    /// Number of shard worker threads.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// The record-plane configuration fingerprint stamped on snapshots.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Records one packet (the hot path): appends to the current shard's
    /// batch and ships the batch when full. Infallible like
    /// [`SketchRecorder::record`]; a broken worker channel is remembered
    /// and surfaced by [`ParallelRecorder::end_interval`].
    #[inline]
    pub fn record(&mut self, packet: &Packet) {
        let shard = self.next;
        self.shards[shard].batch.push(*packet);
        if self.shards[shard].batch.len() >= self.batch_size {
            self.dispatch(shard);
            self.next = (shard + 1) % self.shards.len();
        }
    }

    /// Ships shard `i`'s accumulated batch to its worker.
    fn dispatch(&mut self, i: usize) {
        let batch_size = self.batch_size;
        let shard = &mut self.shards[i];
        if shard.batch.is_empty() {
            return;
        }
        let batch = std::mem::replace(&mut shard.batch, Vec::with_capacity(batch_size));
        #[cfg(feature = "telemetry")]
        if let Some(t) = &mut self.telemetry {
            t.pending_packets += batch.len() as u64;
            t.pending_batches += 1;
        }
        let sent = match &self.shards[i].job_tx {
            Some(tx) => tx.send(Job::Batch(batch)).is_ok(),
            None => false,
        };
        if !sent && self.lost.is_none() {
            self.lost = Some(i);
        }
    }

    /// Closes the interval: flushes partial batches, collects every
    /// shard's [`IntervalSnapshot`] and merges them by sketch linearity.
    /// The result is bit-identical to what a serial [`SketchRecorder`]
    /// fed the same packets would return from `take_snapshot`.
    ///
    /// # Errors
    ///
    /// [`ParallelError::WorkerLost`] if a shard worker died (the interval
    /// is incomplete — discard the recorder); [`ParallelError::Merge`] on
    /// snapshot mismatch, which same-config shards cannot produce.
    pub fn end_interval(&mut self) -> Result<IntervalSnapshot, ParallelError> {
        self.end_interval_with_stats().map(|(snap, _)| snap)
    }

    /// [`ParallelRecorder::end_interval`] with the per-phase
    /// [`MergeStats`] breakdown (shard drain vs combine, bytes touched).
    ///
    /// All shard snapshots are collected first and then folded in **one**
    /// cache-blocked [`IntervalSnapshot::combine_many`] pass — each
    /// destination tile is loaded once and every shard's tile added into
    /// it, rather than streaming the full destination through cache once
    /// per shard as pairwise merging would.
    ///
    /// # Errors
    ///
    /// As for [`ParallelRecorder::end_interval`].
    pub fn end_interval_with_stats(
        &mut self,
    ) -> Result<(IntervalSnapshot, MergeStats), ParallelError> {
        for i in 0..self.shards.len() {
            self.dispatch(i);
        }
        for shard in &self.shards {
            if let Some(tx) = &shard.job_tx {
                // A send failure means the worker is gone; the recv below
                // reports it with the worker's index.
                let _ = tx.send(Job::EndInterval);
            }
        }
        #[cfg(feature = "telemetry")]
        let merge_start = self.telemetry.as_ref().map(|_| Instant::now());
        let mut stats = MergeStats {
            recv_ns: Vec::with_capacity(self.shards.len()),
            ..MergeStats::default()
        };
        let mut snaps: Vec<IntervalSnapshot> = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let wait = Instant::now();
            let snap = shard
                .snap_rx
                .recv()
                .map_err(|_| ParallelError::WorkerLost { worker: i })?;
            stats.recv_ns.push(wait.elapsed().as_nanos() as u64);
            snaps.push(snap);
        }
        if let Some(worker) = self.lost {
            return Err(ParallelError::WorkerLost { worker });
        }
        let combine_start = Instant::now();
        let (first, rest) = snaps
            .split_first_mut()
            .ok_or(ParallelError::WorkerLost { worker: 0 })?;
        let sources: Vec<&IntervalSnapshot> = rest.iter().collect();
        stats.combine_bytes = first.combine_many(&sources).map_err(ParallelError::Merge)?;
        stats.combine_ns = combine_start.elapsed().as_nanos() as u64;
        let merged = snaps.swap_remove(0);
        #[cfg(feature = "telemetry")]
        if let Some(t) = &mut self.telemetry {
            t.shard_packets.add(std::mem::take(&mut t.pending_packets));
            t.shard_batches.add(std::mem::take(&mut t.pending_batches));
            t.merges.inc();
            if let Some(start) = merge_start {
                t.merge_seconds.observe_duration(start.elapsed());
            }
        }
        Ok((merged, stats))
    }

    /// Registers the `hifind_record_*` shard/merge metrics in `registry`
    /// and starts publishing into them: a worker-count gauge, dispatched
    /// packet/batch counters, and an interval-close merge-latency
    /// histogram. Counts batch locally and flush once per interval, so
    /// the record path pays no atomics.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::KindMismatch`] if a metric name is
    /// already registered under a different kind; the recorder keeps
    /// running uninstrumented.
    #[cfg(feature = "telemetry")]
    pub fn attach_telemetry(&mut self, registry: &Registry) -> Result<(), TelemetryError> {
        let t = RecordTelemetry {
            workers: registry.gauge(
                "hifind_record_workers",
                "Shard worker threads in the parallel record plane",
            )?,
            shard_packets: registry.counter(
                "hifind_record_shard_packets_total",
                "Packets dispatched to shard workers",
            )?,
            shard_batches: registry.counter(
                "hifind_record_shard_batches_total",
                "Packet batches dispatched to shard workers",
            )?,
            merges: registry
                .counter("hifind_record_merges_total", "Interval-close shard merges")?,
            merge_seconds: registry.histogram(
                "hifind_record_merge_seconds",
                "Interval-close drain-and-merge latency across shards",
                exponential_buckets(1e-6, 4.0, 13),
            )?,
            pending_packets: 0,
            pending_batches: 0,
        };
        t.workers.set(self.shards.len() as i64);
        self.telemetry = Some(t);
        Ok(())
    }

    /// Stops publishing shard/merge metrics (registered metrics remain in
    /// the registry at their last values).
    #[cfg(feature = "telemetry")]
    pub fn detach_telemetry(&mut self) {
        self.telemetry = None;
    }

    /// Shuts the plane down: closes every job channel and joins every
    /// worker thread.
    ///
    /// # Errors
    ///
    /// [`ParallelError::WorkerLost`] if any worker had died or panicked;
    /// all threads are joined either way.
    pub fn finish(mut self) -> Result<(), ParallelError> {
        match self.shutdown() {
            Some(worker) => Err(ParallelError::WorkerLost { worker }),
            None => Ok(()),
        }
    }

    /// Closes channels, joins all workers; returns the first lost worker.
    fn shutdown(&mut self) -> Option<usize> {
        let mut lost = self.lost;
        for shard in &mut self.shards {
            // Dropping the sender closes the channel; the worker's recv
            // loop ends and the thread exits.
            shard.job_tx = None;
        }
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if let Some(handle) = shard.handle.take() {
                if handle.join().is_err() && lost.is_none() {
                    lost = Some(i);
                }
            }
        }
        lost
    }
}

impl Drop for ParallelRecorder {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

/// A shard worker: records batches into its private recorder and answers
/// `EndInterval` with a snapshot. Exits when the job channel closes (or
/// the snapshot channel does, meaning the coordinator is gone).
fn shard_loop(
    mut recorder: SketchRecorder,
    jobs: Receiver<Job>,
    snapshots: SyncSender<IntervalSnapshot>,
) {
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Batch(packets) => {
                // Batched SIMD record path; bit-identical to per-packet
                // `record` (see `SketchRecorder::record_all`).
                recorder.record_all(&packets);
            }
            Job::EndInterval => {
                if snapshots.send(recorder.take_snapshot()).is_err() {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind_flow::rng::SplitMix64;
    use hifind_flow::Ip4;

    fn cfg() -> HiFindConfig {
        HiFindConfig::small(5)
    }

    fn mixed_packets(n: usize, seed: u64) -> Vec<Packet> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|i| {
                let c = Ip4::new(rng.next_u32());
                let s = Ip4::new(0x8169_0000 | (rng.next_u32() & 0xFF));
                let port = 1 + (rng.next_u32() & 0x3FF) as u16;
                match rng.below(5) {
                    0 => Packet::syn_ack(i as u64, c, 999, s, port),
                    1 => Packet::fin(i as u64, c, 999, s, port),
                    2 => Packet::rst(i as u64, c, 999, s, port),
                    _ => Packet::syn(i as u64, c, 999, s, port),
                }
            })
            .collect()
    }

    #[test]
    fn merged_snapshot_is_bit_identical_to_serial() {
        let config = cfg();
        let pkts = mixed_packets(5000, 42);
        for w in [1usize, 2, 4, 7] {
            // Fresh serial recorder per worker count: the active-service
            // Bloom filter is cumulative, so a shared one would drift.
            let mut serial = SketchRecorder::new(&config).unwrap();
            let mut par = ParallelRecorder::with_batch_size(&config, w, 64).unwrap();
            for p in &pkts {
                serial.record(p);
                par.record(p);
            }
            assert_eq!(
                par.end_interval().unwrap(),
                serial.take_snapshot(),
                "divergence at {w} workers"
            );
            par.finish().unwrap();
        }
    }

    #[test]
    fn bloom_stays_cumulative_across_intervals() {
        // A SYN/ACK learned in interval 0 must still be present in a
        // later interval's merged snapshot, exactly as on the serial path.
        let config = cfg();
        let mut serial = SketchRecorder::new(&config).unwrap();
        let mut par = ParallelRecorder::with_batch_size(&config, 3, 16).unwrap();
        let pkts0 = mixed_packets(500, 7);
        let pkts1 = mixed_packets(500, 8);
        for p in &pkts0 {
            serial.record(p);
            par.record(p);
        }
        assert_eq!(par.end_interval().unwrap(), serial.take_snapshot());
        for p in &pkts1 {
            serial.record(p);
            par.record(p);
        }
        let s = serial.take_snapshot();
        let m = par.end_interval().unwrap();
        assert_eq!(m.active_services, s.active_services);
        assert_eq!(m, s);
        par.finish().unwrap();
    }

    #[test]
    fn stats_variant_returns_same_snapshot_plus_phase_breakdown() {
        let config = cfg();
        let mut serial = SketchRecorder::new(&config).unwrap();
        let mut par = ParallelRecorder::with_batch_size(&config, 3, 32).unwrap();
        for p in &mixed_packets(1500, 11) {
            serial.record(p);
            par.record(p);
        }
        let (snap, stats) = par.end_interval_with_stats().unwrap();
        assert_eq!(snap, serial.take_snapshot());
        assert_eq!(stats.recv_ns.len(), 3);
        assert!(stats.recv_total_ns() > 0);
        // 2 sources folded into the first shard's snapshot.
        assert!(stats.combine_bytes > 0);
        par.finish().unwrap();
    }

    #[test]
    fn empty_and_single_packet_intervals() {
        let config = cfg();
        let mut serial = SketchRecorder::new(&config).unwrap();
        let mut par = ParallelRecorder::new(&config, 4).unwrap();
        assert_eq!(par.end_interval().unwrap(), serial.take_snapshot());
        let p = Packet::syn(0, [1, 2, 3, 4].into(), 999, [129, 105, 0, 1].into(), 80);
        serial.record(&p);
        par.record(&p);
        assert_eq!(par.end_interval().unwrap(), serial.take_snapshot());
        par.finish().unwrap();
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let par = ParallelRecorder::new(&cfg(), 0).unwrap();
        assert_eq!(par.workers(), 1);
        par.finish().unwrap();
    }

    #[test]
    fn finish_joins_cleanly_with_data_in_flight() {
        let mut par = ParallelRecorder::with_batch_size(&cfg(), 2, 8).unwrap();
        for p in &mixed_packets(100, 9) {
            par.record(p);
        }
        // Unflushed batches are dropped by design; finish must still join.
        par.finish().unwrap();
    }
}
