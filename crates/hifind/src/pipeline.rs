//! The assembled HiFIND system (paper Figure 2).

use crate::classify::{classify, ClassifiedDetections};
use crate::config::HiFindConfig;
use crate::detector::{Detector, ErrorGrids};
use crate::fp_filter::{FloodFpFilter, FloodStreak};
use crate::parallel::{ParallelError, ParallelRecorder};
use crate::recorder::{IntervalSnapshot, SketchRecorder};
use crate::report::{Alert, AlertLog, Phase};
use crate::run_report::PhaseNanos;
use hifind_flow::Trace;
use hifind_forecast::{ErrorStats, GridEwma, GridEwmaState, GridForecaster};
use hifind_sketch::SketchError;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The interval-level detection engine: forecasting, three-step detection,
/// 2D classification, and flooding heuristics, fed one
/// [`IntervalSnapshot`] per interval.
///
/// [`HiFind`] wraps it with a recorder for the single-router case;
/// [`crate::HiFindAggregator`] feeds it combined snapshots from many
/// routers.
#[derive(Clone, Debug)]
pub struct DetectionCore {
    detector: Detector,
    forecasters: [GridEwma; 6],
    flood_filter: FloodFpFilter,
    log: AlertLog,
    interval: u64,
}

/// What one interval produced at each phase.
#[derive(Clone, Debug, Default)]
pub struct IntervalOutcome {
    /// Interval index.
    pub interval: u64,
    /// Phase-1 raw alerts.
    pub raw: Vec<Alert>,
    /// Phase-2 survivors (scan FPs removed).
    pub classified: Vec<Alert>,
    /// Phase-3 final alerts.
    pub fin: Vec<Alert>,
    /// Scan candidates phase 2 reclassified as flooding-like.
    pub reclassified: Vec<Alert>,
    /// Wall time spent in each phase (per-interval, measured with
    /// `std::time`; feeds [`crate::RunReport`]).
    pub phase_ns: PhaseNanos,
    /// Forecast-error magnitudes for the three primary reversible-sketch
    /// grids (`{SIP,Dport}`, `{DIP,Dport}`, `{SIP,DIP}`); empty during
    /// warm-up.
    pub forecast_error: Vec<ErrorStats>,
}

impl DetectionCore {
    /// Builds the engine.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the sketch constructors, and
    /// rejects configurations failing [`HiFindConfig::validate`].
    pub fn new(cfg: HiFindConfig) -> Result<Self, SketchError> {
        cfg.validate().map_err(SketchError::BadConfig)?;
        let alpha = cfg.ewma_alpha;
        Ok(DetectionCore {
            detector: Detector::new(&cfg)?,
            forecasters: std::array::from_fn(|_| GridEwma::new(alpha)),
            flood_filter: FloodFpFilter::new(),
            log: AlertLog::new(),
            interval: 0,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &HiFindConfig {
        self.detector.config()
    }

    /// Processes one interval's snapshot through all phases.
    pub fn process_snapshot(&mut self, snapshot: &IntervalSnapshot) -> IntervalOutcome {
        let interval = self.interval;
        self.interval += 1;
        let started = Instant::now();
        let mut phase_ns = PhaseNanos::default();
        let errors = [
            self.forecasters[0].step(&snapshot.rs_sip_dport),
            self.forecasters[1].step(&snapshot.rs_sip_dport_verifier),
            self.forecasters[2].step(&snapshot.rs_dip_dport),
            self.forecasters[3].step(&snapshot.rs_dip_dport_verifier),
            self.forecasters[4].step(&snapshot.rs_sip_dip),
            self.forecasters[5].step(&snapshot.rs_sip_dip_verifier),
        ];
        phase_ns.forecast = started.elapsed().as_nanos() as u64;
        let [Some(rs_sip_dport), Some(rs_sip_dport_verifier), Some(rs_dip_dport), Some(rs_dip_dport_verifier), Some(rs_sip_dip), Some(rs_sip_dip_verifier)] =
            errors
        else {
            // Warm-up interval: no forecast yet (paper eq. 1, t = 1).
            phase_ns.total = started.elapsed().as_nanos() as u64;
            return IntervalOutcome {
                interval,
                phase_ns,
                ..IntervalOutcome::default()
            };
        };
        let grids = ErrorGrids {
            rs_sip_dport,
            rs_sip_dport_verifier,
            rs_dip_dport,
            rs_dip_dport_verifier,
            rs_sip_dip,
            rs_sip_dip_verifier,
        };

        let forecast_error = vec![
            ErrorStats::measure(&grids.rs_sip_dport),
            ErrorStats::measure(&grids.rs_dip_dport),
            ErrorStats::measure(&grids.rs_sip_dip),
        ];

        // Phase 1: raw three-step detection.
        let phase_start = Instant::now();
        let raw = self.detector.detect(interval, &grids);
        phase_ns.detect = phase_start.elapsed().as_nanos() as u64;
        for a in raw.all() {
            self.log.record(Phase::Raw, *a);
        }

        // Phase 2: 2D-sketch classification.
        let phase_start = Instant::now();
        let classified: ClassifiedDetections = classify(&self.detector, snapshot, &raw);
        phase_ns.classify = phase_start.elapsed().as_nanos() as u64;
        for a in classified
            .floodings
            .iter()
            .chain(&classified.vscans)
            .chain(&classified.hscans)
        {
            self.log.record(Phase::AfterClassification, *a);
        }

        // Phase 3: flooding heuristics; scans pass through.
        let phase_start = Instant::now();
        let filtered =
            self.flood_filter
                .filter(&self.detector, snapshot, interval, &classified.floodings);
        phase_ns.flood_filter = phase_start.elapsed().as_nanos() as u64;
        let mut fin = filtered.confirmed.clone();
        fin.extend(classified.vscans.iter().copied());
        fin.extend(classified.hscans.iter().copied());
        for a in &fin {
            self.log.record(Phase::Final, *a);
        }

        phase_ns.total = started.elapsed().as_nanos() as u64;
        IntervalOutcome {
            interval,
            raw: raw.all().copied().collect(),
            classified: classified
                .floodings
                .iter()
                .chain(&classified.vscans)
                .chain(&classified.hscans)
                .copied()
                .collect(),
            fin,
            reclassified: classified.reclassified,
            phase_ns,
            forecast_error,
        }
    }

    /// Skips one interval for which no observation exists (a collection
    /// outage): the interval number advances so persistence streaks and
    /// alert timestamps stay aligned with wall-clock intervals, but the
    /// forecasters are **not** stepped — the EWMA baseline freezes at its
    /// pre-outage value instead of being dragged toward zero by synthetic
    /// empty snapshots, so the first real interval after the gap is judged
    /// against the last trusted forecast and raises no spurious alert.
    pub fn process_gap(&mut self) -> IntervalOutcome {
        let interval = self.interval;
        self.interval += 1;
        IntervalOutcome {
            interval,
            ..IntervalOutcome::default()
        }
    }

    /// The deduplicated alert log across all processed intervals.
    pub fn log(&self) -> &AlertLog {
        &self.log
    }

    /// Intervals processed so far.
    pub fn intervals_processed(&self) -> u64 {
        self.interval
    }

    /// Snapshots every piece of cross-interval detection state into a
    /// serializable [`CoreCheckpoint`]. Restoring it with
    /// [`DetectionCore::restore`] under the same configuration resumes the
    /// run exactly: identical future inputs yield identical alerts.
    pub fn checkpoint(&self) -> CoreCheckpoint {
        CoreCheckpoint {
            fingerprint: self.config().fingerprint(),
            interval: self.interval,
            forecasters: self.forecasters.iter().map(GridEwma::state).collect(),
            streaks: self.flood_filter.export_streaks(),
            raw_alerts: self.log.alerts(Phase::Raw).to_vec(),
            classified_alerts: self.log.alerts(Phase::AfterClassification).to_vec(),
            final_alerts: self.log.alerts(Phase::Final).to_vec(),
        }
    }

    /// Rebuilds a core from a checkpoint taken under `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::FingerprintMismatch`] when the checkpoint
    /// was taken under a different record-plane configuration (its
    /// forecasts and streaks would be meaningless against sketches of
    /// another shape/seed), and [`SketchError::BadConfig`] when the
    /// checkpoint's internal state is inconsistent (wrong forecaster
    /// count, malformed EWMA state).
    pub fn restore(cfg: HiFindConfig, ckpt: &CoreCheckpoint) -> Result<Self, SketchError> {
        let expected = cfg.fingerprint();
        if ckpt.fingerprint != expected {
            return Err(SketchError::FingerprintMismatch {
                expected,
                got: ckpt.fingerprint,
            });
        }
        let mut core = DetectionCore::new(cfg)?;
        if ckpt.forecasters.len() != core.forecasters.len() {
            return Err(SketchError::BadConfig(format!(
                "checkpoint holds {} forecaster states, the core needs {}",
                ckpt.forecasters.len(),
                core.forecasters.len()
            )));
        }
        for (slot, state) in core.forecasters.iter_mut().zip(&ckpt.forecasters) {
            *slot = GridEwma::from_state(state.clone()).map_err(SketchError::BadConfig)?;
        }
        core.flood_filter = FloodFpFilter::from_streaks(ckpt.streaks.iter().copied());
        // Replaying through record() rebuilds the dedup indexes the log's
        // serialized form skips; checkpointed lists are already unique per
        // identity, so each replayed alert lands verbatim and in order.
        for a in &ckpt.raw_alerts {
            core.log.record(Phase::Raw, *a);
        }
        for a in &ckpt.classified_alerts {
            core.log.record(Phase::AfterClassification, *a);
        }
        for a in &ckpt.final_alerts {
            core.log.record(Phase::Final, *a);
        }
        core.interval = ckpt.interval;
        Ok(core)
    }
}

/// Everything a [`DetectionCore`] carries across intervals, in a
/// serializable form. Produced by [`DetectionCore::checkpoint`], consumed
/// by [`DetectionCore::restore`]; `crates/collect` wraps it in a
/// versioned, CRC-checked container for on-disk durability.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoreCheckpoint {
    /// Record-plane fingerprint of the configuration the state was built
    /// under ([`HiFindConfig::fingerprint`]); restore refuses a mismatch.
    pub fingerprint: u64,
    /// Intervals processed when the checkpoint was taken.
    pub interval: u64,
    /// State of the six reversible-sketch grid forecasters, in
    /// [`DetectionCore::process_snapshot`] order.
    pub forecasters: Vec<GridEwmaState>,
    /// In-flight flooding persistence streaks, sorted by identity.
    pub streaks: Vec<FloodStreak>,
    /// Deduplicated phase-1 alerts.
    pub raw_alerts: Vec<Alert>,
    /// Deduplicated phase-2 alerts.
    pub classified_alerts: Vec<Alert>,
    /// Deduplicated phase-3 (final) alerts.
    pub final_alerts: Vec<Alert>,
}

/// The complete single-router HiFIND system: recorder + detection engine.
///
/// See the [crate-level example](crate) for usage; the data-plane
/// operation is [`HiFind::record`], and [`HiFind::end_interval`] runs the
/// background detection once per interval. For live streams where the
/// caller does not want to manage interval boundaries,
/// [`HiFind::record_streaming`] rolls intervals over automatically from
/// packet timestamps.
#[derive(Clone, Debug)]
pub struct HiFind {
    recorder: SketchRecorder,
    core: DetectionCore,
    /// Start of the current streaming interval (None until first packet).
    stream_window_start: Option<u64>,
    /// Live metrics publisher (attached via [`HiFind::attach_telemetry`]).
    #[cfg(feature = "telemetry")]
    telemetry: Option<crate::telemetry_ext::PipelineTelemetry>,
}

impl HiFind {
    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn new(cfg: HiFindConfig) -> Result<Self, SketchError> {
        Ok(HiFind {
            recorder: SketchRecorder::new(&cfg)?,
            core: DetectionCore::new(cfg)?,
            stream_window_start: None,
            #[cfg(feature = "telemetry")]
            telemetry: None,
        })
    }

    /// Publishes live metrics (packet counts, sampled record latency,
    /// phase latencies, alert counters, sketch-health gauges) into
    /// `registry` from now on.
    ///
    /// # Errors
    ///
    /// Returns [`hifind_telemetry::TelemetryError::KindMismatch`] if a
    /// `hifind_*` metric name already exists in `registry` under another
    /// kind; the pipeline stays uninstrumented and keeps working.
    #[cfg(feature = "telemetry")]
    pub fn attach_telemetry(
        &mut self,
        registry: hifind_telemetry::Registry,
    ) -> Result<(), hifind_telemetry::TelemetryError> {
        self.telemetry = Some(crate::telemetry_ext::PipelineTelemetry::new(registry)?);
        Ok(())
    }

    /// Stops publishing live metrics; recording reverts to the
    /// uninstrumented path. Already-published values stay in the registry.
    #[cfg(feature = "telemetry")]
    pub fn detach_telemetry(&mut self) {
        self.telemetry = None;
    }

    /// The configuration in use.
    pub fn config(&self) -> &HiFindConfig {
        self.core.config()
    }

    /// Records one packet (the per-packet hot path).
    #[inline]
    pub fn record(&mut self, packet: &hifind_flow::Packet) {
        #[cfg(feature = "telemetry")]
        if let Some(t) = &mut self.telemetry {
            t.record_packet(&mut self.recorder, packet);
            return;
        }
        self.recorder.record(packet);
    }

    /// Records a slice of packets through the batched SIMD path
    /// ([`SketchRecorder::record_all`]), bit-identical to per-packet
    /// [`HiFind::record`]. With live telemetry attached it falls back to
    /// the instrumented per-packet path, since that path is what meters
    /// packets into the registry.
    pub fn record_all(&mut self, packets: &[hifind_flow::Packet]) {
        #[cfg(feature = "telemetry")]
        if self.telemetry.is_some() {
            for p in packets {
                self.record(p);
            }
            return;
        }
        self.recorder.record_all(packets);
    }

    /// Ends the current interval: snapshots the sketches and runs the
    /// detection pipeline.
    pub fn end_interval(&mut self) -> IntervalOutcome {
        self.end_interval_with_snapshot().0
    }

    /// Like [`HiFind::end_interval`], but also hands back the interval's
    /// snapshot so callers can inspect it (sketch health, wire size,
    /// [`crate::RunReport::record_interval`]).
    pub fn end_interval_with_snapshot(&mut self) -> (IntervalOutcome, IntervalSnapshot) {
        let snapshot = self.recorder.take_snapshot();
        let outcome = self.core.process_snapshot(&snapshot);
        #[cfg(feature = "telemetry")]
        if let Some(t) = &mut self.telemetry {
            let threshold = self.core.config().interval_threshold();
            t.publish_interval(&outcome, &snapshot, threshold);
        }
        (outcome, snapshot)
    }

    /// Records a packet in *streaming mode*: interval boundaries are
    /// derived from packet timestamps (`config.interval_ms`-wide windows
    /// aligned to the first packet's window). When a packet's timestamp
    /// crosses into a new window, all elapsed intervals are closed first
    /// (including empty ones, so the forecaster ticks uniformly) and their
    /// outcomes returned.
    ///
    /// Packets must arrive in non-decreasing timestamp order; late packets
    /// are counted into the *current* interval rather than dropped.
    pub fn record_streaming(&mut self, packet: &hifind_flow::Packet) -> Vec<IntervalOutcome> {
        let width = self.core.config().interval_ms;
        let window = packet.ts_ms / width;
        let mut outcomes = Vec::new();
        match self.stream_window_start {
            None => self.stream_window_start = Some(window),
            Some(current) if window > current => {
                for _ in current..window {
                    outcomes.push(self.end_interval());
                }
                self.stream_window_start = Some(window);
            }
            Some(_) => {}
        }
        self.recorder.record(packet);
        outcomes
    }

    /// Flushes the in-progress streaming interval (call at end of stream).
    pub fn finish_stream(&mut self) -> Option<IntervalOutcome> {
        self.stream_window_start.take().map(|_| self.end_interval())
    }

    /// Convenience: replays a whole trace with the configured interval
    /// width and returns the final alert log.
    pub fn run_trace(&mut self, trace: &Trace) -> AlertLog {
        let interval_ms = self.core.config().interval_ms;
        for window in trace.intervals(interval_ms) {
            self.record_all(window.packets);
            self.end_interval();
        }
        self.core.log().clone()
    }

    /// Like [`HiFind::run_trace`], but records each interval through a
    /// sharded [`ParallelRecorder`] with `n_workers` worker threads.
    ///
    /// Sketch linearity makes the merged shard snapshots bit-identical to
    /// the serial recorder's, so the returned [`AlertLog`] matches
    /// [`HiFind::run_trace`] exactly; see `docs/PARALLEL_RECORD.md`.
    ///
    /// # Errors
    ///
    /// Returns [`ParallelError`] if the recorder cannot be built or a
    /// worker thread dies mid-run; the detection core keeps whatever
    /// intervals completed before the failure.
    pub fn run_trace_parallel(
        &mut self,
        trace: &Trace,
        n_workers: usize,
    ) -> Result<AlertLog, ParallelError> {
        self.run_trace_parallel_inner(trace, n_workers, None)
            .map(|()| self.core.log().clone())
    }

    /// Like [`HiFind::run_trace_with_report`], on the parallel record
    /// plane. See [`HiFind::run_trace_parallel`].
    ///
    /// # Errors
    ///
    /// Returns [`ParallelError`] on recorder build or worker failure.
    pub fn run_trace_parallel_with_report(
        &mut self,
        trace: &Trace,
        n_workers: usize,
    ) -> Result<(AlertLog, crate::RunReport), ParallelError> {
        let mut report = crate::RunReport::new();
        report.sketch_memory_bytes = self.recorder.memory_bytes();
        self.run_trace_parallel_inner(trace, n_workers, Some(&mut report))?;
        Ok((self.core.log().clone(), report))
    }

    /// Shared driver for the parallel trace runners: shards every interval
    /// across the workers, merges, and feeds the detection core.
    fn run_trace_parallel_inner(
        &mut self,
        trace: &Trace,
        n_workers: usize,
        mut report: Option<&mut crate::RunReport>,
    ) -> Result<(), ParallelError> {
        let interval_ms = self.core.config().interval_ms;
        let threshold = self.core.config().interval_threshold();
        let mut recorder = ParallelRecorder::new(self.core.config(), n_workers)?;
        #[cfg(feature = "telemetry")]
        if let Some(t) = &self.telemetry {
            // Shard/merge gauges live in the same registry as the pipeline
            // metrics; a name clash leaves the recorder uninstrumented but
            // fully functional.
            let _ = recorder.attach_telemetry(t.registry());
        }
        for window in trace.intervals(interval_ms) {
            for p in window.packets {
                recorder.record(p);
            }
            let snapshot = recorder.end_interval()?;
            let outcome = self.core.process_snapshot(&snapshot);
            if let Some(r) = report.as_deref_mut() {
                r.record_interval(&outcome, &snapshot, threshold);
            }
            #[cfg(feature = "telemetry")]
            if let Some(t) = &mut self.telemetry {
                t.publish_interval(&outcome, &snapshot, threshold);
            }
        }
        recorder.finish()
    }

    /// Like [`HiFind::run_trace`], but also builds the machine-readable
    /// [`crate::RunReport`] (per-interval phase latencies, alert counts by
    /// phase, sketch health) that `hifind detect --metrics-json` and the
    /// bench harness both consume.
    pub fn run_trace_with_report(&mut self, trace: &Trace) -> (AlertLog, crate::RunReport) {
        let interval_ms = self.core.config().interval_ms;
        let threshold = self.core.config().interval_threshold();
        let mut report = crate::RunReport::new();
        report.sketch_memory_bytes = self.recorder.memory_bytes();
        for window in trace.intervals(interval_ms) {
            self.record_all(window.packets);
            let (outcome, snapshot) = self.end_interval_with_snapshot();
            report.record_interval(&outcome, &snapshot, threshold);
        }
        (self.core.log().clone(), report)
    }

    /// The deduplicated alert log.
    pub fn log(&self) -> &AlertLog {
        self.core.log()
    }

    /// Borrows the recorder (memory accounting, snapshots).
    pub fn recorder(&self) -> &SketchRecorder {
        &self.recorder
    }

    /// Intervals processed so far.
    pub fn intervals_processed(&self) -> u64 {
        self.core.intervals_processed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::AlertKind;
    use hifind_flow::{Ip4, Packet};

    fn cfg() -> HiFindConfig {
        HiFindConfig::small(40)
    }

    /// Builds a trace where a service is alive in interval 0, then flooded
    /// in intervals 1..4, with background handshakes throughout.
    fn flood_trace(interval_ms: u64) -> (Trace, Ip4) {
        let victim: Ip4 = [129, 105, 0, 1].into();
        let mut t = Trace::new();
        for iv in 0..5u64 {
            let base = iv * interval_ms;
            for i in 0..25u32 {
                let c: Ip4 = [9, 9, 9, (i % 100) as u8].into();
                t.push(Packet::syn(
                    base + i as u64 * 7,
                    c,
                    4000 + i as u16,
                    victim,
                    80,
                ));
                t.push(Packet::syn_ack(
                    base + i as u64 * 7 + 1,
                    c,
                    4000 + i as u16,
                    victim,
                    80,
                ));
            }
            if iv >= 1 {
                for i in 0..300u32 {
                    t.push(Packet::syn(
                        base + 100 + i as u64,
                        Ip4::new(((0x5000_0000 + (iv as u32)) << 20) | i),
                        2000,
                        victim,
                        80,
                    ));
                }
            }
        }
        t.sort_by_time();
        (t, victim)
    }

    #[test]
    fn end_to_end_flood_detection() {
        let config = cfg();
        let (trace, victim) = flood_trace(config.interval_ms);
        let mut ids = HiFind::new(config).unwrap();
        let log = ids.run_trace(&trace);
        let finals = log.final_alerts();
        assert!(
            finals
                .iter()
                .any(|a| a.kind == AlertKind::SynFlooding && a.dip == Some(victim)),
            "final alerts: {finals:?}"
        );
        assert!(ids.intervals_processed() >= 5);
    }

    #[test]
    fn quiet_trace_raises_nothing() {
        let config = cfg();
        let mut t = Trace::new();
        for iv in 0..4u64 {
            for i in 0..40u32 {
                let c: Ip4 = [9, 9, (i % 3) as u8, (i % 100) as u8].into();
                let s: Ip4 = [129, 105, 0, (i % 5) as u8].into();
                let ts = iv * config.interval_ms + i as u64 * 11;
                t.push(Packet::syn(ts, c, 4000 + i as u16, s, 80));
                t.push(Packet::syn_ack(ts + 1, c, 4000 + i as u16, s, 80));
            }
        }
        t.sort_by_time();
        let mut ids = HiFind::new(config).unwrap();
        let log = ids.run_trace(&t);
        assert!(log.final_alerts().is_empty(), "{:?}", log.final_alerts());
        assert!(log.alerts(Phase::Raw).is_empty());
    }

    #[test]
    fn first_interval_is_warmup() {
        let config = cfg();
        let mut ids = HiFind::new(config).unwrap();
        // Even a blatant flood in interval 0 cannot alert (no forecast).
        for i in 0..500u32 {
            ids.record(&Packet::syn(
                i as u64,
                Ip4::new(0x5000_0000 + i),
                2000,
                [129, 105, 0, 1].into(),
                80,
            ));
        }
        let outcome = ids.end_interval();
        assert!(outcome.raw.is_empty());
        assert_eq!(outcome.interval, 0);
    }

    #[test]
    fn phase_counts_are_monotone_decreasing_for_floodings() {
        let config = cfg();
        let (trace, _) = flood_trace(config.interval_ms);
        let mut ids = HiFind::new(config).unwrap();
        let log = ids.run_trace(&trace);
        let raw = log.count(Phase::Raw, AlertKind::SynFlooding);
        let classified = log.count(Phase::AfterClassification, AlertKind::SynFlooding);
        let fin = log.count(Phase::Final, AlertKind::SynFlooding);
        assert!(raw >= classified);
        assert!(classified >= fin);
        assert!(fin >= 1);
    }

    #[test]
    fn streaming_mode_matches_batch_mode() {
        let config = cfg();
        let (trace, _) = flood_trace(config.interval_ms);

        let mut batch = HiFind::new(config).unwrap();
        let batch_log = batch.run_trace(&trace);

        let mut stream = HiFind::new(config).unwrap();
        for p in trace.iter() {
            stream.record_streaming(p);
        }
        stream.finish_stream();

        assert_eq!(
            batch_log.final_alerts(),
            stream.log().final_alerts(),
            "streaming and batch interval boundaries must agree"
        );
    }

    #[test]
    fn streaming_closes_empty_gap_intervals() {
        let config = cfg();
        let mut ids = HiFind::new(config).unwrap();
        let p1 = Packet::syn(0, [1, 1, 1, 1].into(), 1, [2, 2, 2, 2].into(), 80);
        // Next packet three intervals later: two elapsed + the gap close.
        let p2 = Packet::syn(
            3 * config.interval_ms + 5,
            [1, 1, 1, 1].into(),
            2,
            [2, 2, 2, 2].into(),
            80,
        );
        assert!(ids.record_streaming(&p1).is_empty());
        let outcomes = ids.record_streaming(&p2);
        assert_eq!(outcomes.len(), 3, "intervals 0..3 must all close");
        assert!(ids.finish_stream().is_some());
        assert_eq!(ids.intervals_processed(), 4);
    }

    #[test]
    fn core_can_be_driven_by_snapshots_directly() {
        let config = cfg();
        let mut rec = SketchRecorder::new(&config).unwrap();
        let mut core = DetectionCore::new(config).unwrap();
        for _ in 0..3 {
            let snap = rec.take_snapshot();
            core.process_snapshot(&snap);
        }
        assert_eq!(core.intervals_processed(), 3);
    }

    /// One interval of steady benign traffic into `rec`.
    fn steady_interval(rec: &mut SketchRecorder) -> IntervalSnapshot {
        for i in 0..40u32 {
            let c: Ip4 = [9, 9, (i % 3) as u8, (i % 100) as u8].into();
            let s: Ip4 = [129, 105, 0, (i % 5) as u8].into();
            rec.record(&Packet::syn(i as u64, c, 4000 + i as u16, s, 80));
            rec.record(&Packet::syn_ack(i as u64 + 1, c, 4000 + i as u16, s, 80));
        }
        rec.take_snapshot()
    }

    #[test]
    fn gap_intervals_do_not_pollute_the_forecast() {
        // Regression: a collection outage used to be synthesized as
        // all-zero snapshots through process_snapshot, dragging the EWMA
        // baseline toward zero so the first real interval after the outage
        // spiked the forecast error. A 3-interval outage over steady
        // traffic must raise nothing.
        let config = cfg();
        let mut rec = SketchRecorder::new(&config).unwrap();
        let mut core = DetectionCore::new(config).unwrap();
        for _ in 0..4 {
            let snap = steady_interval(&mut rec);
            core.process_snapshot(&snap);
        }
        for _ in 0..3 {
            let out = core.process_gap();
            assert!(out.raw.is_empty());
        }
        assert_eq!(core.intervals_processed(), 7);
        for _ in 0..3 {
            let snap = steady_interval(&mut rec);
            let out = core.process_snapshot(&snap);
            assert!(
                out.raw.is_empty(),
                "steady traffic after an outage must not alert: {:?}",
                out.raw
            );
        }
        assert_eq!(core.intervals_processed(), 10);
        assert!(core.log().alerts(Phase::Raw).is_empty());
    }

    #[test]
    fn checkpoint_restore_resumes_identically() {
        // Split a flood trace at every interval boundary: processing
        // [0, k) → checkpoint → restore → [k, n) must end with the same
        // alert log as the uninterrupted run.
        let config = cfg();
        let (trace, _) = flood_trace(config.interval_ms);
        let snapshots: Vec<IntervalSnapshot> = {
            let mut rec = SketchRecorder::new(&config).unwrap();
            trace
                .intervals(config.interval_ms)
                .map(|w| {
                    for p in w.packets {
                        rec.record(p);
                    }
                    rec.take_snapshot()
                })
                .collect()
        };
        let mut reference = DetectionCore::new(config).unwrap();
        for s in &snapshots {
            reference.process_snapshot(s);
        }
        assert!(!reference.log().final_alerts().is_empty());
        for k in 0..=snapshots.len() {
            let mut first = DetectionCore::new(config).unwrap();
            for s in &snapshots[..k] {
                first.process_snapshot(s);
            }
            let ckpt = first.checkpoint();
            let mut resumed = DetectionCore::restore(config, &ckpt).unwrap();
            for s in &snapshots[k..] {
                resumed.process_snapshot(s);
            }
            for phase in [Phase::Raw, Phase::AfterClassification, Phase::Final] {
                assert_eq!(
                    reference.log().alerts(phase),
                    resumed.log().alerts(phase),
                    "kill point {k}, {phase:?}"
                );
            }
            assert_eq!(resumed.intervals_processed(), snapshots.len() as u64);
        }
    }

    #[test]
    fn restore_rejects_foreign_fingerprint() {
        let core = DetectionCore::new(cfg()).unwrap();
        let ckpt = core.checkpoint();
        let other = HiFindConfig::small(41);
        assert!(matches!(
            DetectionCore::restore(other, &ckpt),
            Err(SketchError::FingerprintMismatch { .. })
        ));
    }
}
