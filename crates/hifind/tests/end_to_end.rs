//! End-to-end integration tests: generator → recorder → pipeline →
//! evaluation, exercising the public API the way the experiment harness
//! does (at unit-test scale).

use hifind::evaluate::evaluate;
use hifind::{AlertKind, HiFind, HiFindAggregator, HiFindConfig, Phase, SketchRecorder};
use hifind_trafficgen::{presets, split_per_packet, EventClass};

fn test_config() -> HiFindConfig {
    // Paper semantics, paper-sized sketches, one-minute intervals — only
    // the workload is scaled down.
    HiFindConfig::paper(0xE2E)
}

#[test]
fn nu_like_detection_recall_and_phases() {
    let scenario = presets::nu_like(1).scaled(0.012);
    let (trace, truth) = scenario.generate();
    let mut ids = HiFind::new(test_config()).unwrap();
    let log = ids.run_trace(&trace);

    // Phase counts shrink monotonically per kind.
    for kind in [AlertKind::SynFlooding, AlertKind::HScan, AlertKind::VScan] {
        assert!(log.count(Phase::Raw, kind) >= log.count(Phase::AfterClassification, kind));
        assert!(
            log.count(Phase::AfterClassification, kind) >= log.count(Phase::Final, kind)
                || kind.is_scan(), // scans are untouched by phase 3
        );
    }

    let summary = evaluate(log.final_alerts(), &truth);
    assert!(
        summary.flooding.recall() > 0.5,
        "flooding recall too low: {}",
        summary.flooding
    );
    assert!(
        summary.hscan.recall() > 0.4,
        "hscan recall too low: {}",
        summary.hscan
    );
    assert!(
        summary.vscan.recall() > 0.5,
        "vscan recall too low: {}",
        summary.vscan
    );
    // False positives are bounded (the odd congestion episode may survive).
    assert!(
        summary.flooding.false_positives() <= 4,
        "too many flooding FPs: {}",
        summary.flooding
    );
}

#[test]
fn lbl_like_no_flooding_after_phase3() {
    let scenario = presets::lbl_like(2).scaled(0.02);
    let (trace, truth) = scenario.generate();
    assert_eq!(truth.iter().filter(|e| e.class.is_flooding()).count(), 0);
    let mut ids = HiFind::new(test_config()).unwrap();
    let log = ids.run_trace(&trace);
    // The paper's LBL row: raw flooding alerts exist (congestion noise),
    // phase 3 kills them all (or nearly so).
    assert!(
        log.count(Phase::Final, AlertKind::SynFlooding) <= 1,
        "phase 3 must remove benign flooding noise: {:?}",
        log.final_alerts()
    );
    // Scans are still found.
    assert!(log.count(Phase::Final, AlertKind::HScan) >= 5);
}

#[test]
fn aggregated_detection_equals_single_router_on_preset() {
    let cfg = test_config();
    let (trace, _) = presets::nu_like(3).scaled(0.01).generate();

    let mut single = HiFind::new(cfg).unwrap();
    let single_log = single.run_trace(&trace);

    let parts = split_per_packet(&trace, 3, 99);
    let mut routers: Vec<SketchRecorder> =
        (0..3).map(|_| SketchRecorder::new(&cfg).unwrap()).collect();
    let mut site = HiFindAggregator::new(cfg).unwrap();
    let windows: Vec<Vec<_>> = parts
        .iter()
        .map(|t| t.intervals(cfg.interval_ms).collect())
        .collect();
    let n = windows.iter().map(Vec::len).max().unwrap();
    for iv in 0..n {
        let mut snaps = Vec::new();
        for (router, wins) in routers.iter_mut().zip(&windows) {
            if let Some(w) = wins.get(iv) {
                for p in w.packets {
                    router.record(p);
                }
            }
            snaps.push(router.take_snapshot());
        }
        site.process_interval(&snaps).unwrap();
    }

    let mut a: Vec<_> = single_log
        .final_alerts()
        .iter()
        .map(|x| x.identity())
        .collect();
    let mut b: Vec<_> = site
        .log()
        .final_alerts()
        .iter()
        .map(|x| x.identity())
        .collect();
    a.sort();
    b.sort();
    assert_eq!(a, b, "aggregate must equal single-router detection");
}

#[test]
fn snapshots_survive_serialization_between_router_and_site() {
    // Routers ship snapshots over the wire; detection on deserialized
    // snapshots must equal detection on the originals.
    let cfg = test_config();
    let (trace, _) = presets::dos_resilience(4).scaled(0.05).generate();
    let mut recorder = SketchRecorder::new(&cfg).unwrap();
    let mut site_direct = HiFindAggregator::new(cfg).unwrap();
    let mut site_wire = HiFindAggregator::new(cfg).unwrap();
    for window in trace.intervals(cfg.interval_ms) {
        for p in window.packets {
            recorder.record(p);
        }
        let snap = recorder.take_snapshot();
        let wire = serde_json::to_vec(&snap).unwrap();
        let shipped: hifind::IntervalSnapshot = serde_json::from_slice(&wire).unwrap();
        site_direct
            .process_interval(std::slice::from_ref(&snap))
            .unwrap();
        site_wire.process_interval(&[shipped]).unwrap();
    }
    assert_eq!(
        site_direct.log().final_alerts(),
        site_wire.log().final_alerts()
    );
}

#[test]
fn dos_resilience_scan_found_under_spoofed_smokescreen() {
    let (trace, truth) = presets::dos_resilience(5).scaled(0.12).generate();
    let scan = truth.of_class(EventClass::HScan).next().unwrap();
    let mut ids = HiFind::new(test_config()).unwrap();
    let log = ids.run_trace(&trace);
    assert!(
        log.final_alerts()
            .iter()
            .any(|a| a.kind == AlertKind::SynFlooding),
        "the smokescreen flood itself must be reported"
    );
    assert!(
        log.final_alerts()
            .iter()
            .any(|a| a.kind == AlertKind::HScan && a.sip == scan.sip),
        "the real scan must not be masked by the flood: {:?}",
        log.final_alerts()
    );
    // And memory stayed fixed regardless of the spoofed-source count.
    let expected = SketchRecorder::new(&test_config()).unwrap().memory_bytes();
    assert_eq!(ids.recorder().memory_bytes(), expected);
}

#[test]
fn alerts_carry_actionable_mitigation_keys() {
    // The reversible sketch's point: alerts name the culprit flows.
    let (trace, truth) = presets::nu_like(6).scaled(0.012).generate();
    let mut ids = HiFind::new(test_config()).unwrap();
    let log = ids.run_trace(&trace);
    for alert in log.final_alerts() {
        match alert.kind {
            AlertKind::SynFlooding => {
                assert!(alert.dip.is_some() && alert.dport.is_some());
            }
            AlertKind::HScan => {
                assert!(alert.sip.is_some() && alert.dport.is_some());
            }
            AlertKind::VScan => {
                assert!(alert.sip.is_some() && alert.dip.is_some());
            }
        }
    }
    // At least one detected hscan names a real injected attacker.
    let any_named = log
        .final_alerts()
        .iter()
        .filter(|a| a.kind == AlertKind::HScan)
        .any(|a| {
            truth
                .of_class(EventClass::HScan)
                .any(|e| e.sip == a.sip && e.dport == a.dport)
        });
    assert!(any_named);
}
