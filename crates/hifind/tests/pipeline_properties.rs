//! Property-based tests over the assembled pipeline.

use hifind::{HiFind, HiFindConfig, SketchRecorder};
use hifind_flow::rng::SplitMix64;
use hifind_flow::{Ip4, Packet, Trace};
use proptest::prelude::*;

/// Builds a small mixed trace from a seed: benign handshakes plus a flood
/// and a scan with seed-dependent parameters.
fn arb_trace(seed: u64) -> Trace {
    let mut rng = SplitMix64::new(seed);
    let cfg = HiFindConfig::small(0);
    let mut t = Trace::new();
    let victim: Ip4 = [129, 105, 0, 1].into();
    let scanner = Ip4::new(0x4200_0000 | rng.next_u32() & 0xFFFF);
    for iv in 0..4u64 {
        let base = iv * cfg.interval_ms;
        for i in 0..30u32 {
            let c = Ip4::new(0x0C00_0000 | rng.next_u32() & 0xFFFF);
            let ts = base + rng.below(cfg.interval_ms);
            t.push(Packet::syn(ts, c, 4000 + i as u16, victim, 80));
            t.push(Packet::syn_ack(ts + 1, c, 4000 + i as u16, victim, 80));
        }
        if iv >= 2 {
            for i in 0..(120 + rng.below(120) as u32) {
                t.push(Packet::syn(
                    base + rng.below(cfg.interval_ms),
                    Ip4::new(0x5000_0000 + i),
                    2000,
                    victim,
                    80,
                ));
                let dst: Ip4 = [129, 105, (i >> 8) as u8, i as u8].into();
                t.push(Packet::syn(
                    base + rng.below(cfg.interval_ms),
                    scanner,
                    2100,
                    dst,
                    445,
                ));
            }
        }
    }
    t.sort_by_time();
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Detection is invariant to packet order *within* an interval: sketch
    /// updates commute, so shuffling packets inside each window must give
    /// bit-identical alerts.
    #[test]
    fn order_invariance_within_intervals(seed in any::<u64>(), shuffle_seed in any::<u64>()) {
        let cfg = HiFindConfig::small(7);
        let trace = arb_trace(seed);

        let mut ordered = HiFind::new(cfg).unwrap();
        let ordered_log = ordered.run_trace(&trace);

        // Shuffle within each interval, keeping interval membership.
        let mut rng = SplitMix64::new(shuffle_seed);
        let mut shuffled = Trace::new();
        for window in trace.intervals(cfg.interval_ms) {
            let mut packets: Vec<Packet> = window.packets.to_vec();
            rng.shuffle(&mut packets);
            shuffled.extend(packets);
        }
        // NOTE: shuffled is not time-ordered inside windows, so drive the
        // recorder manually with the same window boundaries.
        let mut manual = HiFind::new(cfg).unwrap();
        let mut idx = 0usize;
        for window in trace.intervals(cfg.interval_ms) {
            for _ in 0..window.packets.len() {
                manual.record(&shuffled.as_slice()[idx]);
                idx += 1;
            }
            manual.end_interval();
        }
        prop_assert_eq!(ordered_log.final_alerts(), manual.log().final_alerts());
    }

    /// Pipeline determinism: identical trace and config → identical alerts,
    /// run-to-run.
    #[test]
    fn pipeline_is_deterministic(seed in any::<u64>()) {
        let cfg = HiFindConfig::small(9);
        let trace = arb_trace(seed);
        let mut a = HiFind::new(cfg).unwrap();
        let mut b = HiFind::new(cfg).unwrap();
        let log_a = a.run_trace(&trace);
        let log_b = b.run_trace(&trace);
        prop_assert_eq!(log_a.final_alerts(), log_b.final_alerts());
    }

    /// Recorder snapshots are additive across arbitrary packet splits: any
    /// 2-way partition of an interval's packets combines to the unsplit
    /// snapshot.
    #[test]
    fn snapshots_additive_under_any_partition(seed in any::<u64>(), mask in any::<u64>()) {
        let cfg = HiFindConfig::small(11);
        let trace = arb_trace(seed);
        let packets = trace.as_slice();
        let mut whole = SketchRecorder::new(&cfg).unwrap();
        let mut left = SketchRecorder::new(&cfg).unwrap();
        let mut right = SketchRecorder::new(&cfg).unwrap();
        for (i, p) in packets.iter().enumerate().take(2000) {
            whole.record(p);
            if mask >> (i % 64) & 1 == 0 {
                left.record(p);
            } else {
                right.record(p);
            }
        }
        let mut combined = left.take_snapshot();
        combined.combine_into(&right.take_snapshot()).unwrap();
        let expected = whole.take_snapshot();
        prop_assert_eq!(combined.rs_dip_dport, expected.rs_dip_dport);
        prop_assert_eq!(combined.rs_sip_dip, expected.rs_sip_dip);
        prop_assert_eq!(combined.os, expected.os);
        prop_assert_eq!(combined.syn_count, expected.syn_count);
    }
}
