//! Property-based equivalence between the serial and sharded record
//! planes: for arbitrary traces and worker counts, `run_trace_parallel`
//! must produce byte-identical interval snapshots and the same alert log
//! as `run_trace` — sketch linearity promises it, these tests hold it to
//! that promise.

use hifind::parallel::ParallelRecorder;
use hifind::{HiFind, HiFindConfig, Phase, SketchRecorder};
use hifind_flow::rng::SplitMix64;
use hifind_flow::{Ip4, Packet, Trace};
use proptest::prelude::*;

/// Builds a small mixed trace from a seed: benign handshakes plus a flood
/// and a scan with seed-dependent parameters, and a sprinkle of FIN/RST.
fn arb_trace(seed: u64) -> Trace {
    let mut rng = SplitMix64::new(seed);
    let cfg = HiFindConfig::small(0);
    let mut t = Trace::new();
    let victim: Ip4 = [129, 105, 0, 1].into();
    let scanner = Ip4::new(0x4200_0000 | rng.next_u32() & 0xFFFF);
    for iv in 0..4u64 {
        let base = iv * cfg.interval_ms;
        for i in 0..30u32 {
            let c = Ip4::new(0x0C00_0000 | rng.next_u32() & 0xFFFF);
            let ts = base + rng.below(cfg.interval_ms);
            t.push(Packet::syn(ts, c, 4000 + i as u16, victim, 80));
            t.push(Packet::syn_ack(ts + 1, c, 4000 + i as u16, victim, 80));
            if rng.chance(0.2) {
                t.push(Packet::fin(ts + 2, c, 4000 + i as u16, victim, 80));
            }
        }
        if iv >= 2 {
            for i in 0..(120 + rng.below(120) as u32) {
                t.push(Packet::syn(
                    base + rng.below(cfg.interval_ms),
                    Ip4::new(0x5000_0000 + i),
                    2000,
                    victim,
                    80,
                ));
                let dst: Ip4 = [129, 105, (i >> 8) as u8, i as u8].into();
                t.push(Packet::syn(
                    base + rng.below(cfg.interval_ms),
                    scanner,
                    2100,
                    dst,
                    445,
                ));
            }
        }
    }
    t.sort_by_time();
    t
}

/// Asserts the two logs agree at every phase.
fn assert_logs_equal(serial: &hifind::AlertLog, parallel: &hifind::AlertLog) {
    for phase in [Phase::Raw, Phase::AfterClassification, Phase::Final] {
        assert_eq!(
            serial.alerts(phase),
            parallel.alerts(phase),
            "alert divergence at {phase:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `run_trace_parallel(n)` yields the same alert log as `run_trace`
    /// for arbitrary traces and every interesting worker count (including
    /// a count that does not divide the batch flow evenly).
    #[test]
    fn parallel_trace_alerts_match_serial(
        seed in any::<u64>(),
        workers_idx in 0usize..4,
    ) {
        let workers = [1usize, 2, 4, 7][workers_idx];
        let cfg = HiFindConfig::small(13);
        let trace = arb_trace(seed);
        let mut serial = HiFind::new(cfg).unwrap();
        let serial_log = serial.run_trace(&trace);
        let mut parallel = HiFind::new(cfg).unwrap();
        let parallel_log = parallel.run_trace_parallel(&trace, workers).unwrap();
        assert_logs_equal(&serial_log, &parallel_log);
        prop_assert_eq!(
            serial.intervals_processed(),
            parallel.intervals_processed()
        );
    }

    /// Every per-interval merged snapshot is bit-identical to the serial
    /// recorder's — not just the alerts derived from it.
    #[test]
    fn parallel_snapshots_match_serial_every_interval(
        seed in any::<u64>(),
        workers_idx in 0usize..4,
    ) {
        let workers = [1usize, 2, 4, 7][workers_idx];
        let cfg = HiFindConfig::small(17);
        let trace = arb_trace(seed);
        let mut serial = SketchRecorder::new(&cfg).unwrap();
        let mut sharded = ParallelRecorder::new(&cfg, workers).unwrap();
        for window in trace.intervals(cfg.interval_ms) {
            for p in window.packets {
                serial.record(p);
                sharded.record(p);
            }
            prop_assert_eq!(sharded.end_interval().unwrap(), serial.take_snapshot());
        }
        sharded.finish().unwrap();
    }
}

#[test]
fn empty_trace_matches_serial() {
    let cfg = HiFindConfig::small(19);
    let trace = Trace::new();
    for workers in [1usize, 2, 4, 7] {
        let mut serial = HiFind::new(cfg).unwrap();
        let serial_log = serial.run_trace(&trace);
        let mut parallel = HiFind::new(cfg).unwrap();
        let parallel_log = parallel.run_trace_parallel(&trace, workers).unwrap();
        assert_logs_equal(&serial_log, &parallel_log);
    }
}

#[test]
fn one_packet_trace_matches_serial() {
    let cfg = HiFindConfig::small(23);
    let mut trace = Trace::new();
    trace.push(Packet::syn(
        5,
        [10, 0, 0, 9].into(),
        4000,
        [129, 105, 0, 1].into(),
        80,
    ));
    for workers in [1usize, 2, 4, 7] {
        let mut serial = HiFind::new(cfg).unwrap();
        let serial_log = serial.run_trace(&trace);
        let mut parallel = HiFind::new(cfg).unwrap();
        let parallel_log = parallel.run_trace_parallel(&trace, workers).unwrap();
        assert_logs_equal(&serial_log, &parallel_log);
        assert_eq!(serial.intervals_processed(), parallel.intervals_processed());
    }
}
