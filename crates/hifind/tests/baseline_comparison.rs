//! Integration tests pinning the HiFIND-vs-baseline relationships the
//! paper's evaluation section claims (Tables 1, 5, 6 and §3.5), at test
//! scale.

use hifind::{AlertKind, HiFind, HiFindConfig};
use hifind_baselines::{Cpm, CpmConfig, Trw, TrwAc, TrwAcConfig, TrwConfig};
use hifind_flow::{Ip4, Packet, Trace};
use hifind_trafficgen::presets;

fn cfg() -> HiFindConfig {
    HiFindConfig::paper(0xBA5E)
}

/// A scan whose probes mostly *succeed* — TRW's sequential test reaches
/// the benign decision and stops; HiFIND still counts the unanswered rest.
#[test]
fn half_successful_scan_hifind_yes_trw_no() {
    let mut t = Trace::new();
    let scanner: Ip4 = [66, 1, 1, 1].into();
    // Background so the interval isn't empty.
    for iv in 0..4u64 {
        for i in 0..20u32 {
            let c: Ip4 = [9, 9, 9, (i % 50) as u8].into();
            let s: Ip4 = [129, 105, 0, 1].into();
            let ts = iv * 60_000 + i as u64 * 13;
            t.push(Packet::syn(ts, c, 4000 + i as u16, s, 80));
            t.push(Packet::syn_ack(ts + 1, c, 4000 + i as u16, s, 80));
        }
    }
    // The scan: from minute 2, ~200 probes/minute, 60% answered.
    let mut k = 0u32;
    for iv in 2..4u64 {
        for i in 0..200u32 {
            let dst: Ip4 = [129, 105, (k >> 8) as u8, k as u8].into();
            let ts = iv * 60_000 + i as u64 * 290;
            t.push(Packet::syn(ts, scanner, 2000, dst, 80));
            if k % 5 < 3 {
                t.push(Packet::syn_ack(ts + 2, scanner, 2000, dst, 80));
            }
            k += 1;
        }
    }
    t.sort_by_time();

    let mut ids = HiFind::new(cfg()).unwrap();
    let log = ids.run_trace(&t);
    assert!(
        log.final_alerts()
            .iter()
            .any(|a| a.kind == AlertKind::HScan && a.sip == Some(scanner)),
        "HiFIND must flag the 40%-unanswered scan: {:?}",
        log.final_alerts()
    );

    let (trw_alerts, _) = Trw::detect(&t, TrwConfig::default());
    assert!(
        !trw_alerts.iter().any(|a| a.source == scanner),
        "TRW should reach the benign decision on a mostly-successful source"
    );
}

/// A slow scan below HiFIND's per-interval threshold — TRW accumulates the
/// evidence across the trace; HiFIND (per the paper) misses it.
#[test]
fn slow_scan_trw_yes_hifind_no() {
    let mut t = Trace::new();
    let scanner: Ip4 = [66, 2, 2, 2].into();
    for iv in 0..10u64 {
        for i in 0..20u32 {
            let c: Ip4 = [9, 9, 9, (i % 50) as u8].into();
            let s: Ip4 = [129, 105, 0, 1].into();
            let ts = iv * 60_000 + i as u64 * 13;
            t.push(Packet::syn(ts, c, 4000 + i as u16, s, 80));
            t.push(Packet::syn_ack(ts + 1, c, 4000 + i as u16, s, 80));
        }
        // 10 unanswered probes per minute: far below 60/interval.
        for i in 0..10u32 {
            let id = iv as u32 * 10 + i;
            let dst: Ip4 = [129, 105, (id >> 8) as u8, id as u8].into();
            t.push(Packet::syn(
                iv * 60_000 + 500 + i as u64 * 97,
                scanner,
                2000,
                dst,
                23,
            ));
        }
    }
    t.sort_by_time();

    let mut ids = HiFind::new(cfg()).unwrap();
    let log = ids.run_trace(&t);
    assert!(
        !log.final_alerts().iter().any(|a| a.sip == Some(scanner)),
        "10 probes/minute is under HiFIND's threshold by design"
    );

    let (trw_alerts, _) = Trw::detect(&t, TrwConfig::default());
    assert!(
        trw_alerts.iter().any(|a| a.source == scanner),
        "TRW accumulates evidence across intervals"
    );
}

/// CPM flags scan-heavy traffic as flooding; HiFIND does not (Table 6).
#[test]
fn cpm_false_alarms_on_scans_hifind_does_not() {
    let (trace, truth) = presets::lbl_like(7).scaled(0.03).generate();
    assert_eq!(truth.iter().filter(|e| e.class.is_flooding()).count(), 0);

    let cfg = cfg();
    let cpm_flagged = Cpm::detect_intervals(&trace, cfg.interval_ms, CpmConfig::default());
    assert!(
        !cpm_flagged.is_empty(),
        "CPM should false-alarm on the scan-heavy trace"
    );

    let mut ids = HiFind::new(cfg).unwrap();
    let log = ids.run_trace(&trace);
    assert!(
        log.count(hifind::Phase::Final, AlertKind::SynFlooding) <= 1,
        "HiFIND must not report flooding on the floodless trace"
    );
}

/// §3.5: the spoofed flood pollutes TRW-AC's connection cache; HiFIND's
/// memory and detection are unaffected.
#[test]
fn spoofed_flood_pollutes_trw_ac_cache() {
    let (trace, _) = presets::dos_resilience(8).scaled(0.15).generate();
    let ac_cfg = TrwAcConfig {
        conn_cache_entries: 1 << 14,
        addr_cache_entries: 1 << 12,
        ..TrwAcConfig::default()
    };
    let (_, stats) = TrwAc::detect(&trace, ac_cfg);
    assert!(
        stats.cache_occupancy > 0.8,
        "flood should saturate the cache: {:.2}",
        stats.cache_occupancy
    );
    assert!(
        stats.aliased_attempts > stats.total_attempts / 4,
        "a large share of attempts must alias: {stats:?}"
    );
}
