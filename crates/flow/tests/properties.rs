//! Property-based tests for the flow substrate.

use hifind_flow::keys::{DipDport, Sip, SipDip, SipDport, SketchKey};
use hifind_flow::rng::{SplitMix64, Zipf};
use hifind_flow::{Direction, Ip4, Packet, SegmentKind, Trace};
use proptest::prelude::*;

fn arb_ip() -> impl Strategy<Value = Ip4> {
    any::<u32>().prop_map(Ip4::new)
}

fn arb_kind() -> impl Strategy<Value = SegmentKind> {
    prop_oneof![
        Just(SegmentKind::Syn),
        Just(SegmentKind::SynAck),
        Just(SegmentKind::Fin),
        Just(SegmentKind::Rst),
        Just(SegmentKind::Other),
    ]
}

prop_compose! {
    fn arb_packet()(
        ts_ms in 0u64..10_000_000,
        src in arb_ip(),
        dst in arb_ip(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        kind in arb_kind(),
        inbound in any::<bool>(),
    ) -> Packet {
        Packet {
            ts_ms, src, dst, sport, dport, kind,
            direction: if inbound { Direction::Inbound } else { Direction::Outbound },
        }
    }
}

proptest! {
    #[test]
    fn key_packing_round_trips(sip in arb_ip(), dip in arb_ip(), port in any::<u16>()) {
        let k = SipDport::new(sip, port);
        prop_assert_eq!(SipDport::from_u64(k.to_u64()), k);
        prop_assert_eq!(k.to_u64() >> SipDport::BITS, 0);
        let k = DipDport::new(dip, port);
        prop_assert_eq!(DipDport::from_u64(k.to_u64()), k);
        let k = SipDip::new(sip, dip);
        prop_assert_eq!(SipDip::from_u64(k.to_u64()), k);
        let k = Sip(sip);
        prop_assert_eq!(Sip::from_u64(k.to_u64()), k);
    }

    #[test]
    fn distinct_keys_pack_distinctly(
        a in (arb_ip(), any::<u16>()),
        b in (arb_ip(), any::<u16>()),
    ) {
        let ka = SipDport::new(a.0, a.1);
        let kb = SipDport::new(b.0, b.1);
        prop_assert_eq!(ka == kb, ka.to_u64() == kb.to_u64());
    }

    #[test]
    fn trace_codec_round_trips(packets in prop::collection::vec(arb_packet(), 0..200)) {
        let mut trace: Trace = packets.into_iter().collect();
        trace.sort_by_time();
        let decoded = Trace::from_bytes(&trace.to_bytes()).expect("decodes");
        // SegmentKind::from_flags(to_flags(k)) is the identity, so the
        // decoded trace equals the original exactly.
        prop_assert_eq!(decoded, trace);
    }

    #[test]
    fn codec_never_panics_on_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Trace::from_bytes(&data); // must return Err, not panic
    }

    #[test]
    fn orientation_is_stable_under_reply(
        client in arb_ip(), server in arb_ip(),
        cport in any::<u16>(), sport in any::<u16>(), ts in any::<u64>(),
    ) {
        // A SYN and the SYN/ACK answering it orient to the same endpoints.
        let syn = Packet::syn(ts, client, cport, server, sport).orient().unwrap();
        let ack = Packet::syn_ack(ts, client, cport, server, sport).orient().unwrap();
        prop_assert_eq!(syn.client, ack.client);
        prop_assert_eq!(syn.server, ack.server);
        prop_assert_eq!(syn.client_port, ack.client_port);
        prop_assert_eq!(syn.server_port, ack.server_port);
        prop_assert_eq!(syn.syn_minus_synack() + ack.syn_minus_synack(), 0);
    }

    #[test]
    fn intervals_partition_packets(
        packets in prop::collection::vec(arb_packet(), 1..300),
        interval_ms in 50_000u64..1_000_000,
    ) {
        let mut trace: Trace = packets.into_iter().collect();
        trace.sort_by_time();
        let windows: Vec<_> = trace.intervals(interval_ms).collect();
        let total: usize = windows.iter().map(|w| w.packets.len()).sum();
        prop_assert_eq!(total, trace.len());
        // Windows tile the time axis contiguously.
        for pair in windows.windows(2) {
            prop_assert_eq!(pair[0].end_ms, pair[1].start_ms);
        }
        // Every packet lies in its window.
        for w in &windows {
            for p in w.packets {
                prop_assert!(p.ts_ms >= w.start_ms && p.ts_ms < w.end_ms);
            }
        }
    }

    #[test]
    fn splitmix_below_is_in_range(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..20 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn zipf_sample_in_range(seed in any::<u64>(), n in 1usize..500, alpha in 0.0f64..3.0) {
        let zipf = Zipf::new(n, alpha);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..20 {
            prop_assert!(zipf.sample(&mut rng) < n);
        }
    }

    #[test]
    fn ip_prefix_is_reflexive_and_monotone(ip in arb_ip(), len in 0u8..=32) {
        prop_assert!(ip.in_prefix(ip, len));
        // A longer matching prefix implies all shorter ones match.
        if ip.in_prefix(Ip4::new(0x8169_0000), 16) {
            prop_assert!(ip.in_prefix(Ip4::new(0x8169_0000), 8));
        }
    }
}
