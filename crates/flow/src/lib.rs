//! Packet/flow substrate for the HiFIND intrusion detection system.
//!
//! This crate defines the traffic model every other crate consumes:
//!
//! * [`Packet`] — a single observed TCP segment (the unit the paper's
//!   sketches are updated with), together with its [`Direction`] relative to
//!   the monitored edge and its [`SegmentKind`] (SYN, SYN/ACK, ...).
//! * Flow keys ([`SipDport`], [`DipDport`], [`SipDip`], ...) — the key
//!   combinations of Table 3 of the paper, each implementing [`SketchKey`]
//!   so they can be recorded into (and recovered from) reversible sketches.
//! * [`Trace`] — an in-memory, time-ordered packet trace with interval
//!   iteration and a compact binary codec.
//! * [`rng::SplitMix64`] — the deterministic PRNG used throughout the
//!   workspace so that every experiment is bit-reproducible from a seed.
//!
//! # Example
//!
//! ```
//! use hifind_flow::{Packet, SegmentKind, Direction, SipDport, SketchKey};
//!
//! let syn = Packet::syn(0, [10, 0, 0, 1].into(), 4242, [192, 168, 0, 7].into(), 80);
//! assert_eq!(syn.kind, SegmentKind::Syn);
//! let oriented = syn.orient().unwrap();
//! let key = SipDport::new(oriented.client, oriented.server_port);
//! assert_eq!(SipDport::from_u64(key.to_u64()), key);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interval;
pub mod ip;
pub mod keys;
pub mod packet;
pub mod rng;
pub mod text;
pub mod trace;

pub use interval::{IntervalIter, Intervalizer};
pub use ip::Ip4;
pub use keys::{Dip, DipDport, Dport, FlowTuple, KeyKind, Sip, SipDip, SipDport, SketchKey};
pub use packet::{Direction, Oriented, Packet, SegmentKind};
pub use trace::{Trace, TraceCodecError, TraceStats};
