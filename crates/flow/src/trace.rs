//! In-memory packet traces with a compact binary codec.
//!
//! A [`Trace`] is a time-ordered sequence of [`Packet`]s. Traces are the
//! interchange format between the traffic generator, the detectors, and the
//! experiment harness. The binary codec writes fixed 24-byte records behind
//! a small header, standing in for the netflow dumps the paper replays.

use crate::interval::Intervalizer;
use crate::packet::{Direction, Packet, SegmentKind};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

const MAGIC: u32 = 0x4846_4E44; // "HFND"
const VERSION: u16 = 1;
const RECORD_BYTES: usize = 24;

/// A time-ordered packet trace.
///
/// # Example
///
/// ```
/// use hifind_flow::{Packet, Trace};
///
/// let mut trace = Trace::new();
/// trace.push(Packet::syn(5, [1, 1, 1, 1].into(), 1000, [2, 2, 2, 2].into(), 80));
/// trace.push(Packet::syn_ack(6, [1, 1, 1, 1].into(), 1000, [2, 2, 2, 2].into(), 80));
/// assert_eq!(trace.len(), 2);
/// let bytes = trace.to_bytes();
/// assert_eq!(Trace::from_bytes(&bytes).unwrap(), trace);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    packets: Vec<Packet>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates an empty trace with capacity for `n` packets.
    pub fn with_capacity(n: usize) -> Self {
        Trace {
            packets: Vec::with_capacity(n),
        }
    }

    /// Appends a packet. Callers should append in time order; use
    /// [`Trace::sort_by_time`] after bulk out-of-order construction.
    #[inline]
    pub fn push(&mut self, p: Packet) {
        self.packets.push(p);
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Returns `true` if the trace holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Iterates over the packets in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Packet> {
        self.packets.iter()
    }

    /// Borrows the packets as a slice.
    pub fn as_slice(&self) -> &[Packet] {
        &self.packets
    }

    /// Stable-sorts packets by timestamp (stable so that a SYN emitted at
    /// the same millisecond as its SYN/ACK keeps its causal order).
    pub fn sort_by_time(&mut self) {
        self.packets.sort_by_key(|p| p.ts_ms);
    }

    /// Returns `true` if timestamps are non-decreasing.
    pub fn is_time_ordered(&self) -> bool {
        self.packets.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms)
    }

    /// Splits the trace into fixed `interval_ms` windows (see
    /// [`Intervalizer`]).
    pub fn intervals(&self, interval_ms: u64) -> Intervalizer<'_> {
        Intervalizer::new(&self.packets, interval_ms)
    }

    /// Merges another trace into this one, restoring time order.
    pub fn merge(&mut self, other: &Trace) {
        self.packets.extend_from_slice(&other.packets);
        self.sort_by_time();
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> TraceStats {
        let mut stats = TraceStats::default();
        let mut sips = HashSet::new();
        let mut dips = HashSet::new();
        for p in &self.packets {
            match p.kind {
                SegmentKind::Syn => stats.syn += 1,
                SegmentKind::SynAck => stats.syn_ack += 1,
                SegmentKind::Fin => stats.fin += 1,
                SegmentKind::Rst => stats.rst += 1,
                SegmentKind::Other => stats.other += 1,
            }
            sips.insert(p.src);
            dips.insert(p.dst);
        }
        stats.packets = self.packets.len() as u64;
        stats.unique_src = sips.len() as u64;
        stats.unique_dst = dips.len() as u64;
        stats.duration_ms = match (self.packets.first(), self.packets.last()) {
            (Some(a), Some(b)) => b.ts_ms.saturating_sub(a.ts_ms),
            _ => 0,
        };
        stats
    }

    /// Serializes to the compact binary format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.packets.len() * RECORD_BYTES);
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION);
        buf.put_u16(0); // reserved
        buf.put_u64(self.packets.len() as u64);
        for p in &self.packets {
            buf.put_u64(p.ts_ms);
            buf.put_u32(p.src.raw());
            buf.put_u32(p.dst.raw());
            buf.put_u16(p.sport);
            buf.put_u16(p.dport);
            buf.put_u8(p.kind.to_flags());
            buf.put_u8(match p.direction {
                Direction::Inbound => 0,
                Direction::Outbound => 1,
            });
            buf.put_u16(0); // reserved / alignment
        }
        buf.freeze()
    }

    /// Deserializes from the compact binary format.
    ///
    /// # Errors
    ///
    /// Returns [`TraceCodecError`] if the header or length is malformed.
    pub fn from_bytes(mut data: &[u8]) -> Result<Trace, TraceCodecError> {
        if data.len() < 16 {
            return Err(TraceCodecError::Truncated);
        }
        let magic = data.get_u32();
        if magic != MAGIC {
            return Err(TraceCodecError::BadMagic(magic));
        }
        let version = data.get_u16();
        if version != VERSION {
            return Err(TraceCodecError::UnsupportedVersion(version));
        }
        let _reserved = data.get_u16();
        let count = data.get_u64() as usize;
        if data.remaining() != count * RECORD_BYTES {
            return Err(TraceCodecError::Truncated);
        }
        let mut packets = Vec::with_capacity(count);
        for _ in 0..count {
            let ts_ms = data.get_u64();
            let src = data.get_u32().into();
            let dst = data.get_u32().into();
            let sport = data.get_u16();
            let dport = data.get_u16();
            let kind = SegmentKind::from_flags(data.get_u8());
            let direction = match data.get_u8() {
                0 => Direction::Inbound,
                1 => Direction::Outbound,
                d => return Err(TraceCodecError::BadDirection(d)),
            };
            let _pad = data.get_u16();
            packets.push(Packet {
                ts_ms,
                src,
                dst,
                sport,
                dport,
                kind,
                direction,
            });
        }
        Ok(Trace { packets })
    }
}

impl FromIterator<Packet> for Trace {
    fn from_iter<I: IntoIterator<Item = Packet>>(iter: I) -> Self {
        Trace {
            packets: iter.into_iter().collect(),
        }
    }
}

impl Extend<Packet> for Trace {
    fn extend<I: IntoIterator<Item = Packet>>(&mut self, iter: I) {
        self.packets.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Packet;
    type IntoIter = std::slice::Iter<'a, Packet>;
    fn into_iter(self) -> Self::IntoIter {
        self.packets.iter()
    }
}

impl IntoIterator for Trace {
    type Item = Packet;
    type IntoIter = std::vec::IntoIter<Packet>;
    fn into_iter(self) -> Self::IntoIter {
        self.packets.into_iter()
    }
}

/// Summary statistics over a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total packet count.
    pub packets: u64,
    /// SYN segments.
    pub syn: u64,
    /// SYN/ACK segments.
    pub syn_ack: u64,
    /// FIN segments.
    pub fin: u64,
    /// RST segments.
    pub rst: u64,
    /// Other segments.
    pub other: u64,
    /// Distinct wire source addresses.
    pub unique_src: u64,
    /// Distinct wire destination addresses.
    pub unique_dst: u64,
    /// Span from first to last timestamp.
    pub duration_ms: u64,
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pkts ({} SYN, {} SYN/ACK, {} FIN, {} RST) over {:.1}s, {} srcs, {} dsts",
            self.packets,
            self.syn,
            self.syn_ack,
            self.fin,
            self.rst,
            self.duration_ms as f64 / 1000.0,
            self.unique_src,
            self.unique_dst
        )
    }
}

/// Errors from [`Trace::from_bytes`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceCodecError {
    /// Input shorter than the declared record count requires.
    Truncated,
    /// Header magic did not match.
    BadMagic(u32),
    /// Unknown format version.
    UnsupportedVersion(u16),
    /// Direction byte was neither 0 nor 1.
    BadDirection(u8),
}

impl fmt::Display for TraceCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceCodecError::Truncated => f.write_str("trace data truncated"),
            TraceCodecError::BadMagic(m) => write!(f, "bad trace magic {m:#010x}"),
            TraceCodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace version {v}")
            }
            TraceCodecError::BadDirection(d) => write!(f, "invalid direction byte {d}"),
        }
    }
}

impl std::error::Error for TraceCodecError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::Ip4;

    fn sample_trace() -> Trace {
        let c: Ip4 = [1, 2, 3, 4].into();
        let s: Ip4 = [5, 6, 7, 8].into();
        let mut t = Trace::new();
        t.push(Packet::syn(100, c, 4000, s, 80));
        t.push(Packet::syn_ack(105, c, 4000, s, 80));
        t.push(Packet::rst(200, c, 4001, s, 22));
        t.push(Packet::fin(900, c, 4000, s, 80));
        t
    }

    #[test]
    fn codec_round_trip() {
        let t = sample_trace();
        let bytes = t.to_bytes();
        let back = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn codec_rejects_bad_magic() {
        let mut bytes = sample_trace().to_bytes().to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceCodecError::BadMagic(_))
        ));
    }

    #[test]
    fn codec_rejects_truncation() {
        let bytes = sample_trace().to_bytes();
        assert_eq!(
            Trace::from_bytes(&bytes[..bytes.len() - 1]),
            Err(TraceCodecError::Truncated)
        );
        assert_eq!(
            Trace::from_bytes(&bytes[..4]),
            Err(TraceCodecError::Truncated)
        );
    }

    #[test]
    fn codec_rejects_bad_version() {
        let mut bytes = sample_trace().to_bytes().to_vec();
        bytes[5] = 99;
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceCodecError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn empty_trace_round_trip() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(Trace::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn stats_count_kinds() {
        let stats = sample_trace().stats();
        assert_eq!(stats.packets, 4);
        assert_eq!(stats.syn, 1);
        assert_eq!(stats.syn_ack, 1);
        assert_eq!(stats.rst, 1);
        assert_eq!(stats.fin, 1);
        assert_eq!(stats.duration_ms, 800);
        // Display should not be empty.
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    fn sort_and_order_check() {
        let mut t = sample_trace();
        assert!(t.is_time_ordered());
        t.push(Packet::syn(
            1,
            [9, 9, 9, 9].into(),
            1,
            [8, 8, 8, 8].into(),
            2,
        ));
        assert!(!t.is_time_ordered());
        t.sort_by_time();
        assert!(t.is_time_ordered());
    }

    #[test]
    fn merge_restores_order() {
        let mut a = sample_trace();
        let b = sample_trace();
        a.merge(&b);
        assert_eq!(a.len(), 8);
        assert!(a.is_time_ordered());
    }

    #[test]
    fn collect_from_iterator() {
        let t: Trace = sample_trace().into_iter().collect();
        assert_eq!(t.len(), 4);
        let mut t2 = Trace::new();
        t2.extend(sample_trace());
        assert_eq!(t2.len(), 4);
    }
}
