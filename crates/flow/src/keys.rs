//! Flow keys — the field combinations of Table 3 of the paper.
//!
//! HiFIND records three reversible sketches keyed by two-field combinations
//! ([`SipDport`], [`DipDport`], [`SipDip`]) plus single-field keys used in
//! analysis. Every key implements [`SketchKey`]: a fixed bit width and a
//! lossless packing into the low bits of a `u64`. The packing is what the
//! reversible sketch's modular hashing splits into 8-bit words, and what
//! INFERENCE reconstructs, so `from_u64(to_u64(k)) == k` must hold exactly.

use crate::ip::Ip4;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-width key recordable into (and recoverable from) a reversible
/// sketch.
///
/// Implementors pack into the **low `BITS` bits** of a `u64`; the upper bits
/// of `to_u64` are always zero.
pub trait SketchKey: Copy + Eq + std::hash::Hash + fmt::Debug {
    /// Key width in bits. Must be a multiple of 8 and at most 64.
    const BITS: u32;

    /// Packs the key into the low [`Self::BITS`] bits of a `u64`.
    fn to_u64(&self) -> u64;

    /// Unpacks a key previously produced by [`SketchKey::to_u64`].
    ///
    /// Bits above [`Self::BITS`] are ignored.
    fn from_u64(raw: u64) -> Self;
}

/// Identifies which key combination a sketch is keyed by (for reports and
/// configuration).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KeyKind {
    /// `{SIP, Dport}` — 48 bits.
    SipDport,
    /// `{DIP, Dport}` — 48 bits.
    DipDport,
    /// `{SIP, DIP}` — 64 bits.
    SipDip,
    /// `{SIP}` — 32 bits.
    Sip,
    /// `{DIP}` — 32 bits.
    Dip,
    /// `{Dport}` — 16 bits.
    Dport,
}

impl KeyKind {
    /// Bit width of keys of this kind.
    pub fn bits(self) -> u32 {
        match self {
            KeyKind::SipDport | KeyKind::DipDport => 48,
            KeyKind::SipDip => 64,
            KeyKind::Sip | KeyKind::Dip => 32,
            KeyKind::Dport => 16,
        }
    }

    /// The *uniqueness* score of Table 3: how many attack types the key can
    /// discriminate (0.5 counted for non-spoofed-only coverage).
    pub fn uniqueness(self) -> f64 {
        match self {
            KeyKind::SipDport => 1.5,
            KeyKind::DipDport => 1.0,
            KeyKind::SipDip => 1.5,
            KeyKind::Sip => 2.5,
            KeyKind::Dip => 2.0,
            KeyKind::Dport => 2.0,
        }
    }
}

impl fmt::Display for KeyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KeyKind::SipDport => "{SIP,Dport}",
            KeyKind::DipDport => "{DIP,Dport}",
            KeyKind::SipDip => "{SIP,DIP}",
            KeyKind::Sip => "{SIP}",
            KeyKind::Dip => "{DIP}",
            KeyKind::Dport => "{Dport}",
        })
    }
}

macro_rules! display_pair {
    ($ty:ty, $fmt:expr) => {
        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, $fmt, self.0, self.1)
            }
        }
    };
}

/// `{SIP, Dport}` key: source address × destination (service) port.
///
/// Detects horizontal scans and non-spoofed flooding (paper step 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SipDport(pub Ip4, pub u16);

impl SipDport {
    /// Creates a key from a source address and destination port.
    pub fn new(sip: Ip4, dport: u16) -> Self {
        SipDport(sip, dport)
    }
    /// The source address component.
    pub fn sip(&self) -> Ip4 {
        self.0
    }
    /// The destination port component.
    pub fn dport(&self) -> u16 {
        self.1
    }
}

impl SketchKey for SipDport {
    const BITS: u32 = 48;

    #[inline]
    fn to_u64(&self) -> u64 {
        ((self.0.raw() as u64) << 16) | self.1 as u64
    }

    #[inline]
    fn from_u64(raw: u64) -> Self {
        SipDport(Ip4::new((raw >> 16) as u32), raw as u16)
    }
}

display_pair!(SipDport, "SIP={} Dport={}");

/// `{DIP, Dport}` key: the attacked service endpoint.
///
/// Detects SYN flooding (paper step 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DipDport(pub Ip4, pub u16);

impl DipDport {
    /// Creates a key from a destination address and destination port.
    pub fn new(dip: Ip4, dport: u16) -> Self {
        DipDport(dip, dport)
    }
    /// The destination address component.
    pub fn dip(&self) -> Ip4 {
        self.0
    }
    /// The destination port component.
    pub fn dport(&self) -> u16 {
        self.1
    }
}

impl SketchKey for DipDport {
    const BITS: u32 = 48;

    #[inline]
    fn to_u64(&self) -> u64 {
        ((self.0.raw() as u64) << 16) | self.1 as u64
    }

    #[inline]
    fn from_u64(raw: u64) -> Self {
        DipDport(Ip4::new((raw >> 16) as u32), raw as u16)
    }
}

display_pair!(DipDport, "DIP={} Dport={}");

/// `{SIP, DIP}` key: attacker/victim host pair.
///
/// Detects vertical scans and non-spoofed flooding (paper step 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SipDip(pub Ip4, pub Ip4);

impl SipDip {
    /// Creates a key from source and destination addresses.
    pub fn new(sip: Ip4, dip: Ip4) -> Self {
        SipDip(sip, dip)
    }
    /// The source address component.
    pub fn sip(&self) -> Ip4 {
        self.0
    }
    /// The destination address component.
    pub fn dip(&self) -> Ip4 {
        self.1
    }
}

impl SketchKey for SipDip {
    const BITS: u32 = 64;

    #[inline]
    fn to_u64(&self) -> u64 {
        ((self.0.raw() as u64) << 32) | self.1.raw() as u64
    }

    #[inline]
    fn from_u64(raw: u64) -> Self {
        SipDip(Ip4::new((raw >> 32) as u32), Ip4::new(raw as u32))
    }
}

display_pair!(SipDip, "SIP={} DIP={}");

/// `{SIP}` key — single source address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Sip(pub Ip4);

impl SketchKey for Sip {
    const BITS: u32 = 32;

    #[inline]
    fn to_u64(&self) -> u64 {
        self.0.raw() as u64
    }

    #[inline]
    fn from_u64(raw: u64) -> Self {
        Sip(Ip4::new(raw as u32))
    }
}

impl fmt::Display for Sip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SIP={}", self.0)
    }
}

/// `{DIP}` key — single destination address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Dip(pub Ip4);

impl SketchKey for Dip {
    const BITS: u32 = 32;

    #[inline]
    fn to_u64(&self) -> u64 {
        self.0.raw() as u64
    }

    #[inline]
    fn from_u64(raw: u64) -> Self {
        Dip(Ip4::new(raw as u32))
    }
}

impl fmt::Display for Dip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DIP={}", self.0)
    }
}

/// `{Dport}` key — single destination port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Dport(pub u16);

impl SketchKey for Dport {
    const BITS: u32 = 16;

    #[inline]
    fn to_u64(&self) -> u64 {
        self.0 as u64
    }

    #[inline]
    fn from_u64(raw: u64) -> Self {
        Dport(raw as u16)
    }
}

impl fmt::Display for Dport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dport={}", self.0)
    }
}

/// A full connection 4-tuple (used by exact flow tables and baselines, never
/// by sketches — the paper argues per-flow state is the DoS vulnerability).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowTuple {
    /// Client address.
    pub sip: Ip4,
    /// Server address.
    pub dip: Ip4,
    /// Client port.
    pub sport: u16,
    /// Server port.
    pub dport: u16,
}

impl FlowTuple {
    /// Creates a 4-tuple.
    pub fn new(sip: Ip4, dip: Ip4, sport: u16, dport: u16) -> Self {
        FlowTuple {
            sip,
            dip,
            sport,
            dport,
        }
    }
}

impl fmt::Display for FlowTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{}",
            self.sip, self.sport, self.dip, self.dport
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sip_dport_round_trip_and_width() {
        let k = SipDport::new([200, 1, 2, 3].into(), 1433);
        let raw = k.to_u64();
        assert_eq!(raw >> SipDport::BITS, 0, "upper bits must be zero");
        assert_eq!(SipDport::from_u64(raw), k);
        assert_eq!(k.sip(), Ip4::from([200, 1, 2, 3]));
        assert_eq!(k.dport(), 1433);
    }

    #[test]
    fn dip_dport_round_trip() {
        let k = DipDport::new([129, 105, 100, 5].into(), 80);
        assert_eq!(DipDport::from_u64(k.to_u64()), k);
        assert_eq!(k.to_u64() >> 48, 0);
    }

    #[test]
    fn sip_dip_round_trip_uses_full_64_bits() {
        let k = SipDip::new([255, 255, 255, 255].into(), [255, 255, 255, 254].into());
        assert_eq!(SipDip::from_u64(k.to_u64()), k);
        assert_eq!(k.to_u64(), 0xFFFF_FFFF_FFFF_FFFE);
    }

    #[test]
    fn single_field_keys_round_trip() {
        let s = Sip([9, 8, 7, 6].into());
        assert_eq!(Sip::from_u64(s.to_u64()), s);
        let d = Dip([6, 7, 8, 9].into());
        assert_eq!(Dip::from_u64(d.to_u64()), d);
        assert_eq!(d.to_string(), "DIP=6.7.8.9");
        let p = Dport(65535);
        assert_eq!(Dport::from_u64(p.to_u64()), p);
    }

    #[test]
    fn from_u64_ignores_upper_bits() {
        let k = SipDport::new([1, 1, 1, 1].into(), 80);
        let noisy = k.to_u64() | 0xDEAD_0000_0000_0000u64.wrapping_shl(0) & !((1u64 << 48) - 1);
        assert_eq!(SipDport::from_u64(noisy), k);
    }

    #[test]
    fn uniqueness_table_matches_paper() {
        assert_eq!(KeyKind::SipDport.uniqueness(), 1.5);
        assert_eq!(KeyKind::DipDport.uniqueness(), 1.0);
        assert_eq!(KeyKind::SipDip.uniqueness(), 1.5);
        assert_eq!(KeyKind::Sip.uniqueness(), 2.5);
        assert_eq!(KeyKind::Dip.uniqueness(), 2.0);
        assert_eq!(KeyKind::Dport.uniqueness(), 2.0);
    }

    #[test]
    fn key_kind_bits() {
        assert_eq!(KeyKind::SipDport.bits(), 48);
        assert_eq!(KeyKind::SipDip.bits(), 64);
        assert_eq!(KeyKind::Dport.bits(), 16);
    }

    #[test]
    fn display_formats() {
        let k = SipDport::new([10, 0, 0, 1].into(), 22);
        assert_eq!(k.to_string(), "SIP=10.0.0.1 Dport=22");
        assert_eq!(KeyKind::SipDip.to_string(), "{SIP,DIP}");
        let t = FlowTuple::new([1, 1, 1, 1].into(), [2, 2, 2, 2].into(), 1000, 80);
        assert_eq!(t.to_string(), "1.1.1.1:1000 -> 2.2.2.2:80");
    }
}
