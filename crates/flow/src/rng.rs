//! Deterministic pseudo-random number generation.
//!
//! Every randomized component in the workspace (traffic generation, hash
//! seed derivation, the multi-router splitter) draws from [`SplitMix64`]
//! seeded explicitly, so that every experiment in EXPERIMENTS.md is
//! bit-reproducible. SplitMix64 passes BigCrush, has a full 2^64 period over
//! its counter, and is a few ALU ops per draw — more than adequate for
//! simulation (it is *not* a cryptographic generator; the sketches' security
//! argument rests on their hash seeds being secret, not on this PRNG).

use serde::{Deserialize, Serialize};

/// A SplitMix64 pseudo-random generator.
///
/// # Example
///
/// ```
/// use hifind_flow::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams for practical simulation purposes.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives a child generator, useful to give each sub-component its own
    /// independent stream without coupling their draw counts.
    ///
    /// The child seed mixes the label so `fork(1)` and `fork(2)` differ even
    /// from the same parent state.
    pub fn fork(&mut self, label: u64) -> SplitMix64 {
        let mixed = self
            .next_u64()
            .wrapping_add(label.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        SplitMix64::new(mix(mixed))
    }

    /// Returns the next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Returns the next 32 uniformly distributed bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire's multiply-shift rejection method: unbiased.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range() requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Samples a geometric-ish exponential inter-arrival gap with the given
    /// mean, truncated at `10 * mean` to keep traces bounded.
    pub fn exp_gap(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u = self.f64().max(1e-12);
        (-u.ln() * mean).min(mean * 10.0)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick() requires a non-empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A precomputed Zipf(α) sampler over ranks `0..n`.
///
/// Used to model realistic destination/service popularity skews in the
/// traffic generator. Sampling is O(log n) by binary search over the CDF.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha < 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        assert!(alpha >= 0.0, "negative Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the sampler has no ranks (never true — `new`
    /// rejects `n == 0`; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.f64();
        match self.cdf.binary_search_by(|probe| probe.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(3);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..50 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn range_bounds() {
        let mut rng = SplitMix64::new(4);
        for _ in 0..100 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = SplitMix64::new(6);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.below(10) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 10.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.05,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn forks_are_independent_streams() {
        let mut parent = SplitMix64::new(11);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
        // Deterministic: same construction gives same children.
        let mut parent2 = SplitMix64::new(11);
        let mut d1 = parent2.fork(1);
        c1 = SplitMix64::new(11).fork(1);
        assert_eq!(c1.next_u64(), d1.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(8);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let zipf = Zipf::new(1000, 1.0);
        let mut rng = SplitMix64::new(9);
        let mut head = 0usize;
        let n = 10_000;
        for _ in 0..n {
            if zipf.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With alpha=1 over 1000 ranks the top-10 mass is ~39%.
        assert!(head > n / 4, "head mass too small: {head}");
    }

    #[test]
    fn zipf_zero_alpha_is_uniform() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = SplitMix64::new(10);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 5000.0).abs() < 500.0);
        }
    }

    #[test]
    fn exp_gap_positive_and_bounded() {
        let mut rng = SplitMix64::new(12);
        for _ in 0..1000 {
            let g = rng.exp_gap(5.0);
            assert!((0.0..=50.0).contains(&g));
        }
    }

    #[test]
    fn pick_returns_member() {
        let mut rng = SplitMix64::new(13);
        let items = [1, 2, 3];
        for _ in 0..20 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
