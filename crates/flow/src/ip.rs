//! A compact IPv4 address newtype.
//!
//! The sketches in this workspace treat addresses as raw 32-bit integers
//! (they are hashed, split into 8-bit words, mangled, ...). [`Ip4`] wraps a
//! `u32` in network order semantics while staying `Copy` and hashable, and
//! converts losslessly to and from [`std::net::Ipv4Addr`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 address stored as a host-order `u32`.
///
/// # Example
///
/// ```
/// use hifind_flow::Ip4;
///
/// let a: Ip4 = [10, 1, 2, 3].into();
/// assert_eq!(a.octets(), [10, 1, 2, 3]);
/// assert_eq!(a.to_string(), "10.1.2.3");
/// assert_eq!(Ip4::from(u32::from(a)), a);
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Ip4(u32);

impl Ip4 {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ip4 = Ip4(0);

    /// Creates an address from a host-order `u32`.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        Ip4(raw)
    }

    /// Creates an address from four octets (most significant first).
    #[inline]
    pub const fn from_octets(o: [u8; 4]) -> Self {
        Ip4(u32::from_be_bytes(o))
    }

    /// Returns the four octets, most significant first.
    #[inline]
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Returns the raw host-order `u32`.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns `true` if the address lies inside `prefix/len`.
    ///
    /// # Example
    ///
    /// ```
    /// use hifind_flow::Ip4;
    /// let net: Ip4 = [129, 105, 0, 0].into();
    /// assert!(Ip4::from([129, 105, 9, 3]).in_prefix(net, 16));
    /// assert!(!Ip4::from([129, 106, 9, 3]).in_prefix(net, 16));
    /// ```
    #[inline]
    pub fn in_prefix(self, prefix: Ip4, len: u8) -> bool {
        debug_assert!(len <= 32);
        if len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - len as u32);
        (self.0 & mask) == (prefix.0 & mask)
    }
}

impl From<u32> for Ip4 {
    #[inline]
    fn from(raw: u32) -> Self {
        Ip4(raw)
    }
}

impl From<Ip4> for u32 {
    #[inline]
    fn from(ip: Ip4) -> Self {
        ip.0
    }
}

impl From<[u8; 4]> for Ip4 {
    #[inline]
    fn from(o: [u8; 4]) -> Self {
        Ip4::from_octets(o)
    }
}

impl From<Ipv4Addr> for Ip4 {
    #[inline]
    fn from(a: Ipv4Addr) -> Self {
        Ip4::from_octets(a.octets())
    }
}

impl From<Ip4> for Ipv4Addr {
    #[inline]
    fn from(ip: Ip4) -> Self {
        Ipv4Addr::from(ip.octets())
    }
}

impl fmt::Display for Ip4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// Error returned when parsing an [`Ip4`] from a string fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseIp4Error;

impl fmt::Display for ParseIp4Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid IPv4 address syntax")
    }
}

impl std::error::Error for ParseIp4Error {}

impl FromStr for Ip4 {
    type Err = ParseIp4Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ipv4Addr::from_str(s)
            .map(Ip4::from)
            .map_err(|_| ParseIp4Error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octet_round_trip() {
        let a = Ip4::from_octets([1, 2, 3, 4]);
        assert_eq!(a.octets(), [1, 2, 3, 4]);
        assert_eq!(a.raw(), 0x0102_0304);
    }

    #[test]
    fn display_and_parse() {
        let a: Ip4 = "129.105.56.7".parse().unwrap();
        assert_eq!(a.to_string(), "129.105.56.7");
        assert!("not-an-ip".parse::<Ip4>().is_err());
        assert!("1.2.3.4.5".parse::<Ip4>().is_err());
    }

    #[test]
    fn std_conversion_round_trip() {
        let std_addr = Ipv4Addr::new(172, 16, 5, 9);
        let ours = Ip4::from(std_addr);
        assert_eq!(Ipv4Addr::from(ours), std_addr);
    }

    #[test]
    fn prefix_membership() {
        let net = Ip4::from([10, 20, 0, 0]);
        assert!(Ip4::from([10, 20, 255, 1]).in_prefix(net, 16));
        assert!(!Ip4::from([10, 21, 0, 1]).in_prefix(net, 16));
        assert!(Ip4::from([99, 99, 99, 99]).in_prefix(net, 0));
        let host = Ip4::from([10, 20, 1, 1]);
        assert!(host.in_prefix(host, 32));
        assert!(!Ip4::from([10, 20, 1, 2]).in_prefix(host, 32));
    }

    #[test]
    fn ordering_matches_numeric() {
        assert!(Ip4::from([1, 0, 0, 0]) < Ip4::from([2, 0, 0, 0]));
        assert!(Ip4::from([10, 0, 0, 1]) < Ip4::from([10, 0, 0, 2]));
    }
}
