//! The packet event model.
//!
//! HiFIND's data recording consumes a stream of TCP segments observed at an
//! edge router. Only the fields the detectors use are modelled: timestamp,
//! the 4-tuple, the segment kind derived from the TCP flag combination, and
//! the direction of the packet relative to the monitored network.
//!
//! The crucial subtlety (paper §3.3) is *orientation*: the sketch keyed by
//! `{DIP, Dport}` must be incremented by an inbound SYN at the service
//! endpoint and decremented by the *outbound SYN/ACK from that same service
//! endpoint* — whose source/destination fields are swapped on the wire.
//! [`Packet::orient`] normalizes a segment into client/server form so that
//! recorders never re-derive this logic.

use crate::ip::Ip4;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Direction of a packet relative to the monitored edge network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Entering the monitored network (e.g., Internet → campus).
    Inbound,
    /// Leaving the monitored network.
    Outbound,
}

impl Direction {
    /// Returns the opposite direction.
    #[inline]
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Inbound => Direction::Outbound,
            Direction::Outbound => Direction::Inbound,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::Inbound => "inbound",
            Direction::Outbound => "outbound",
        })
    }
}

/// TCP segment classification, derived from the flag byte.
///
/// HiFIND only distinguishes the handshake/teardown segments its value
/// definitions need (`#SYN`, `#SYN/ACK`, and `#FIN`/`#RST` for the CPM
/// baseline); everything else is [`SegmentKind::Other`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SegmentKind {
    /// A connection request (SYN set, ACK clear).
    Syn,
    /// A connection accept (SYN and ACK set).
    SynAck,
    /// A FIN segment (normal teardown).
    Fin,
    /// An RST segment (reset / refusal).
    Rst,
    /// Any other segment (pure ACK, data, ...).
    Other,
}

impl SegmentKind {
    /// Classifies a raw TCP flag byte (`URG|ACK|PSH|RST|SYN|FIN` low bits).
    ///
    /// RST takes precedence over FIN, matching how monitors treat
    /// simultaneous flags.
    ///
    /// # Example
    ///
    /// ```
    /// use hifind_flow::SegmentKind;
    /// assert_eq!(SegmentKind::from_flags(0b0000_0010), SegmentKind::Syn);
    /// assert_eq!(SegmentKind::from_flags(0b0001_0010), SegmentKind::SynAck);
    /// assert_eq!(SegmentKind::from_flags(0b0001_0000), SegmentKind::Other);
    /// ```
    #[inline]
    pub fn from_flags(flags: u8) -> SegmentKind {
        const FIN: u8 = 0x01;
        const SYN: u8 = 0x02;
        const RST: u8 = 0x04;
        const ACK: u8 = 0x10;
        if flags & SYN != 0 {
            if flags & ACK != 0 {
                SegmentKind::SynAck
            } else {
                SegmentKind::Syn
            }
        } else if flags & RST != 0 {
            SegmentKind::Rst
        } else if flags & FIN != 0 {
            SegmentKind::Fin
        } else {
            SegmentKind::Other
        }
    }

    /// The raw flag byte this kind canonically corresponds to.
    #[inline]
    pub fn to_flags(self) -> u8 {
        match self {
            SegmentKind::Syn => 0x02,
            SegmentKind::SynAck => 0x12,
            SegmentKind::Fin => 0x11,
            SegmentKind::Rst => 0x14,
            SegmentKind::Other => 0x10,
        }
    }
}

impl fmt::Display for SegmentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SegmentKind::Syn => "SYN",
            SegmentKind::SynAck => "SYN/ACK",
            SegmentKind::Fin => "FIN",
            SegmentKind::Rst => "RST",
            SegmentKind::Other => "OTHER",
        })
    }
}

/// A single observed TCP segment.
///
/// `src`/`dst` are as seen on the wire (so for a SYN/ACK, `src` is the
/// server). Use [`Packet::orient`] to get the client/server view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Packet {
    /// Observation timestamp in milliseconds since the trace epoch.
    pub ts_ms: u64,
    /// Source address as on the wire.
    pub src: Ip4,
    /// Destination address as on the wire.
    pub dst: Ip4,
    /// Source port as on the wire.
    pub sport: u16,
    /// Destination port as on the wire.
    pub dport: u16,
    /// Segment classification.
    pub kind: SegmentKind,
    /// Direction relative to the monitored edge.
    pub direction: Direction,
}

impl Packet {
    /// Builds an inbound SYN from `client:cport` to `server:sport`.
    pub fn syn(ts_ms: u64, client: Ip4, cport: u16, server: Ip4, sport: u16) -> Packet {
        Packet {
            ts_ms,
            src: client,
            dst: server,
            sport: cport,
            dport: sport,
            kind: SegmentKind::Syn,
            direction: Direction::Inbound,
        }
    }

    /// Builds the outbound SYN/ACK answering [`Packet::syn`] with the same
    /// endpoint arguments (fields are swapped onto the wire).
    pub fn syn_ack(ts_ms: u64, client: Ip4, cport: u16, server: Ip4, sport: u16) -> Packet {
        Packet {
            ts_ms,
            src: server,
            dst: client,
            sport,
            dport: cport,
            kind: SegmentKind::SynAck,
            direction: Direction::Outbound,
        }
    }

    /// Builds an outbound RST from `server:sport` to `client:cport`
    /// (connection refused).
    pub fn rst(ts_ms: u64, client: Ip4, cport: u16, server: Ip4, sport: u16) -> Packet {
        Packet {
            ts_ms,
            src: server,
            dst: client,
            sport,
            dport: cport,
            kind: SegmentKind::Rst,
            direction: Direction::Outbound,
        }
    }

    /// Builds an inbound FIN from `client:cport` to `server:sport`.
    pub fn fin(ts_ms: u64, client: Ip4, cport: u16, server: Ip4, sport: u16) -> Packet {
        Packet {
            ts_ms,
            src: client,
            dst: server,
            sport: cport,
            dport: sport,
            kind: SegmentKind::Fin,
            direction: Direction::Inbound,
        }
    }

    /// Normalizes this segment to client/server orientation.
    ///
    /// * For SYN (and FIN/Other) segments the wire source is the client.
    /// * For SYN/ACK and RST segments the wire source is the server, so the
    ///   endpoints are swapped back.
    ///
    /// Returns `None` only for kinds that carry no handshake meaning when a
    /// caller asked for strict orientation — currently all kinds orient, so
    /// this always returns `Some`; the `Option` is kept so that future kinds
    /// (e.g. ICMP) can opt out without breaking callers.
    #[inline]
    pub fn orient(&self) -> Option<Oriented> {
        let (client, server, client_port, server_port) = match self.kind {
            SegmentKind::SynAck | SegmentKind::Rst => (self.dst, self.src, self.dport, self.sport),
            SegmentKind::Syn | SegmentKind::Fin | SegmentKind::Other => {
                (self.src, self.dst, self.sport, self.dport)
            }
        };
        Some(Oriented {
            client,
            server,
            client_port,
            server_port,
            kind: self.kind,
            ts_ms: self.ts_ms,
        })
    }
}

/// A segment normalized to client/server orientation (see [`Packet::orient`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Oriented {
    /// Connection initiator address.
    pub client: Ip4,
    /// Service address.
    pub server: Ip4,
    /// Initiator's (usually ephemeral) port.
    pub client_port: u16,
    /// Service port.
    pub server_port: u16,
    /// Segment classification.
    pub kind: SegmentKind,
    /// Observation timestamp (milliseconds).
    pub ts_ms: u64,
}

impl Oriented {
    /// Signed sketch contribution for the paper's `#SYN − #SYN/ACK` value:
    /// `+1` for a SYN, `-1` for a SYN/ACK, `0` otherwise.
    #[inline]
    pub fn syn_minus_synack(&self) -> i64 {
        match self.kind {
            SegmentKind::Syn => 1,
            SegmentKind::SynAck => -1,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c() -> Ip4 {
        [1, 2, 3, 4].into()
    }
    fn s() -> Ip4 {
        [129, 105, 0, 80].into()
    }

    #[test]
    fn flag_classification_covers_all_combinations() {
        assert_eq!(SegmentKind::from_flags(0x02), SegmentKind::Syn);
        assert_eq!(SegmentKind::from_flags(0x12), SegmentKind::SynAck);
        assert_eq!(SegmentKind::from_flags(0x11), SegmentKind::Fin);
        assert_eq!(SegmentKind::from_flags(0x01), SegmentKind::Fin);
        assert_eq!(SegmentKind::from_flags(0x14), SegmentKind::Rst);
        assert_eq!(SegmentKind::from_flags(0x04), SegmentKind::Rst);
        assert_eq!(SegmentKind::from_flags(0x10), SegmentKind::Other);
        assert_eq!(SegmentKind::from_flags(0x00), SegmentKind::Other);
        // RST wins over FIN when both set.
        assert_eq!(SegmentKind::from_flags(0x05), SegmentKind::Rst);
    }

    #[test]
    fn flag_round_trip() {
        for kind in [
            SegmentKind::Syn,
            SegmentKind::SynAck,
            SegmentKind::Fin,
            SegmentKind::Rst,
            SegmentKind::Other,
        ] {
            assert_eq!(SegmentKind::from_flags(kind.to_flags()), kind);
        }
    }

    #[test]
    fn syn_orientation_is_identity() {
        let p = Packet::syn(10, c(), 4242, s(), 80);
        let o = p.orient().unwrap();
        assert_eq!(o.client, c());
        assert_eq!(o.server, s());
        assert_eq!(o.client_port, 4242);
        assert_eq!(o.server_port, 80);
        assert_eq!(o.syn_minus_synack(), 1);
    }

    #[test]
    fn syn_ack_orientation_swaps_endpoints() {
        let p = Packet::syn_ack(11, c(), 4242, s(), 80);
        // On the wire the server is the source...
        assert_eq!(p.src, s());
        assert_eq!(p.sport, 80);
        // ...but orientation recovers the canonical view.
        let o = p.orient().unwrap();
        assert_eq!(o.client, c());
        assert_eq!(o.server, s());
        assert_eq!(o.server_port, 80);
        assert_eq!(o.syn_minus_synack(), -1);
    }

    #[test]
    fn rst_orientation_matches_syn_ack() {
        let p = Packet::rst(12, c(), 555, s(), 22);
        let o = p.orient().unwrap();
        assert_eq!(o.client, c());
        assert_eq!(o.server, s());
        assert_eq!(o.server_port, 22);
        assert_eq!(o.syn_minus_synack(), 0);
    }

    #[test]
    fn matched_syn_and_synack_cancel() {
        let syn = Packet::syn(0, c(), 999, s(), 443).orient().unwrap();
        let ack = Packet::syn_ack(1, c(), 999, s(), 443).orient().unwrap();
        assert_eq!(syn.client, ack.client);
        assert_eq!(syn.server, ack.server);
        assert_eq!(syn.server_port, ack.server_port);
        assert_eq!(syn.syn_minus_synack() + ack.syn_minus_synack(), 0);
    }

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::Inbound.reverse(), Direction::Outbound);
        assert_eq!(Direction::Outbound.reverse(), Direction::Inbound);
    }
}
