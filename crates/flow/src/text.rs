//! Human-readable CSV trace interchange.
//!
//! The binary codec in [`crate::trace`] is compact but opaque; exporting
//! and ingesting traces as CSV makes the workloads inspectable with
//! standard tooling and lets external flow records (e.g. converted
//! netflow dumps) be replayed through the IDS. Format, one packet per
//! line, header required:
//!
//! ```csv
//! ts_ms,src,sport,dst,dport,kind,direction
//! 1500,12.0.7.9,4242,129.105.0.80,80,SYN,in
//! ```
//!
//! `kind` ∈ {SYN, SYNACK, FIN, RST, OTHER}; `direction` ∈ {in, out}.

use crate::ip::Ip4;
use crate::packet::{Direction, Packet, SegmentKind};
use crate::trace::Trace;
use std::fmt::Write as _;
use std::str::FromStr;

/// Error from [`parse_csv`], carrying the 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseCsvError {
    /// 1-based line the error occurred on.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseCsvError {}

const HEADER: &str = "ts_ms,src,sport,dst,dport,kind,direction";

fn kind_str(kind: SegmentKind) -> &'static str {
    match kind {
        SegmentKind::Syn => "SYN",
        SegmentKind::SynAck => "SYNACK",
        SegmentKind::Fin => "FIN",
        SegmentKind::Rst => "RST",
        SegmentKind::Other => "OTHER",
    }
}

/// Renders a trace as CSV (with header).
pub fn to_csv(trace: &Trace) -> String {
    let mut out = String::with_capacity(32 + trace.len() * 48);
    out.push_str(HEADER);
    out.push('\n');
    for p in trace.iter() {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            p.ts_ms,
            p.src,
            p.sport,
            p.dst,
            p.dport,
            kind_str(p.kind),
            match p.direction {
                Direction::Inbound => "in",
                Direction::Outbound => "out",
            }
        );
    }
    out
}

/// Parses a CSV trace produced by [`to_csv`] (or hand-written in the same
/// format). Blank lines are ignored; the header line is required.
///
/// # Errors
///
/// Returns [`ParseCsvError`] with the offending line number for a missing
/// or wrong header, wrong field count, or any unparseable field.
pub fn parse_csv(text: &str) -> Result<Trace, ParseCsvError> {
    let mut lines = text.lines().enumerate();
    let header = loop {
        match lines.next() {
            Some((i, l)) if l.trim().is_empty() => {
                let _ = i;
            }
            Some((i, l)) => break (i, l),
            None => {
                return Err(ParseCsvError {
                    line: 1,
                    reason: "empty input (header required)".into(),
                })
            }
        }
    };
    if header.1.trim() != HEADER {
        return Err(ParseCsvError {
            line: header.0 + 1,
            reason: format!("expected header '{HEADER}'"),
        });
    }
    let mut trace = Trace::new();
    for (i, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |reason: String| ParseCsvError {
            line: i + 1,
            reason,
        };
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 7 {
            return Err(err(format!("expected 7 fields, got {}", fields.len())));
        }
        let ts_ms: u64 = fields[0]
            .parse()
            .map_err(|_| err(format!("bad timestamp '{}'", fields[0])))?;
        let src = Ip4::from_str(fields[1])
            .map_err(|_| err(format!("bad source address '{}'", fields[1])))?;
        let sport: u16 = fields[2]
            .parse()
            .map_err(|_| err(format!("bad source port '{}'", fields[2])))?;
        let dst = Ip4::from_str(fields[3])
            .map_err(|_| err(format!("bad destination address '{}'", fields[3])))?;
        let dport: u16 = fields[4]
            .parse()
            .map_err(|_| err(format!("bad destination port '{}'", fields[4])))?;
        let kind = match fields[5] {
            "SYN" => SegmentKind::Syn,
            "SYNACK" => SegmentKind::SynAck,
            "FIN" => SegmentKind::Fin,
            "RST" => SegmentKind::Rst,
            "OTHER" => SegmentKind::Other,
            other => return Err(err(format!("unknown segment kind '{other}'"))),
        };
        let direction = match fields[6] {
            "in" => Direction::Inbound,
            "out" => Direction::Outbound,
            other => return Err(err(format!("unknown direction '{other}'"))),
        };
        trace.push(Packet {
            ts_ms,
            src,
            dst,
            sport,
            dport,
            kind,
            direction,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let c: Ip4 = [12, 0, 7, 9].into();
        let s: Ip4 = [129, 105, 0, 80].into();
        let mut t = Trace::new();
        t.push(Packet::syn(1500, c, 4242, s, 80));
        t.push(Packet::syn_ack(1520, c, 4242, s, 80));
        t.push(Packet::rst(2000, c, 4243, s, 22));
        t.push(Packet::fin(9000, c, 4242, s, 80));
        t
    }

    #[test]
    fn round_trip() {
        let t = sample();
        let csv = to_csv(&t);
        assert!(csv.starts_with(HEADER));
        let back = parse_csv(&csv).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn accepts_blank_lines_and_whitespace() {
        let csv = format!("\n{HEADER}\n\n  1 , 1.2.3.4 , 10 , 5.6.7.8 , 80 , SYN , in  \n\n");
        let t = parse_csv(&csv).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.as_slice()[0].ts_ms, 1);
    }

    #[test]
    fn rejects_missing_header() {
        let e = parse_csv("1,1.2.3.4,10,5.6.7.8,80,SYN,in").unwrap_err();
        assert!(e.reason.contains("header"));
        let e = parse_csv("").unwrap_err();
        assert!(e.reason.contains("empty input"));
    }

    #[test]
    fn rejects_bad_fields_with_line_numbers() {
        let bad_ts = format!("{HEADER}\nxx,1.2.3.4,10,5.6.7.8,80,SYN,in");
        let e = parse_csv(&bad_ts).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.reason.contains("timestamp"));

        let bad_kind = format!("{HEADER}\n1,1.2.3.4,10,5.6.7.8,80,ACK,in");
        assert!(parse_csv(&bad_kind).unwrap_err().reason.contains("kind"));

        let bad_dir = format!("{HEADER}\n1,1.2.3.4,10,5.6.7.8,80,SYN,sideways");
        assert!(parse_csv(&bad_dir)
            .unwrap_err()
            .reason
            .contains("direction"));

        let short = format!("{HEADER}\n1,1.2.3.4,10");
        assert!(parse_csv(&short).unwrap_err().reason.contains("7 fields"));

        let bad_port = format!("{HEADER}\n1,1.2.3.4,99999,5.6.7.8,80,SYN,in");
        assert!(parse_csv(&bad_port).unwrap_err().reason.contains("port"));
    }

    #[test]
    fn error_display_contains_line() {
        let e = ParseCsvError {
            line: 7,
            reason: "boom".into(),
        };
        assert_eq!(e.to_string(), "line 7: boom");
    }
}
