//! Fixed-width time windowing of packet streams.
//!
//! HiFIND's detection runs once per interval (default one minute in the
//! paper). [`Intervalizer`] slices a time-ordered packet slice into
//! consecutive `[k·T, (k+1)·T)` windows, yielding empty windows too so that
//! time-series forecasting sees every tick.

use crate::packet::Packet;

/// An iterator over fixed-width time windows of a packet slice.
///
/// Windows are aligned to the first packet's timestamp rounded down to a
/// multiple of the interval, and every window in the span is yielded —
/// including empty ones — so EWMA forecasting advances uniformly in time.
///
/// # Example
///
/// ```
/// use hifind_flow::{Packet, Trace};
///
/// let mut t = Trace::new();
/// t.push(Packet::syn(0, [1, 1, 1, 1].into(), 1, [2, 2, 2, 2].into(), 80));
/// t.push(Packet::syn(130_000, [1, 1, 1, 1].into(), 2, [2, 2, 2, 2].into(), 80));
/// let windows: Vec<_> = t.intervals(60_000).collect();
/// assert_eq!(windows.len(), 3); // minutes 0, 1 (empty), 2
/// assert_eq!(windows[1].packets.len(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct Intervalizer<'a> {
    packets: &'a [Packet],
    interval_ms: u64,
    cursor: usize,
    next_start: u64,
    end: u64,
    done: bool,
}

impl<'a> Intervalizer<'a> {
    /// Creates a windower over a time-ordered packet slice.
    ///
    /// # Panics
    ///
    /// Panics if `interval_ms == 0`. Debug-asserts time order.
    pub fn new(packets: &'a [Packet], interval_ms: u64) -> Self {
        assert!(interval_ms > 0, "interval must be positive");
        debug_assert!(
            packets.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms),
            "packets must be time ordered"
        );
        let (start, end) = match (packets.first(), packets.last()) {
            (Some(f), Some(l)) => ((f.ts_ms / interval_ms) * interval_ms, l.ts_ms),
            _ => (0, 0),
        };
        Intervalizer {
            packets,
            interval_ms,
            cursor: 0,
            next_start: start,
            end,
            done: packets.is_empty(),
        }
    }

    /// The configured interval width in milliseconds.
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }
}

/// One time window produced by [`Intervalizer`].
#[derive(Clone, Copy, Debug)]
pub struct IntervalIter<'a> {
    /// Window start (inclusive), milliseconds.
    pub start_ms: u64,
    /// Window end (exclusive), milliseconds.
    pub end_ms: u64,
    /// Zero-based window index since the start of the trace.
    pub index: u64,
    /// Packets whose timestamps fall in `[start_ms, end_ms)`.
    pub packets: &'a [Packet],
}

impl<'a> Iterator for Intervalizer<'a> {
    type Item = IntervalIter<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let start = self.next_start;
        let end = start + self.interval_ms;
        let lo = self.cursor;
        let mut hi = lo;
        while hi < self.packets.len() && self.packets[hi].ts_ms < end {
            hi += 1;
        }
        self.cursor = hi;
        let index = (start - (self.packets[0].ts_ms / self.interval_ms) * self.interval_ms)
            / self.interval_ms;
        let item = IntervalIter {
            start_ms: start,
            end_ms: end,
            index,
            packets: &self.packets[lo..hi],
        };
        if end > self.end {
            self.done = true;
        } else {
            self.next_start = end;
        }
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    fn pkt(ts: u64) -> Packet {
        Packet::syn(ts, [1, 1, 1, 1].into(), 1, [2, 2, 2, 2].into(), 80)
    }

    #[test]
    fn empty_slice_yields_nothing() {
        let mut it = Intervalizer::new(&[], 1000);
        assert!(it.next().is_none());
    }

    #[test]
    fn single_packet_single_window() {
        let packets = [pkt(500)];
        let windows: Vec<_> = Intervalizer::new(&packets, 1000).collect();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].start_ms, 0);
        assert_eq!(windows[0].end_ms, 1000);
        assert_eq!(windows[0].packets.len(), 1);
        assert_eq!(windows[0].index, 0);
    }

    #[test]
    fn windows_are_left_closed_right_open() {
        let packets = [pkt(0), pkt(999), pkt(1000)];
        let windows: Vec<_> = Intervalizer::new(&packets, 1000).collect();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].packets.len(), 2);
        assert_eq!(windows[1].packets.len(), 1);
    }

    #[test]
    fn empty_intermediate_windows_are_yielded() {
        let packets = [pkt(0), pkt(3500)];
        let windows: Vec<_> = Intervalizer::new(&packets, 1000).collect();
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[1].packets.len(), 0);
        assert_eq!(windows[2].packets.len(), 0);
        let indices: Vec<u64> = windows.iter().map(|w| w.index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3]);
    }

    #[test]
    fn alignment_to_interval_multiple() {
        let packets = [pkt(61_500), pkt(62_000)];
        let windows: Vec<_> = Intervalizer::new(&packets, 60_000).collect();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].start_ms, 60_000);
        assert_eq!(windows[0].packets.len(), 2);
    }

    #[test]
    fn all_packets_distributed_exactly_once() {
        let packets: Vec<Packet> = (0..100).map(|i| pkt(i * 137)).collect();
        let total: usize = Intervalizer::new(&packets, 500)
            .map(|w| w.packets.len())
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        let _ = Intervalizer::new(&[], 0);
    }
}
