//! Hashing substrate for HiFIND's sketches.
//!
//! Three building blocks:
//!
//! * [`PairwiseHasher`] — a seeded multiply-shift universal hash from a
//!   64-bit key to a power-of-two bucket range. Used by the plain k-ary
//!   sketch, the verification sketches, and both axes of the 2D sketch.
//! * [`ModularHash`] — the *modular hashing* of the reversible sketch
//!   (Schweller et al.): the key is split into `q` 8-bit words, each word is
//!   hashed independently through a random table to a small chunk of index
//!   bits, and the bucket index is the concatenation of the chunks. Because
//!   each word is hashed independently, the mapping can be run backwards
//!   word-by-word during INFERENCE.
//! * [`Mangler`] — the bijective *IP mangling* transform applied before
//!   modular hashing so that structured key spaces (sequential addresses,
//!   shared prefixes) do not concentrate in a few buckets. It is invertible,
//!   so inferred keys can be un-mangled back to real addresses/ports.
//!
//! All constructions are deterministic from explicit `u64` seeds (via
//! [`hifind_flow::rng::SplitMix64`]), which makes experiments reproducible
//! while keeping the seeds secret-capable: an attacker who cannot read the
//! seeds cannot engineer collisions (paper §3.5).
//!
//! # Example
//!
//! ```
//! use hifind_hashing::{BucketHasher, PairwiseHasher};
//!
//! let h = PairwiseHasher::from_seed(0xC0FFEE, 1 << 12);
//! let b = h.bucket(0xDEAD_BEEF);
//! assert!(b < h.num_buckets());
//! assert_eq!(b, h.bucket(0xDEAD_BEEF)); // deterministic
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod mangle;
pub mod modular;
pub mod pairwise;

pub use bloom::BloomFilter;
pub use mangle::Mangler;
pub use modular::{ModularHash, ModularHashError};
pub use pairwise::PairwiseHasher;

/// A hash from a packed key to a bucket index in `[0, num_buckets)`.
///
/// Implemented by [`PairwiseHasher`] and [`ModularHash`]; sketches are
/// generic over it so the same k-ary machinery serves both plain and
/// reversible configurations.
pub trait BucketHasher {
    /// Maps a packed key to a bucket index.
    fn bucket(&self, key: u64) -> usize;

    /// Number of buckets (always a power of two).
    fn num_buckets(&self) -> usize;
}
