//! Seeded multiply-shift universal hashing.

use crate::BucketHasher;
use hifind_flow::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// A 64-bit multiply-shift hash into a power-of-two bucket range.
///
/// `h(k) = ((a·k + b) mod 2^64) >> (64 − log2 m)` with odd `a`. This family
/// is universal for the top bits, which is what the k-ary sketch's accuracy
/// analysis needs, and it is 2–3 ALU ops per packet — consistent with the
/// paper's "small number of memory accesses per packet" constraint (the hash
/// itself touches no memory).
///
/// An extra finalizing mix is applied before the multiply so that keys that
/// differ only in high bits still spread over buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairwiseHasher {
    a: u64,
    b: u64,
    shift: u32,
    num_buckets: usize,
}

impl PairwiseHasher {
    /// Creates a hasher into `num_buckets` buckets using randomness from
    /// `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `num_buckets` is not a power of two or is zero.
    pub fn new(rng: &mut SplitMix64, num_buckets: usize) -> Self {
        assert!(
            num_buckets.is_power_of_two(),
            "bucket count must be a power of two, got {num_buckets}"
        );
        let log_m = num_buckets.trailing_zeros();
        PairwiseHasher {
            a: rng.next_u64() | 1, // odd
            b: rng.next_u64(),
            shift: 64 - log_m,
            num_buckets,
        }
    }

    /// Creates a hasher directly from a seed (convenience over [`Self::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `num_buckets` is not a power of two.
    pub fn from_seed(seed: u64, num_buckets: usize) -> Self {
        PairwiseHasher::new(&mut SplitMix64::new(seed), num_buckets)
    }

    /// The seed-independent pre-mix applied to every key before the
    /// multiply-shift: it spreads low-entropy keys (ports, small counters)
    /// and is the same for *every* hasher, so callers updating several
    /// sketches with one key can compute it once per packet and feed
    /// [`Self::bucket_premixed`] instead of [`BucketHasher::bucket`].
    #[inline]
    #[must_use]
    pub fn premix(key: u64) -> u64 {
        let mut k = key;
        k ^= k >> 33;
        k.wrapping_mul(0xFF51_AFD7_ED55_8CCD)
    }

    /// The multiply-shift parameters `(a, b, shift)` behind
    /// [`Self::bucket_premixed`], for kernels that finish a whole batch of
    /// premixed keys at once: `bucket = ((premixed·a + b) mod 2⁶⁴) >> shift`
    /// with `shift >= 64` mapping everything to bucket 0. Any batch finish
    /// must agree with [`Self::bucket_premixed`] bit-for-bit.
    #[inline]
    #[must_use]
    pub fn coefficients(&self) -> (u64, u64, u32) {
        (self.a, self.b, self.shift)
    }

    /// Bucket for a key whose [`Self::premix`] was already computed.
    /// `h.bucket_premixed(PairwiseHasher::premix(k)) == h.bucket(k)` for
    /// every key.
    #[inline]
    pub fn bucket_premixed(&self, premixed: u64) -> usize {
        let h = premixed.wrapping_mul(self.a).wrapping_add(self.b);
        if self.shift >= 64 {
            0
        } else {
            (h >> self.shift) as usize
        }
    }
}

impl BucketHasher for PairwiseHasher {
    #[inline]
    fn bucket(&self, key: u64) -> usize {
        self.bucket_premixed(Self::premix(key))
    }

    #[inline]
    fn num_buckets(&self) -> usize {
        self.num_buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_in_range() {
        let h = PairwiseHasher::from_seed(1, 1 << 12);
        for k in 0..10_000u64 {
            assert!(h.bucket(k) < 1 << 12);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let h1 = PairwiseHasher::from_seed(9, 256);
        let h2 = PairwiseHasher::from_seed(9, 256);
        for k in [0u64, 1, u64::MAX, 0x1234_5678] {
            assert_eq!(h1.bucket(k), h2.bucket(k));
        }
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let h1 = PairwiseHasher::from_seed(1, 1 << 16);
        let h2 = PairwiseHasher::from_seed(2, 1 << 16);
        let diffs = (0..1000u64)
            .filter(|&k| h1.bucket(k) != h2.bucket(k))
            .count();
        assert!(diffs > 900, "only {diffs} of 1000 keys differ");
    }

    #[test]
    fn sequential_keys_spread_evenly() {
        // Sequential IPs are the adversarial-ish structured input; the
        // pre-mix must spread them.
        let m = 1 << 10;
        let h = PairwiseHasher::from_seed(42, m);
        let mut counts = vec![0u32; m];
        let n = 100 * m as u64;
        for k in 0..n {
            counts[h.bucket(k)] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let mean = n as f64 / m as f64;
        assert!(max < mean * 2.0, "max load {max} vs mean {mean}");
    }

    #[test]
    fn premixed_bucket_matches_plain_bucket() {
        // The split premix/finish path must agree with bucket() exactly —
        // the recorder's per-packet hash plan relies on it.
        for seed in 0..8u64 {
            let h = PairwiseHasher::from_seed(seed, 1 << (seed % 16 + 1));
            for k in [0u64, 1, 80, 0xFFFF, 0x1234_5678_9ABC, u64::MAX] {
                assert_eq!(h.bucket_premixed(PairwiseHasher::premix(k)), h.bucket(k));
            }
        }
    }

    #[test]
    fn single_bucket_degenerate_case() {
        let h = PairwiseHasher::from_seed(5, 1);
        assert_eq!(h.bucket(123), 0);
        assert_eq!(h.num_buckets(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = PairwiseHasher::from_seed(1, 1000);
    }
}
