//! A compact Bloom filter.
//!
//! HiFIND's phase-3 heuristics (paper §3.4) need to know whether a flooding
//! victim was ever an *active service* (emitted a SYN/ACK) without keeping
//! per-service state — a per-key table would reintroduce exactly the DoS
//! surface sketches remove. A Bloom filter gives one-sided error: an
//! actually-active service is never reported inactive, so the filter can
//! only *keep* (never wrongly drop) true flooding alerts.

use hifind_flow::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// A fixed-size Bloom filter over packed `u64` keys.
///
/// # Example
///
/// ```
/// use hifind_hashing::BloomFilter;
///
/// let mut bloom = BloomFilter::new(1 << 16, 4, 7);
/// bloom.insert(42);
/// assert!(bloom.contains(42));
/// assert!(!bloom.contains(43)); // (with high probability)
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>,
    mask: u64,
    seeds: Vec<u64>,
    inserted: u64,
}

impl BloomFilter {
    /// Creates a filter with `bit_count` bits (power of two) and `hashes`
    /// hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `bit_count` is not a power of two or `hashes == 0`.
    pub fn new(bit_count: usize, hashes: usize, seed: u64) -> Self {
        assert!(
            bit_count.is_power_of_two() && bit_count >= 64,
            "bit count must be a power of two >= 64"
        );
        assert!(hashes > 0, "need at least one hash function");
        let mut rng = SplitMix64::new(seed);
        BloomFilter {
            bits: vec![0; bit_count / 64],
            mask: bit_count as u64 - 1,
            seeds: (0..hashes).map(|_| rng.next_u64() | 1).collect(),
            inserted: 0,
        }
    }

    /// Inserts a key.
    #[inline]
    pub fn insert(&mut self, key: u64) {
        for &s in &self.seeds {
            let bit = key.wrapping_mul(s).rotate_left(31) & self.mask;
            self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
        self.inserted += 1;
    }

    /// Tests membership (no false negatives; false positives possible).
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.seeds.iter().all(|&s| {
            let bit = key.wrapping_mul(s).rotate_left(31) & self.mask;
            self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Number of insert operations performed (not distinct keys).
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Fraction of bits set — a saturation indicator.
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / (self.bits.len() * 64) as f64
    }

    /// Merges another filter into this one (bitwise OR). Both filters must
    /// share size, hash count and seed so their bit positions agree.
    ///
    /// # Panics
    ///
    /// Panics if the filters are not structurally identical.
    pub fn union(&mut self, other: &BloomFilter) {
        assert_eq!(self.bits.len(), other.bits.len(), "bloom sizes differ");
        assert_eq!(self.seeds, other.seeds, "bloom seeds differ");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
        self.inserted += other.inserted;
    }

    /// Clears the filter.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }

    /// The raw bit words (64 bits each), for wire codecs.
    pub fn bit_words(&self) -> &[u64] {
        &self.bits
    }

    /// The per-hash-function seeds, for wire codecs.
    pub fn hash_seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Rebuilds a filter from its serialized parts (the decode half of a
    /// wire codec, so it validates instead of panicking).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated structural constraint:
    /// the word count must be a power of two (≥ 1 word = 64 bits) and at
    /// least one hash seed is required.
    pub fn from_parts(bits: Vec<u64>, seeds: Vec<u64>, inserted: u64) -> Result<Self, String> {
        if bits.is_empty() || !bits.len().is_power_of_two() {
            return Err(format!(
                "bloom word count {} is not a power of two >= 1",
                bits.len()
            ));
        }
        if seeds.is_empty() {
            return Err("bloom filter needs at least one hash seed".into());
        }
        let mask = (bits.len() as u64) * 64 - 1;
        Ok(BloomFilter {
            bits,
            mask,
            seeds,
            inserted,
        })
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = BloomFilter::new(1 << 16, 4, 1);
        for k in 0..1000u64 {
            b.insert(k * 7919);
        }
        for k in 0..1000u64 {
            assert!(b.contains(k * 7919));
        }
    }

    #[test]
    fn low_false_positive_rate_when_sized_right() {
        let mut b = BloomFilter::new(1 << 16, 4, 2);
        for k in 0..2000u64 {
            b.insert(k);
        }
        let fps = (1_000_000..1_010_000u64).filter(|&k| b.contains(k)).count();
        assert!(fps < 200, "false positive count {fps} too high");
    }

    #[test]
    fn clear_resets() {
        let mut b = BloomFilter::new(1 << 10, 3, 3);
        b.insert(5);
        b.clear();
        assert!(!b.contains(5));
        assert_eq!(b.inserted(), 0);
        assert_eq!(b.fill_ratio(), 0.0);
    }

    #[test]
    fn fill_ratio_grows() {
        let mut b = BloomFilter::new(1 << 10, 3, 4);
        let before = b.fill_ratio();
        for k in 0..100u64 {
            b.insert(k);
        }
        assert!(b.fill_ratio() > before);
        assert_eq!(b.memory_bytes(), 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_size() {
        let _ = BloomFilter::new(1000, 3, 0);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut b = BloomFilter::new(1 << 10, 3, 9);
        for k in 0..50u64 {
            b.insert(k * 31);
        }
        let back = BloomFilter::from_parts(
            b.bit_words().to_vec(),
            b.hash_seeds().to_vec(),
            b.inserted(),
        )
        .unwrap();
        assert_eq!(back, b);
        for k in 0..50u64 {
            assert!(back.contains(k * 31));
        }
    }

    #[test]
    fn from_parts_validates_structure() {
        assert!(BloomFilter::from_parts(vec![], vec![1], 0).is_err());
        assert!(BloomFilter::from_parts(vec![0; 3], vec![1], 0).is_err());
        assert!(BloomFilter::from_parts(vec![0; 4], vec![], 0).is_err());
    }
}
