//! Bijective key mangling ("IP mangling").
//!
//! Modular hashing sacrifices inter-word mixing: two keys sharing a byte
//! share that word's index chunk in every stage. Real traffic is highly
//! structured (campus prefixes, sequential scans), which would both skew
//! bucket loads and inflate the candidate sets during inference. The
//! reversible-sketch papers therefore first *mangle* the key with a
//! bijection over the key space, hash the mangled key, and un-mangle
//! whatever inference recovers.
//!
//! We implement the affine bijection `k' = (a·k + b) mod 2^n` with odd `a`,
//! which is invertible via the 2-adic inverse of `a`. This preserves the
//! paper's requirements: bijective (no information loss), cheap (one
//! multiply), seeded (attacker cannot predict it), and spreading
//! (multiplication by a random odd constant diffuses low-order structure
//! across all words).

use hifind_flow::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// A bijective affine transform over `n`-bit keys.
///
/// # Example
///
/// ```
/// use hifind_hashing::Mangler;
/// use hifind_flow::rng::SplitMix64;
///
/// let m = Mangler::new(&mut SplitMix64::new(7), 48);
/// let key = 0x1234_5678_9ABCu64;
/// assert_eq!(m.unmangle(m.mangle(key)), key);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mangler {
    a: u64,
    a_inv: u64,
    b: u64,
    mask: u64,
}

impl Mangler {
    /// Creates a mangler over `key_bits`-wide keys.
    ///
    /// # Panics
    ///
    /// Panics if `key_bits` is 0 or greater than 64.
    pub fn new(rng: &mut SplitMix64, key_bits: u32) -> Self {
        assert!(
            (1..=64).contains(&key_bits),
            "key width must be in 1..=64, got {key_bits}"
        );
        let mask = if key_bits == 64 {
            u64::MAX
        } else {
            (1u64 << key_bits) - 1
        };
        let a = (rng.next_u64() | 1) & mask | 1; // odd, within width
        let a_inv = inverse_pow2(a) & mask;
        let b = rng.next_u64() & mask;
        Mangler { a, a_inv, b, mask }
    }

    /// The identity mangler (for ablations with mangling disabled).
    pub fn identity(key_bits: u32) -> Self {
        assert!((1..=64).contains(&key_bits));
        let mask = if key_bits == 64 {
            u64::MAX
        } else {
            (1u64 << key_bits) - 1
        };
        Mangler {
            a: 1,
            a_inv: 1,
            b: 0,
            mask,
        }
    }

    /// Applies the forward transform.
    #[inline]
    pub fn mangle(&self, key: u64) -> u64 {
        debug_assert!(key & !self.mask == 0, "key exceeds configured width");
        key.wrapping_mul(self.a).wrapping_add(self.b) & self.mask
    }

    /// Applies the inverse transform: `unmangle(mangle(k)) == k` for all
    /// in-width `k`.
    #[inline]
    pub fn unmangle(&self, mangled: u64) -> u64 {
        mangled.wrapping_sub(self.b).wrapping_mul(self.a_inv) & self.mask
    }
}

/// Computes the multiplicative inverse of an odd `a` modulo 2^64 by Newton
/// iteration (five steps double the correct bits from 5 to 64+).
fn inverse_pow2(a: u64) -> u64 {
    debug_assert!(a & 1 == 1, "only odd numbers are invertible mod 2^64");
    let mut x = a; // correct to 3 bits (a * a ≡ 1 mod 8 for odd a)
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_pow2_is_correct() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            let a = rng.next_u64() | 1;
            assert_eq!(a.wrapping_mul(inverse_pow2(a)), 1);
        }
    }

    #[test]
    fn round_trip_all_widths() {
        let mut rng = SplitMix64::new(2);
        for bits in [8u32, 16, 32, 48, 64] {
            let m = Mangler::new(&mut rng, bits);
            let mask = if bits == 64 {
                u64::MAX
            } else {
                (1 << bits) - 1
            };
            for _ in 0..1000 {
                let k = rng.next_u64() & mask;
                assert_eq!(m.unmangle(m.mangle(k)), k, "width {bits}");
                assert!(m.mangle(k) <= mask);
            }
        }
    }

    #[test]
    fn is_a_bijection_on_small_width() {
        let m = Mangler::new(&mut SplitMix64::new(3), 16);
        let mut seen = vec![false; 1 << 16];
        for k in 0..(1u64 << 16) {
            let v = m.mangle(k) as usize;
            assert!(!seen[v], "collision at {k}");
            seen[v] = true;
        }
    }

    #[test]
    fn identity_mangler_is_identity() {
        let m = Mangler::identity(48);
        for k in [0u64, 1, 42, (1 << 48) - 1] {
            assert_eq!(m.mangle(k), k);
            assert_eq!(m.unmangle(k), k);
        }
    }

    #[test]
    fn mangling_diffuses_sequential_keys() {
        // Sequential keys (a scan) should not stay sequential in any byte.
        let m = Mangler::new(&mut SplitMix64::new(4), 32);
        let mut top_bytes = std::collections::HashSet::new();
        for k in 0..256u64 {
            top_bytes.insert((m.mangle(k) >> 24) as u8);
        }
        // An identity transform would give exactly 1 distinct top byte.
        assert!(top_bytes.len() > 32, "only {} top bytes", top_bytes.len());
    }

    #[test]
    fn deterministic_from_seed() {
        let m1 = Mangler::new(&mut SplitMix64::new(5), 48);
        let m2 = Mangler::new(&mut SplitMix64::new(5), 48);
        assert_eq!(m1, m2);
    }

    #[test]
    #[should_panic(expected = "key width")]
    fn zero_width_panics() {
        let _ = Mangler::new(&mut SplitMix64::new(0), 0);
    }
}
