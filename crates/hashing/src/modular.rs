//! Modular (word-wise) hashing for reversible sketches.
//!
//! A reversible sketch must support INFERENCE: given the set of heavy
//! buckets, recover the keys that were updated into them. A monolithic hash
//! would force enumerating the whole key space. Modular hashing (Schweller
//! et al., IMC'04 / Infocom'06) instead splits the `n`-bit key into `q`
//! words of 8 bits and hashes each word *independently* through a random
//! table into `r = log2(m)/q` index bits; the bucket index is the
//! concatenation of the per-word chunks:
//!
//! ```text
//! key  = w_{q-1} | ... | w_1 | w_0          (8 bits each)
//! idx  = T_{q-1}[w_{q-1}] | ... | T_0[w_0]  (r bits each)
//! ```
//!
//! Inference then works word-by-word: for each word position, only the 256
//! possible byte values need to be tested against the heavy buckets' index
//! chunks, and candidates are intersected across the `H` independent stages
//! (see `hifind_sketch::reversible`).

use crate::BucketHasher;
use hifind_flow::rng::SplitMix64;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from [`ModularHash::new`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModularHashError {
    /// Key width must be a non-zero multiple of 8 and at most 64.
    BadKeyBits(u32),
    /// Bucket count must be a power of two.
    BadBucketCount(usize),
    /// `log2(num_buckets)` must be divisible by the number of key words so
    /// every word gets the same number of index bits.
    IndivisibleIndexBits {
        /// log2 of the bucket count.
        index_bits: u32,
        /// Number of 8-bit key words.
        words: u32,
    },
}

impl fmt::Display for ModularHashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModularHashError::BadKeyBits(b) => {
                write!(f, "key width {b} is not a multiple of 8 in 8..=64")
            }
            ModularHashError::BadBucketCount(m) => {
                write!(f, "bucket count {m} is not a power of two")
            }
            ModularHashError::IndivisibleIndexBits { index_bits, words } => write!(
                f,
                "index bits {index_bits} not divisible by {words} key words"
            ),
        }
    }
}

impl std::error::Error for ModularHashError {}

/// One stage of modular hashing: per-word random tables plus precomputed
/// reverse tables for inference.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModularHash {
    key_bits: u32,
    words: u32,
    chunk_bits: u32,
    num_buckets: usize,
    /// `tables[j][w]` = index chunk for byte value `w` at word position `j`
    /// (position 0 = least significant byte).
    tables: Vec<Vec<u16>>,
    /// `reverse[j][c]` = all byte values mapping to chunk `c` at position `j`.
    reverse: Vec<Vec<Vec<u8>>>,
}

impl ModularHash {
    /// Creates a modular hash for `key_bits`-wide keys into `num_buckets`
    /// buckets, with randomness drawn from `rng`.
    ///
    /// # Errors
    ///
    /// See [`ModularHashError`] for the validity conditions. The paper's
    /// configurations — 48-bit keys into 2^12 buckets (6 words × 2 bits) and
    /// 64-bit keys into 2^16 buckets (8 words × 2 bits) — are both valid.
    pub fn new(
        rng: &mut SplitMix64,
        key_bits: u32,
        num_buckets: usize,
    ) -> Result<Self, ModularHashError> {
        if key_bits == 0 || key_bits > 64 || !key_bits.is_multiple_of(8) {
            return Err(ModularHashError::BadKeyBits(key_bits));
        }
        if !num_buckets.is_power_of_two() || num_buckets < 2 {
            return Err(ModularHashError::BadBucketCount(num_buckets));
        }
        let words = key_bits / 8;
        let index_bits = num_buckets.trailing_zeros();
        if !index_bits.is_multiple_of(words) {
            return Err(ModularHashError::IndivisibleIndexBits { index_bits, words });
        }
        let chunk_bits = index_bits / words;
        let chunk_count = 1usize << chunk_bits;
        let mut tables = Vec::with_capacity(words as usize);
        let mut reverse = Vec::with_capacity(words as usize);
        for _ in 0..words {
            let mut table = Vec::with_capacity(256);
            let mut rev = vec![Vec::new(); chunk_count];
            // Balanced random table: each chunk value receives exactly
            // 256 / 2^chunk_bits byte values (a random balanced function
            // keeps per-stage bucket loads even and caps the reverse-set
            // size, which bounds inference work).
            let mut assignment: Vec<u16> = (0..256u32)
                .map(|i| (i % chunk_count as u32) as u16)
                .collect();
            rng.shuffle(&mut assignment);
            for (byte, &chunk) in assignment.iter().enumerate() {
                table.push(chunk);
                rev[chunk as usize].push(byte as u8);
            }
            tables.push(table);
            reverse.push(rev);
        }
        Ok(ModularHash {
            key_bits,
            words,
            chunk_bits,
            num_buckets,
            tables,
            reverse,
        })
    }

    /// Key width in bits.
    pub fn key_bits(&self) -> u32 {
        self.key_bits
    }

    /// Number of 8-bit words the key splits into.
    pub fn words(&self) -> u32 {
        self.words
    }

    /// Index bits contributed by each word.
    pub fn chunk_bits(&self) -> u32 {
        self.chunk_bits
    }

    /// The index chunk a byte value maps to at a word position.
    ///
    /// # Panics
    ///
    /// Panics if `word_pos >= self.words()`.
    #[inline]
    pub fn chunk(&self, word_pos: u32, byte: u8) -> u16 {
        self.tables[word_pos as usize][byte as usize]
    }

    /// All byte values mapping to `chunk` at `word_pos` — the inference
    /// primitive.
    ///
    /// # Panics
    ///
    /// Panics if `word_pos >= self.words()` or `chunk` exceeds the chunk
    /// range.
    #[inline]
    pub fn bytes_for_chunk(&self, word_pos: u32, chunk: u16) -> &[u8] {
        &self.reverse[word_pos as usize][chunk as usize]
    }

    /// Extracts the index chunk for `word_pos` from a full bucket index.
    #[inline]
    pub fn index_chunk(&self, bucket: usize, word_pos: u32) -> u16 {
        ((bucket >> (self.chunk_bits * word_pos)) & ((1 << self.chunk_bits) - 1)) as u16
    }

    /// Bucket from the key's little-endian byte decomposition
    /// (`key.to_le_bytes()`). Equals [`BucketHasher::bucket`] on the same
    /// key; a reversible sketch decomposes the mangled key once and feeds
    /// all of its stages from the shared bytes instead of re-extracting
    /// them per stage.
    #[inline]
    pub fn bucket_of_bytes(&self, bytes: &[u8; 8]) -> usize {
        let mut idx = 0usize;
        for (j, table) in self.tables.iter().enumerate() {
            idx |= (table[bytes[j] as usize] as usize) << (self.chunk_bits as usize * j);
        }
        idx
    }
}

impl BucketHasher for ModularHash {
    #[inline]
    fn bucket(&self, key: u64) -> usize {
        debug_assert!(
            self.key_bits == 64 || key >> self.key_bits == 0,
            "key wider than configured width"
        );
        let mut idx = 0usize;
        for j in 0..self.words {
            let byte = ((key >> (8 * j)) & 0xFF) as u8;
            idx |= (self.tables[j as usize][byte as usize] as usize) << (self.chunk_bits * j);
        }
        idx
    }

    #[inline]
    fn num_buckets(&self) -> usize {
        self.num_buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(key_bits: u32, m: usize, seed: u64) -> ModularHash {
        ModularHash::new(&mut SplitMix64::new(seed), key_bits, m).unwrap()
    }

    #[test]
    fn paper_configurations_are_valid() {
        // 48-bit RS: 2^12 buckets (6 words x 2 bits).
        let h48 = mk(48, 1 << 12, 1);
        assert_eq!(h48.words(), 6);
        assert_eq!(h48.chunk_bits(), 2);
        // 64-bit RS: 2^16 buckets (8 words x 2 bits).
        let h64 = mk(64, 1 << 16, 2);
        assert_eq!(h64.words(), 8);
        assert_eq!(h64.chunk_bits(), 2);
    }

    #[test]
    fn rejects_invalid_configs() {
        let mut rng = SplitMix64::new(0);
        assert!(matches!(
            ModularHash::new(&mut rng, 12, 1 << 12),
            Err(ModularHashError::BadKeyBits(12))
        ));
        assert!(matches!(
            ModularHash::new(&mut rng, 0, 1 << 12),
            Err(ModularHashError::BadKeyBits(0))
        ));
        assert!(matches!(
            ModularHash::new(&mut rng, 48, 1000),
            Err(ModularHashError::BadBucketCount(1000))
        ));
        // 2^13 bits over 6 words: 13 % 6 != 0.
        assert!(matches!(
            ModularHash::new(&mut rng, 48, 1 << 13),
            Err(ModularHashError::IndivisibleIndexBits { .. })
        ));
        // Error messages are non-empty and lowercase-ish.
        let e = ModularHash::new(&mut rng, 48, 1000).unwrap_err();
        assert!(e.to_string().contains("power of two"));
    }

    #[test]
    fn bucket_in_range_and_deterministic() {
        let h = mk(48, 1 << 12, 7);
        let h2 = mk(48, 1 << 12, 7);
        for k in [0u64, 1, (1 << 48) - 1, 0x1234_5678_9ABC] {
            let b = h.bucket(k);
            assert!(b < 1 << 12);
            assert_eq!(b, h2.bucket(k));
        }
    }

    #[test]
    fn bucket_of_bytes_matches_bucket() {
        for (bits, m, seed) in [
            (48u32, 1usize << 12, 10u64),
            (64, 1 << 16, 11),
            (16, 1 << 12, 12),
        ] {
            let h = mk(bits, m, seed);
            let mask = if bits == 64 {
                u64::MAX
            } else {
                (1 << bits) - 1
            };
            let mut rng = SplitMix64::new(seed ^ 0xABCD);
            for _ in 0..200 {
                let k = rng.next_u64() & mask;
                assert_eq!(h.bucket_of_bytes(&k.to_le_bytes()), h.bucket(k));
            }
        }
    }

    #[test]
    fn index_is_concatenation_of_chunks() {
        let h = mk(48, 1 << 12, 3);
        let key = 0x0102_0304_0506u64;
        let bucket = h.bucket(key);
        for j in 0..h.words() {
            let byte = ((key >> (8 * j)) & 0xFF) as u8;
            assert_eq!(h.index_chunk(bucket, j), h.chunk(j, byte));
        }
    }

    #[test]
    fn reverse_tables_are_exact_preimages() {
        let h = mk(48, 1 << 12, 4);
        for j in 0..h.words() {
            let mut seen = 0usize;
            for chunk in 0..(1u16 << h.chunk_bits()) {
                for &b in h.bytes_for_chunk(j, chunk) {
                    assert_eq!(h.chunk(j, b), chunk);
                    seen += 1;
                }
            }
            assert_eq!(seen, 256, "every byte value appears exactly once");
        }
    }

    #[test]
    fn tables_are_balanced() {
        let h = mk(64, 1 << 16, 5);
        let per_chunk = 256 >> h.chunk_bits();
        for j in 0..h.words() {
            for chunk in 0..(1u16 << h.chunk_bits()) {
                assert_eq!(h.bytes_for_chunk(j, chunk).len(), per_chunk);
            }
        }
    }

    #[test]
    fn word_locality_affects_only_its_chunk() {
        // Changing one key byte must change only that word's index chunk.
        let h = mk(48, 1 << 12, 6);
        let k1 = 0x0000_0000_0000u64;
        let k2 = 0x0000_0000_00FFu64; // differs in word 0 only
        let b1 = h.bucket(k1);
        let b2 = h.bucket(k2);
        for j in 1..h.words() {
            assert_eq!(h.index_chunk(b1, j), h.index_chunk(b2, j));
        }
    }

    #[test]
    fn distribution_over_buckets_is_reasonable() {
        let h = mk(48, 1 << 12, 8);
        let mut counts = vec![0u32; 1 << 12];
        let mut rng = SplitMix64::new(99);
        let n = 1 << 18;
        for _ in 0..n {
            counts[h.bucket(rng.next_u64() & ((1 << 48) - 1))] += 1;
        }
        let mean = n as f64 / (1 << 12) as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max < mean * 3.0, "max load {max} vs mean {mean}");
    }

    #[test]
    fn small_key_config() {
        // 16-bit keys (Dport) into 2^12 buckets: 2 words x 6 bits.
        let h = mk(16, 1 << 12, 9);
        assert_eq!(h.words(), 2);
        assert_eq!(h.chunk_bits(), 6);
        assert!(h.bucket(65535) < 1 << 12);
    }
}
