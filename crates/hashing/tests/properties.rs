//! Property-based tests for the hashing substrate.

use hifind_flow::rng::SplitMix64;
use hifind_hashing::{BloomFilter, BucketHasher, Mangler, ModularHash, PairwiseHasher};
use proptest::prelude::*;

proptest! {
    #[test]
    fn mangler_round_trips_any_key(seed in any::<u64>(), key in any::<u64>(), bits in 1u32..=64) {
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let m = Mangler::new(&mut SplitMix64::new(seed), bits);
        let k = key & mask;
        prop_assert_eq!(m.unmangle(m.mangle(k)), k);
        prop_assert!(m.mangle(k) <= mask);
    }

    #[test]
    fn mangler_is_injective_on_pairs(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        let m = Mangler::new(&mut SplitMix64::new(seed), 48);
        let mask = (1u64 << 48) - 1;
        let (a, b) = (a & mask, b & mask);
        prop_assert_eq!(a == b, m.mangle(a) == m.mangle(b));
    }

    #[test]
    fn pairwise_bucket_in_range(seed in any::<u64>(), key in any::<u64>(), log_m in 0u32..20) {
        let h = PairwiseHasher::from_seed(seed, 1 << log_m);
        prop_assert!(h.bucket(key) < 1 << log_m);
    }

    #[test]
    fn modular_index_is_word_local(seed in any::<u64>(), key in any::<u64>(), word in 0u32..6, byte in any::<u8>()) {
        // Changing one key byte changes only that word's index chunk.
        let h = ModularHash::new(&mut SplitMix64::new(seed), 48, 1 << 12).unwrap();
        let key = key & ((1 << 48) - 1);
        let mutated = (key & !(0xFFu64 << (8 * word))) | (byte as u64) << (8 * word);
        let b1 = h.bucket(key);
        let b2 = h.bucket(mutated);
        for w in 0..6u32 {
            if w != word {
                prop_assert_eq!(h.index_chunk(b1, w), h.index_chunk(b2, w));
            }
        }
    }

    #[test]
    fn modular_reverse_tables_are_exact(seed in any::<u64>(), byte in any::<u8>(), word in 0u32..6) {
        let h = ModularHash::new(&mut SplitMix64::new(seed), 48, 1 << 12).unwrap();
        let chunk = h.chunk(word, byte);
        prop_assert!(h.bytes_for_chunk(word, chunk).contains(&byte));
    }

    #[test]
    fn bloom_has_no_false_negatives(seed in any::<u64>(), keys in prop::collection::hash_set(any::<u64>(), 1..200)) {
        let mut b = BloomFilter::new(1 << 14, 4, seed);
        for &k in &keys {
            b.insert(k);
        }
        for &k in &keys {
            prop_assert!(b.contains(k));
        }
    }

    #[test]
    fn bloom_union_is_superset(
        seed in any::<u64>(),
        left in prop::collection::vec(any::<u64>(), 0..100),
        right in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let mut a = BloomFilter::new(1 << 12, 3, seed);
        let mut b = BloomFilter::new(1 << 12, 3, seed);
        for &k in &left { a.insert(k); }
        for &k in &right { b.insert(k); }
        let mut u = a.clone();
        u.union(&b);
        for &k in left.iter().chain(&right) {
            prop_assert!(u.contains(k));
        }
    }
}
