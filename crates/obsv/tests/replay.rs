//! End-to-end acceptance for the observability plane.
//!
//! A generated attack trace is detected live while every interval is
//! archived through the tiered history store (sized so most of the run
//! spills to warm segment files). The embedded HTTP API then replays the
//! archived window with the original thresholds — and must reproduce the
//! live alert log bit for bit — and again with a far stricter threshold,
//! which must provably change the alert set. The query endpoints and the
//! JSONL event log are checked along the way.

use hifind::pipeline::DetectionCore;
use hifind::{HiFindConfig, SketchRecorder};
use hifind_collect::CollectObserver;
use hifind_obsv::{ApiState, EventLog, HistoryConfig, HistoryStore, HttpServer, ObsvHub};
use hifind_telemetry::Registry;
use hifind_trafficgen::presets;
use serde::{Serialize, Value};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Minimal HTTP/1.1 client: one request, reads to EOF (the server sends
/// `Connection: close`), returns (status, body).
fn request(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to API");
    let body = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {raw}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get_json(addr: &str, path: &str) -> Value {
    let (status, body) = request(addr, "GET", path, None);
    assert_eq!(status, 200, "GET {path}: {body}");
    serde_json::from_str(&body).unwrap_or_else(|e| panic!("GET {path} not JSON ({e}): {body}"))
}

fn post_json(addr: &str, path: &str, body: &str) -> Value {
    let (status, text) = request(addr, "POST", path, Some(body));
    assert_eq!(status, 200, "POST {path}: {text}");
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("POST {path} not JSON ({e}): {text}"))
}

fn seq_len(v: Option<&Value>) -> usize {
    v.and_then(Value::as_seq).map_or(0, <[Value]>::len)
}

#[test]
fn archived_window_replays_bit_identical_and_stricter_threshold_changes_alerts() {
    let seed = 2026;
    // Same shape as the collect-plane loopback test: CI-sized sketches
    // with a threshold sensitive enough that the scaled-down trace
    // actually alerts — a zero-alert bit-identical replay would be
    // vacuous.
    let mut cfg = HiFindConfig::small(seed);
    cfg.interval_ms = 60_000;
    cfg.threshold_per_sec = 0.25;
    let (trace, _) = presets::nu_like(seed).scaled(0.05).generate();
    assert!(!trace.is_empty());

    let dir = std::env::temp_dir().join(format!("hifind-obsv-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let event_path = dir.join("events.jsonl");

    // A tiny hot ring and short segments force most of the run through
    // the warm tier, so the replay crosses segment files, not just RAM.
    let mut hcfg = HistoryConfig::with_dir(&dir);
    hcfg.hot_capacity = 2;
    hcfg.segment_intervals = 4;
    // Bit-identity needs the full run retained: lift the byte budget so
    // retention never evicts the earliest segments out from under us.
    hcfg.max_warm_bytes = 1 << 30;
    let registry = Registry::new();
    let history = Arc::new(
        HistoryStore::open(hcfg, cfg.fingerprint(), Some(&registry)).expect("open history"),
    );
    let events = EventLog::open(&event_path, cfg.fingerprint()).expect("open event log");
    let hub = Arc::new(ObsvHub::new(cfg, Arc::clone(&history), Some(events)));

    // Live run: record each window, detect, and hand every closed
    // interval to the hub exactly as the collector would.
    let mut recorder = SketchRecorder::new(&cfg).expect("recorder");
    let mut core = DetectionCore::new(cfg).expect("core");
    let mut last_interval = 0;
    for window in trace.intervals(cfg.interval_ms) {
        for p in window.packets {
            recorder.record(p);
        }
        let snapshot = recorder.take_snapshot();
        let outcome = core.process_snapshot(&snapshot);
        hub.interval_closed(window.index, &snapshot, &outcome, 1, 1);
        last_interval = window.index;
    }
    let live = core.log().clone();
    assert!(
        !live.alerts(hifind::Phase::Raw).is_empty(),
        "trace must trigger detection for bit-identity to mean anything"
    );
    assert!(last_interval >= 8, "need enough intervals to spill");

    let server = HttpServer::bind(
        "127.0.0.1:0",
        ApiState {
            hub: Arc::clone(&hub),
            registry: Some(Arc::new(registry)),
        },
    )
    .expect("bind API");
    let addr = server.local_addr().to_string();

    // Replay under the original thresholds: bit-identical alert log.
    let replay = post_json(
        &addr,
        "/api/replay",
        &format!("{{\"from\":0,\"to\":{last_interval}}}"),
    );
    assert_eq!(
        replay.get("intervals_replayed"),
        Some(&Value::UInt(last_interval + 1)),
        "every archived interval must be found: {replay:?}"
    );
    assert_eq!(replay.get("gaps"), Some(&Value::UInt(0)));
    assert_eq!(
        replay.get("alerts"),
        Some(&live.to_value()),
        "replay with original thresholds must reproduce the live alert log bit for bit"
    );

    // Replay under a far stricter threshold: the alert set must change.
    let strict = post_json(
        &addr,
        "/api/replay",
        &format!("{{\"from\":0,\"to\":{last_interval},\"threshold_per_sec\":1000.0}}"),
    );
    assert_ne!(
        strict.get("alerts"),
        Some(&live.to_value()),
        "a 4000x stricter threshold must change the alert set"
    );
    let live_value = live.to_value();
    assert!(
        seq_len(strict.get("alerts").and_then(|a| a.get("raw"))) < seq_len(live_value.get("raw")),
        "stricter threshold must raise fewer raw alerts"
    );

    // The live alert mirror serves the same log the detection core built.
    let alerts = get_json(&addr, "/api/alerts");
    assert_eq!(alerts, live_value, "alert mirror must match the live log");

    // Interval summaries cover the whole archived window across tiers.
    let intervals = get_json(&addr, &format!("/api/intervals?from=0&to={last_interval}"));
    assert_eq!(
        intervals.get("count"),
        Some(&Value::UInt(last_interval + 1))
    );
    let summaries = intervals
        .get("intervals")
        .and_then(Value::as_seq)
        .expect("intervals array");
    assert!(
        summaries
            .iter()
            .any(|s| s.get("tier").and_then(Value::as_str) == Some("warm")),
        "short hot ring must have spilled intervals to the warm tier"
    );
    assert!(
        summaries
            .iter()
            .any(|s| s.get("tier").and_then(Value::as_str) == Some("hot")),
        "latest intervals stay in the hot ring"
    );

    // Sketch health of the latest archived interval: all six grids.
    let health = get_json(&addr, "/api/sketch-health");
    assert_eq!(health.get("interval"), Some(&Value::UInt(last_interval)));
    assert_eq!(
        seq_len(health.get("sketches")),
        6,
        "one health entry per named grid: {health:?}"
    );

    // Liveness and scrape endpoints.
    let healthz = get_json(&addr, "/healthz");
    assert_eq!(healthz.get("status").and_then(Value::as_str), Some("ok"));
    let (status, metrics) = request(&addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(
        metrics.contains("# TYPE hifind_history_archived_total counter"),
        "history metrics must be exposed: {metrics}"
    );
    assert!(
        metrics.contains(&format!(
            "hifind_history_archived_total {}",
            last_interval + 1
        )),
        "{metrics}"
    );

    // Unknown routes and bad methods fail typed, not hang.
    let (status, _) = request(&addr, "GET", "/nope", None);
    assert_eq!(status, 404);
    let (status, _) = request(&addr, "POST", "/metrics", None);
    assert_eq!(status, 405);
    let (status, body) = request(&addr, "POST", "/api/replay", Some("{\"from\":5}"));
    assert_eq!(status, 400, "{body}");

    server.stop();

    // The event log recorded one interval_closed per interval, each
    // stamped with the schema version and config fingerprint.
    let text = std::fs::read_to_string(&event_path).expect("event log");
    let records: Vec<Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("event line parses"))
        .collect();
    let closed = records
        .iter()
        .filter(|r| r.get("event").and_then(Value::as_str) == Some("interval_closed"))
        .count();
    assert_eq!(closed as u64, last_interval + 1);
    let fp = format!("{:#018x}", cfg.fingerprint());
    assert!(
        records.iter().all(|r| r.get("v") == Some(&Value::UInt(1))
            && r.get("fingerprint").and_then(Value::as_str) == Some(&fp)),
        "every record carries schema version and fingerprint"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
