//! Tiered interval-history store: hot ring in memory, warm CRC-checked
//! segment files on disk.
//!
//! Sketch linearity makes an archived [`IntervalSnapshot`] first-class,
//! replayable state: feeding stored snapshots back through a fresh
//! detection core reproduces (or counterfactually re-decides) the live
//! run. The store keeps the last [`HistoryConfig::hot_capacity`]
//! snapshots in a ring; older ones spill in batches of
//! [`HistoryConfig::segment_intervals`] into segment files wrapped in the
//! same versioned CRC container as PR 5 checkpoints (magic
//! [`HISTORY_MAGIC`]), atomically written, and retained under a byte
//! budget — the oldest segment is evicted first when
//! [`HistoryConfig::max_warm_bytes`] would be exceeded.
//!
//! Segment payload layout (after the container header): a sequence of
//! records, each `interval (u64 LE) + blob_len (u32 LE) + blob`, where
//! `blob` is [`hifind_collect::codec::encode_snapshot`] bytes. This file
//! parses untrusted on-disk bytes, so it sits in the truncating-cast
//! perimeter of `cargo xtask lint`: every integer conversion is checked.

use hifind::IntervalSnapshot;
use hifind_collect::checkpoint::{
    decode_container, encode_container, write_atomic, CheckpointError, HISTORY_MAGIC,
};
use hifind_collect::codec::{decode_snapshot, encode_snapshot, CodecError};
use hifind_telemetry::{Counter, Gauge, Registry, TelemetryError};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// File extension of warm-tier segment files.
pub const SEGMENT_EXTENSION: &str = "hfh";

/// Retention and tiering knobs of a [`HistoryStore`].
#[derive(Clone, Debug)]
pub struct HistoryConfig {
    /// Warm-tier directory; `None` keeps only the in-memory hot ring
    /// (snapshots beyond the ring are dropped, not spilled).
    pub dir: Option<PathBuf>,
    /// Snapshots held in the in-memory hot ring.
    pub hot_capacity: usize,
    /// Snapshots batched into one warm segment file.
    pub segment_intervals: usize,
    /// Byte budget across all warm segment files; the oldest segment is
    /// evicted first when a new one would exceed it.
    pub max_warm_bytes: u64,
}

impl Default for HistoryConfig {
    fn default() -> Self {
        HistoryConfig {
            dir: None,
            hot_capacity: 64,
            segment_intervals: 16,
            max_warm_bytes: 64 << 20,
        }
    }
}

impl HistoryConfig {
    /// Hot-ring-only store (nothing is spilled to disk).
    pub fn in_memory(hot_capacity: usize) -> Self {
        HistoryConfig {
            hot_capacity: hot_capacity.max(1),
            ..HistoryConfig::default()
        }
    }

    /// Hot ring plus a warm tier under `dir`.
    pub fn with_dir(dir: impl Into<PathBuf>) -> Self {
        HistoryConfig {
            dir: Some(dir.into()),
            ..HistoryConfig::default()
        }
    }
}

/// Why a history operation failed.
#[derive(Debug)]
pub enum HistoryError {
    /// Filesystem failure reading or writing a segment.
    Io(std::io::Error),
    /// The segment container failed validation (magic, version, CRC).
    Container(CheckpointError),
    /// A snapshot blob inside a segment failed to decode.
    Codec(CodecError),
    /// A segment's record framing ended mid-record.
    Truncated {
        /// Which field the payload ended inside.
        at: &'static str,
    },
    /// A segment was recorded under a different configuration
    /// fingerprint than this store's.
    Fingerprint {
        /// Fingerprint this store archives under.
        expected: u64,
        /// Fingerprint found in the segment.
        got: u64,
    },
    /// The store has no warm directory configured but one is required.
    NoDirectory,
}

impl std::fmt::Display for HistoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistoryError::Io(e) => write!(f, "history i/o error: {e}"),
            HistoryError::Container(e) => write!(f, "history segment container error: {e}"),
            HistoryError::Codec(e) => write!(f, "history snapshot decode error: {e}"),
            HistoryError::Truncated { at } => {
                write!(f, "history segment payload truncated at {at}")
            }
            HistoryError::Fingerprint { expected, got } => write!(
                f,
                "history segment fingerprint {got:#018x} does not match store {expected:#018x}"
            ),
            HistoryError::NoDirectory => write!(f, "history store has no warm directory"),
        }
    }
}

impl std::error::Error for HistoryError {}

impl From<std::io::Error> for HistoryError {
    fn from(e: std::io::Error) -> Self {
        HistoryError::Io(e)
    }
}

impl From<CheckpointError> for HistoryError {
    fn from(e: CheckpointError) -> Self {
        HistoryError::Container(e)
    }
}

impl From<CodecError> for HistoryError {
    fn from(e: CodecError) -> Self {
        HistoryError::Codec(e)
    }
}

/// One warm segment on disk.
#[derive(Clone, Debug)]
struct SegmentMeta {
    path: PathBuf,
    first: u64,
    last: u64,
    bytes: u64,
}

/// One retained interval, as reported by [`HistoryStore::summaries`].
#[derive(Clone, Debug, serde::Serialize)]
pub struct IntervalSummary {
    /// Interval index.
    pub interval: u64,
    /// `"hot"` (in-memory ring) or `"warm"` (segment file).
    pub tier: &'static str,
    /// Total SYNs recorded in the interval.
    pub syn_count: u64,
    /// Total SYN/ACKs recorded in the interval.
    pub syn_ack_count: u64,
    /// Total FIN+RST recorded in the interval.
    pub fin_rst_count: u64,
}

/// `hifind_history_*` metrics.
struct HistoryTelemetry {
    archived: Arc<Counter>,
    evicted_segments: Arc<Counter>,
    spill_errors: Arc<Counter>,
    hot_len: Arc<Gauge>,
    warm_bytes: Arc<Gauge>,
    warm_segments: Arc<Gauge>,
}

impl HistoryTelemetry {
    fn new(registry: &Registry) -> Result<Self, TelemetryError> {
        Ok(HistoryTelemetry {
            archived: registry.counter(
                "hifind_history_archived_total",
                "Interval snapshots appended to the history store",
            )?,
            evicted_segments: registry.counter(
                "hifind_history_evicted_segments_total",
                "Warm segments evicted to stay under the byte budget",
            )?,
            spill_errors: registry.counter(
                "hifind_history_spill_errors_total",
                "Warm segment writes that failed (snapshots dropped)",
            )?,
            hot_len: registry.gauge(
                "hifind_history_hot_len",
                "Snapshots currently in the in-memory hot ring",
            )?,
            warm_bytes: registry.gauge(
                "hifind_history_warm_bytes",
                "Bytes currently held across warm segment files",
            )?,
            warm_segments: registry.gauge(
                "hifind_history_warm_segments",
                "Warm segment files currently retained",
            )?,
        })
    }
}

struct Inner {
    hot: VecDeque<(u64, IntervalSnapshot)>,
    /// Snapshots evicted from the ring, waiting to fill a segment.
    spill: Vec<(u64, IntervalSnapshot)>,
    /// Warm segments, oldest first.
    segments: Vec<SegmentMeta>,
}

/// The tiered store. Appends come from the collector's aligner thread
/// (via the observer hooks); queries come from HTTP worker threads, so
/// all state sits behind one mutex — both sides are off the per-packet
/// hot path.
pub struct HistoryStore {
    cfg: HistoryConfig,
    fingerprint: u64,
    // lock-order: obsv.history
    inner: Mutex<Inner>,
    telemetry: Option<HistoryTelemetry>,
}

impl HistoryStore {
    /// Opens a store archiving snapshots recorded under `fingerprint`.
    /// When a warm directory is configured, segments already present
    /// (from an earlier run) are indexed and count against the budget.
    ///
    /// # Errors
    ///
    /// Directory creation/scan failures and metric registration clashes.
    pub fn open(
        cfg: HistoryConfig,
        fingerprint: u64,
        registry: Option<&Registry>,
    ) -> Result<Self, HistoryError> {
        let telemetry = match registry {
            Some(r) => Some(
                HistoryTelemetry::new(r)
                    .map_err(|e| HistoryError::Io(std::io::Error::other(e.to_string())))?,
            ),
            None => None,
        };
        let mut segments = Vec::new();
        if let Some(dir) = &cfg.dir {
            std::fs::create_dir_all(dir)?;
            segments = scan_segments(dir)?;
        }
        let store = HistoryStore {
            cfg,
            fingerprint,
            inner: Mutex::new(Inner {
                hot: VecDeque::new(),
                spill: Vec::new(),
                segments,
            }),
            telemetry,
        };
        store.publish_gauges(&store.lock());
        Ok(store)
    }

    /// The fingerprint this store archives under.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panic while holding the lock only poisons bookkeeping that the
        // next append rebuilds; recovering beats taking the daemon down.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Refreshes the tier-occupancy gauges (also done on every append);
    /// scrape handlers call this so gauges are current even when no
    /// interval has closed since the last scrape.
    pub fn refresh_gauges(&self) {
        self.publish_gauges(&self.lock());
    }

    fn publish_gauges(&self, inner: &Inner) {
        if let Some(t) = &self.telemetry {
            t.hot_len.set(saturating_i64(inner.hot.len()));
            let warm: u64 = inner.segments.iter().map(|s| s.bytes).sum();
            t.warm_bytes.set(i64::try_from(warm).unwrap_or(i64::MAX));
            t.warm_segments.set(saturating_i64(inner.segments.len()));
        }
    }

    /// Appends one interval snapshot, spilling and evicting per policy.
    ///
    /// # Errors
    ///
    /// Surfaces warm-tier write failures; the snapshot batch that failed
    /// to spill is dropped (and counted), never retried unboundedly.
    pub fn append(&self, interval: u64, snapshot: &IntervalSnapshot) -> Result<(), HistoryError> {
        let mut inner = self.lock();
        inner.hot.push_back((interval, snapshot.clone()));
        if let Some(t) = &self.telemetry {
            t.archived.inc();
        }
        while inner.hot.len() > self.cfg.hot_capacity.max(1) {
            let Some(oldest) = inner.hot.pop_front() else {
                break;
            };
            if self.cfg.dir.is_some() {
                inner.spill.push(oldest);
            }
        }
        let mut result = Ok(());
        if inner.spill.len() >= self.cfg.segment_intervals.max(1) {
            result = self.write_segment(&mut inner);
            if result.is_err() {
                if let Some(t) = &self.telemetry {
                    t.spill_errors.inc();
                }
            }
        }
        self.publish_gauges(&inner);
        result
    }

    /// Writes `inner.spill` out as one segment and enforces the byte
    /// budget. The spill buffer is cleared either way — a failing disk
    /// must not grow memory without bound.
    fn write_segment(&self, inner: &mut Inner) -> Result<(), HistoryError> {
        let Some(dir) = &self.cfg.dir else {
            inner.spill.clear();
            return Err(HistoryError::NoDirectory);
        };
        let batch = std::mem::take(&mut inner.spill);
        let (Some((first, _)), Some((last, _))) = (batch.first(), batch.last()) else {
            return Ok(());
        };
        let (first, last) = (*first, *last);
        let mut payload = Vec::new();
        for (interval, snapshot) in &batch {
            let blob = encode_snapshot(snapshot);
            payload.extend_from_slice(&interval.to_le_bytes());
            let blob_len = u32::try_from(blob.len()).unwrap_or(u32::MAX);
            payload.extend_from_slice(&blob_len.to_le_bytes());
            payload.extend_from_slice(&blob);
        }
        let container = encode_container(HISTORY_MAGIC, self.fingerprint, &payload);
        let path = dir.join(format!("seg-{first:012}-{last:012}.{SEGMENT_EXTENSION}"));
        write_atomic(&path, &container)?;
        inner.segments.push(SegmentMeta {
            path,
            first,
            last,
            bytes: u64::try_from(container.len()).unwrap_or(u64::MAX),
        });
        inner.segments.sort_by_key(|s| s.first);
        self.enforce_budget(inner);
        Ok(())
    }

    /// Evicts oldest segments until the warm tier fits the byte budget.
    fn enforce_budget(&self, inner: &mut Inner) {
        let mut total: u64 = inner.segments.iter().map(|s| s.bytes).sum();
        while total > self.cfg.max_warm_bytes && !inner.segments.is_empty() {
            let evicted = inner.segments.remove(0);
            total = total.saturating_sub(evicted.bytes);
            let _ = std::fs::remove_file(&evicted.path);
            if let Some(t) = &self.telemetry {
                t.evicted_segments.inc();
            }
        }
    }

    /// Flushes any partial spill batch to disk (shutdown path), so every
    /// snapshot that left the hot ring is on disk.
    ///
    /// # Errors
    ///
    /// Surfaces the segment write failure.
    pub fn flush(&self) -> Result<(), HistoryError> {
        let mut inner = self.lock();
        let result = if inner.spill.is_empty() {
            Ok(())
        } else {
            self.write_segment(&mut inner)
        };
        self.publish_gauges(&inner);
        result
    }

    /// Oldest and newest interval currently retained (any tier).
    pub fn range(&self) -> Option<(u64, u64)> {
        let inner = self.lock();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut any = false;
        for s in &inner.segments {
            lo = lo.min(s.first);
            hi = hi.max(s.last);
            any = true;
        }
        for (iv, _) in inner.spill.iter().chain(inner.hot.iter()) {
            lo = lo.min(*iv);
            hi = hi.max(*iv);
            any = true;
        }
        any.then_some((lo, hi))
    }

    /// All retained snapshots with `from <= interval <= to`, ascending.
    /// Warm segments are read back and CRC/fingerprint-checked on the
    /// way in.
    ///
    /// # Errors
    ///
    /// Read, container, or decode failures on any overlapping segment.
    pub fn snapshots(
        &self,
        from: u64,
        to: u64,
    ) -> Result<Vec<(u64, IntervalSnapshot)>, HistoryError> {
        let (warm_paths, mut out) = {
            let inner = self.lock();
            let paths: Vec<PathBuf> = inner
                .segments
                .iter()
                .filter(|s| s.first <= to && s.last >= from)
                .map(|s| s.path.clone())
                .collect();
            let mem: Vec<(u64, IntervalSnapshot)> = inner
                .spill
                .iter()
                .chain(inner.hot.iter())
                .filter(|(iv, _)| (from..=to).contains(iv))
                .cloned()
                .collect();
            (paths, mem)
        };
        // Segment files are read outside the lock; appends never rewrite
        // an existing segment, so the worst case is reading one that was
        // just evicted (reported as Io, handled by the caller).
        for path in warm_paths {
            let bytes = std::fs::read(&path)?;
            for (iv, snapshot) in self.parse_segment(&bytes)? {
                if (from..=to).contains(&iv) {
                    out.push((iv, snapshot));
                }
            }
        }
        out.sort_by_key(|(iv, _)| *iv);
        out.dedup_by_key(|(iv, _)| *iv);
        Ok(out)
    }

    /// Per-interval counters for every retained interval in range,
    /// ascending — the `/api/intervals` payload.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`HistoryStore::snapshots`].
    pub fn summaries(&self, from: u64, to: u64) -> Result<Vec<IntervalSummary>, HistoryError> {
        let hot_floor = {
            let inner = self.lock();
            inner.hot.front().map(|(iv, _)| *iv)
        };
        let snaps = self.snapshots(from, to)?;
        Ok(snaps
            .into_iter()
            .map(|(interval, s)| IntervalSummary {
                interval,
                tier: match hot_floor {
                    Some(floor) if interval >= floor => "hot",
                    _ => "warm",
                },
                syn_count: s.syn_count,
                syn_ack_count: s.syn_ack_count,
                fin_rst_count: s.fin_rst_count,
            })
            .collect())
    }

    /// The most recent snapshot, if any interval has been appended.
    pub fn latest(&self) -> Option<(u64, IntervalSnapshot)> {
        let inner = self.lock();
        inner.hot.back().cloned()
    }

    /// Decodes one segment file body into its `(interval, snapshot)`
    /// records, validating container magic, CRC, and fingerprint.
    fn parse_segment(&self, bytes: &[u8]) -> Result<Vec<(u64, IntervalSnapshot)>, HistoryError> {
        let (fingerprint, payload) = decode_container(HISTORY_MAGIC, bytes)?;
        if fingerprint != self.fingerprint {
            return Err(HistoryError::Fingerprint {
                expected: self.fingerprint,
                got: fingerprint,
            });
        }
        let mut out = Vec::new();
        let mut rest = payload;
        while !rest.is_empty() {
            let Some(iv_bytes) = rest.get(..8) else {
                return Err(HistoryError::Truncated { at: "interval" });
            };
            let interval = u64::from_le_bytes(iv_bytes.try_into().unwrap_or([0; 8]));
            let Some(len_bytes) = rest.get(8..12) else {
                return Err(HistoryError::Truncated { at: "blob length" });
            };
            let declared = u32::from_le_bytes(len_bytes.try_into().unwrap_or([0; 4]));
            let blob_len = usize::try_from(declared).unwrap_or(usize::MAX);
            let end = 12usize.saturating_add(blob_len);
            let Some(blob) = rest.get(12..end) else {
                return Err(HistoryError::Truncated { at: "blob" });
            };
            out.push((interval, decode_snapshot(blob)?));
            rest = &rest[end..];
        }
        Ok(out)
    }
}

fn saturating_i64(v: usize) -> i64 {
    i64::try_from(v).unwrap_or(i64::MAX)
}

/// Indexes the segment files already in `dir`, oldest first. File names
/// carry the interval range (`seg-<first>-<last>.hfh`); anything that
/// does not parse is ignored rather than trusted.
fn scan_segments(dir: &Path) -> Result<Vec<SegmentMeta>, HistoryError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(range) = name
            .strip_prefix("seg-")
            .and_then(|r| r.strip_suffix(&format!(".{SEGMENT_EXTENSION}")))
        else {
            continue;
        };
        let Some((first, last)) = range.split_once('-') else {
            continue;
        };
        let (Ok(first), Ok(last)) = (first.parse::<u64>(), last.parse::<u64>()) else {
            continue;
        };
        let bytes = entry.metadata()?.len();
        out.push(SegmentMeta {
            path,
            first,
            last,
            bytes,
        });
    }
    out.sort_by_key(|s| s.first);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind::{HiFindConfig, SketchRecorder};
    use hifind_flow::Packet;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hifind-history-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn snapshot_for(cfg: &HiFindConfig, interval: u64) -> IntervalSnapshot {
        let mut rec = SketchRecorder::new(cfg).expect("recorder");
        for i in 0..20u32 {
            rec.record(&Packet::syn(
                interval,
                [10, 0, (interval & 0xFF) as u8, i as u8].into(),
                1000 + i as u16,
                [129, 105, 0, 1].into(),
                80,
            ));
        }
        rec.take_snapshot()
    }

    #[test]
    fn hot_ring_round_trip_without_disk() {
        let cfg = HiFindConfig::small(5);
        let store =
            HistoryStore::open(HistoryConfig::in_memory(4), cfg.fingerprint(), None).unwrap();
        for iv in 0..6u64 {
            store.append(iv, &snapshot_for(&cfg, iv)).unwrap();
        }
        // Capacity 4: intervals 2..=5 retained, 0 and 1 dropped.
        assert_eq!(store.range(), Some((2, 5)));
        let got = store.snapshots(0, 10).unwrap();
        assert_eq!(
            got.iter().map(|(iv, _)| *iv).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
    }

    #[test]
    fn spill_and_read_back_is_lossless() {
        let cfg = HiFindConfig::small(6);
        let dir = temp_dir("spill");
        let mut hcfg = HistoryConfig::with_dir(&dir);
        hcfg.hot_capacity = 2;
        hcfg.segment_intervals = 3;
        let store = HistoryStore::open(hcfg, cfg.fingerprint(), None).unwrap();
        let originals: Vec<IntervalSnapshot> = (0..8u64).map(|iv| snapshot_for(&cfg, iv)).collect();
        for (iv, snap) in originals.iter().enumerate() {
            store.append(iv as u64, snap).unwrap();
        }
        store.flush().unwrap();
        let got = store.snapshots(0, 7).unwrap();
        assert_eq!(got.len(), 8, "all intervals retained across tiers");
        for (i, (iv, snap)) in got.iter().enumerate() {
            assert_eq!(*iv, i as u64);
            assert_eq!(snap, &originals[i], "snapshot {i} survives the round trip");
        }
        // A fresh store over the same directory indexes the old segments.
        let reopened =
            HistoryStore::open(HistoryConfig::with_dir(&dir), cfg.fingerprint(), None).unwrap();
        let warm = reopened.snapshots(0, 7).unwrap();
        assert!(!warm.is_empty(), "reopened store sees spilled segments");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_budget_evicts_oldest_segment_first() {
        let cfg = HiFindConfig::small(7);
        let dir = temp_dir("budget");
        let mut hcfg = HistoryConfig::with_dir(&dir);
        hcfg.hot_capacity = 1;
        hcfg.segment_intervals = 2;
        hcfg.max_warm_bytes = 1; // every new segment evicts the previous
        let store = HistoryStore::open(hcfg, cfg.fingerprint(), None).unwrap();
        for iv in 0..9u64 {
            store.append(iv, &snapshot_for(&cfg, iv)).unwrap();
        }
        let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert!(
            files.len() <= 1,
            "budget of 1 byte keeps at most the segment being written, saw {}",
            files.len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_fingerprint_segment_is_rejected() {
        let cfg = HiFindConfig::small(8);
        let dir = temp_dir("fpr");
        let mut hcfg = HistoryConfig::with_dir(&dir);
        hcfg.hot_capacity = 1;
        hcfg.segment_intervals = 1;
        let store = HistoryStore::open(hcfg.clone(), cfg.fingerprint(), None).unwrap();
        for iv in 0..3u64 {
            store.append(iv, &snapshot_for(&cfg, iv)).unwrap();
        }
        store.flush().unwrap();
        let other = HistoryStore::open(hcfg, cfg.fingerprint() ^ 1, None).unwrap();
        let err = other.snapshots(0, 3).unwrap_err();
        assert!(matches!(err, HistoryError::Fingerprint { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_segment_fails_crc_not_panics() {
        let cfg = HiFindConfig::small(9);
        let dir = temp_dir("crc");
        let mut hcfg = HistoryConfig::with_dir(&dir);
        hcfg.hot_capacity = 1;
        hcfg.segment_intervals = 1;
        let store = HistoryStore::open(hcfg, cfg.fingerprint(), None).unwrap();
        for iv in 0..3u64 {
            store.append(iv, &snapshot_for(&cfg, iv)).unwrap();
        }
        store.flush().unwrap();
        // Flip a payload byte in the first segment on disk.
        let seg = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|e| e == SEGMENT_EXTENSION))
            .expect("one segment on disk");
        let mut bytes = std::fs::read(&seg).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&seg, &bytes).unwrap();
        let err = store.snapshots(0, 3).unwrap_err();
        assert!(matches!(err, HistoryError::Container(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
