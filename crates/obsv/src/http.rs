//! Embedded HTTP/1.1 query and scrape API.
//!
//! A deliberately small, dependency-free threaded server: one acceptor
//! plus a fixed worker pool joined on shutdown, connected by a *bounded*
//! channel — when all workers are busy and the queue is full, new
//! connections are shed at accept time rather than queued without bound,
//! mirroring the repo-wide backpressure rule. Requests are capped at
//! [`MAX_REQUEST_BYTES`] and sockets carry read/write timeouts, so a
//! slow or hostile client cannot pin a worker.
//!
//! Routes (all responses `Connection: close`):
//!
//! | Route                      | Serves                                      |
//! |----------------------------|---------------------------------------------|
//! | `GET /metrics`             | Prometheus text exposition                  |
//! | `GET /healthz`             | liveness JSON (interval counters)           |
//! | `GET /api/alerts`          | live alert log (raw / after-2D / final)     |
//! | `GET /api/intervals`       | archived interval summaries (`from=`/`to=`) |
//! | `GET /api/sketch-health`   | per-sketch saturation of latest interval    |
//! | `POST /api/replay`         | counterfactual replay of an archived window |

use crate::hub::{replay_window, ObsvHub, ReplayError, ReplayOverrides};
use hifind::run_report::snapshot_health;
use hifind_telemetry::Registry;
use serde::{Serialize, Value};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest request (request line + headers + body) the server reads.
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// Per-socket read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Accept-loop poll period and worker shutdown-check period.
const POLL: Duration = Duration::from_millis(50);

/// Worker threads serving requests.
const WORKERS: usize = 2;

/// Everything the routes read from. Cheap to clone (all `Arc`s).
#[derive(Clone)]
pub struct ApiState {
    /// The observability hub (history, alerts, counters, config).
    pub hub: Arc<ObsvHub>,
    /// Metric registry backing `GET /metrics`, when telemetry is on.
    pub registry: Option<Arc<Registry>>,
}

/// Why a request failed; rendered as a JSON error body.
#[derive(Debug)]
enum HttpError {
    BadRequest(String),
    NotFound,
    MethodNotAllowed,
    PayloadTooLarge,
    Unavailable(String),
    Internal(String),
}

impl HttpError {
    fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::BadRequest(_) => (400, "Bad Request"),
            HttpError::NotFound => (404, "Not Found"),
            HttpError::MethodNotAllowed => (405, "Method Not Allowed"),
            HttpError::PayloadTooLarge => (413, "Payload Too Large"),
            HttpError::Unavailable(_) => (503, "Service Unavailable"),
            HttpError::Internal(_) => (500, "Internal Server Error"),
        }
    }

    fn message(&self) -> String {
        match self {
            HttpError::BadRequest(m) => m.clone(),
            HttpError::NotFound => "no such route".to_string(),
            HttpError::MethodNotAllowed => "method not allowed for this route".to_string(),
            HttpError::PayloadTooLarge => {
                format!("request exceeds {MAX_REQUEST_BYTES} bytes")
            }
            HttpError::Unavailable(m) | HttpError::Internal(m) => m.clone(),
        }
    }
}

/// A parsed request: just enough HTTP/1.1 for the API.
struct Request {
    method: String,
    path: String,
    query: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Request {
    fn query_u64(&self, key: &str) -> Result<Option<u64>, HttpError> {
        match self.query.iter().find(|(k, _)| k == key) {
            None => Ok(None),
            Some((_, v)) => v.parse::<u64>().map(Some).map_err(|_| {
                HttpError::BadRequest(format!(
                    "query parameter {key}={v} is not a non-negative integer"
                ))
            }),
        }
    }
}

/// A response ready to serialize.
struct Response {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: Vec<u8>,
}

impl Response {
    fn json(value: &Value) -> Response {
        Response {
            status: 200,
            reason: "OK",
            content_type: "application/json",
            // Writing a `Value` into a String cannot fail in practice.
            body: serde_json::to_vec(value).unwrap_or_default(),
        }
    }

    fn text(
        status: u16,
        reason: &'static str,
        content_type: &'static str,
        body: String,
    ) -> Response {
        Response {
            status,
            reason,
            content_type,
            body: body.into_bytes(),
        }
    }

    fn from_error(err: &HttpError) -> Response {
        let (status, reason) = err.status();
        let body = Value::Map(vec![("error".to_string(), Value::Str(err.message()))]);
        Response {
            status,
            reason,
            content_type: "application/json",
            body: serde_json::to_vec(&body).unwrap_or_default(),
        }
    }

    fn write_to(&self, stream: &mut TcpStream) {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason,
            self.content_type,
            self.body.len()
        );
        // Best-effort: the peer may already be gone; nothing to recover.
        let _ = stream.write_all(head.as_bytes());
        let _ = stream.write_all(&self.body);
        let _ = stream.flush();
    }
}

/// The running server. Dropping without [`HttpServer::stop`] also joins
/// every thread (via `Drop`), so no thread outlives the handle.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` and starts the acceptor plus worker pool.
    ///
    /// # Errors
    ///
    /// Surfaces bind/configuration failures.
    pub fn bind(addr: &str, state: ApiState) -> Result<HttpServer, std::io::Error> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        // Bounded hand-off: at most 2 connections queued per worker;
        // beyond that, accept() sheds instead of queueing unboundedly.
        let (tx, rx) = sync_channel::<TcpStream>(WORKERS * 2);
        let rx = Arc::new(Mutex::new(rx)); // lock-order: obsv.http_accept
        let mut workers = Vec::with_capacity(WORKERS);
        for _ in 0..WORKERS {
            let rx = Arc::clone(&rx);
            let state = state.clone();
            let stop = Arc::clone(&shutdown);
            workers.push(std::thread::spawn(move || worker_loop(&rx, &state, &stop)));
        }
        let stop = Arc::clone(&shutdown);
        let acceptor = std::thread::spawn(move || accept_loop(&listener, &tx, &stop));
        Ok(HttpServer {
            addr: local,
            shutdown,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and joins every thread.
    pub fn stop(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        // relaxed-ok: plain stop flag polled by loops; no data guarded
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The acceptor owned the only sender; once it is joined the
        // channel is disconnected and workers drain then exit.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.join_all();
    }
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, stop: &AtomicBool) {
    // relaxed-ok: plain stop flag; no ordering with other data needed
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                match tx.try_send(stream) {
                    Ok(()) => {}
                    // Queue full: shed the connection (stream drops,
                    // peer sees a reset) rather than queue unboundedly.
                    Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {}
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, state: &ApiState, stop: &AtomicBool) {
    loop {
        // relaxed-ok: plain stop flag; no ordering with other data needed
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let next = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv_timeout(POLL)
        };
        match next {
            Ok(stream) => serve_connection(stream, state),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn serve_connection(mut stream: TcpStream, state: &ApiState) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let response = match read_request(&mut stream) {
        Ok(request) => match route(&request, state) {
            Ok(response) => response,
            Err(err) => Response::from_error(&err),
        },
        Err(err) => Response::from_error(&err),
    };
    response.write_to(&mut stream);
}

/// Reads and parses one request, capped at [`MAX_REQUEST_BYTES`].
fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end;
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(HttpError::BadRequest(
                    "connection closed mid-request".to_string(),
                ))
            }
            Ok(n) => buf.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
            Err(_) => return Err(HttpError::BadRequest("read timeout or error".to_string())),
        }
        if let Some(pos) = find_header_end(&buf) {
            header_end = pos;
            break;
        }
        if buf.len() > MAX_REQUEST_BYTES {
            return Err(HttpError::PayloadTooLarge);
        }
    }
    let (method, target, content_length) = {
        let head = std::str::from_utf8(buf.get(..header_end).unwrap_or(&[]))
            .map_err(|_| HttpError::BadRequest("headers are not UTF-8".to_string()))?;
        let mut lines = head.split("\r\n");
        let request_line = lines
            .next()
            .ok_or_else(|| HttpError::BadRequest("empty request".to_string()))?;
        let mut parts = request_line.split(' ');
        let method = parts
            .next()
            .ok_or_else(|| HttpError::BadRequest("missing method".to_string()))?
            .to_string();
        let target = parts
            .next()
            .ok_or_else(|| HttpError::BadRequest("missing request target".to_string()))?
            .to_string();
        let mut content_length = 0usize;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| HttpError::BadRequest("bad Content-Length".to_string()))?;
            }
        }
        (method, target, content_length)
    };
    let body_start = header_end + 4;
    if content_length > MAX_REQUEST_BYTES {
        return Err(HttpError::PayloadTooLarge);
    }
    while buf.len() < body_start + content_length {
        if buf.len() > MAX_REQUEST_BYTES + body_start {
            return Err(HttpError::PayloadTooLarge);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(HttpError::BadRequest(
                    "connection closed mid-body".to_string(),
                ))
            }
            Ok(n) => buf.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
            Err(_) => return Err(HttpError::BadRequest("read timeout or error".to_string())),
        }
    }
    let body = buf
        .get(body_start..body_start + content_length)
        .unwrap_or(&[])
        .to_vec();
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target.to_string(), ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn route(request: &Request, state: &ApiState) -> Result<Response, HttpError> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/metrics") => metrics(state),
        ("GET", "/healthz") => healthz(state),
        ("GET", "/api/alerts") => alerts(state),
        ("GET", "/api/intervals") => intervals(request, state),
        ("GET", "/api/sketch-health") => sketch_health_route(state),
        ("POST", "/api/replay") => replay(request, state),
        (
            _,
            "/metrics" | "/healthz" | "/api/alerts" | "/api/intervals" | "/api/sketch-health"
            | "/api/replay",
        ) => Err(HttpError::MethodNotAllowed),
        _ => Err(HttpError::NotFound),
    }
}

fn metrics(state: &ApiState) -> Result<Response, HttpError> {
    let Some(registry) = &state.registry else {
        return Err(HttpError::Unavailable(
            "no metric registry attached (start with telemetry enabled)".to_string(),
        ));
    };
    state.hub.history().refresh_gauges();
    let snapshot = registry.snapshot();
    let text = match state.hub.identity() {
        Some((tier, node_id)) => snapshot.to_prometheus_text_labeled(&[
            ("tier", tier.to_string()),
            ("node_id", node_id.to_string()),
        ]),
        None => snapshot.to_prometheus_text(),
    };
    Ok(Response::text(200, "OK", "text/plain; version=0.0.4", text))
}

fn healthz(state: &ApiState) -> Result<Response, HttpError> {
    let body = Value::Map(vec![
        ("status".to_string(), Value::Str("ok".to_string())),
        (
            "last_interval".to_string(),
            Value::UInt(state.hub.last_interval()),
        ),
        (
            "intervals_closed".to_string(),
            Value::UInt(state.hub.intervals_closed()),
        ),
        (
            "fingerprint".to_string(),
            Value::Str(format!("{:#018x}", state.hub.history().fingerprint())),
        ),
    ]);
    Ok(Response::json(&body))
}

fn alerts(state: &ApiState) -> Result<Response, HttpError> {
    let log = state.hub.alerts();
    Ok(Response::json(&log.to_value()))
}

fn intervals(request: &Request, state: &ApiState) -> Result<Response, HttpError> {
    let from = request.query_u64("from")?.unwrap_or(0);
    let to = request
        .query_u64("to")?
        .unwrap_or_else(|| state.hub.last_interval());
    if to < from {
        return Err(HttpError::BadRequest(format!(
            "to={to} is before from={from}"
        )));
    }
    let summaries = state
        .hub
        .history()
        .summaries(from, to)
        .map_err(|e| HttpError::Internal(format!("history read failed: {e}")))?;
    let body = Value::Map(vec![
        ("from".to_string(), Value::UInt(from)),
        ("to".to_string(), Value::UInt(to)),
        (
            "count".to_string(),
            Value::UInt(u64::try_from(summaries.len()).unwrap_or(u64::MAX)),
        ),
        ("intervals".to_string(), summaries.to_value()),
    ]);
    Ok(Response::json(&body))
}

fn sketch_health_route(state: &ApiState) -> Result<Response, HttpError> {
    let Some((interval, snapshot)) = state.hub.history().latest() else {
        return Err(HttpError::Unavailable(
            "no interval archived yet".to_string(),
        ));
    };
    let threshold = state.hub.config().interval_threshold();
    let health = snapshot_health(&snapshot, threshold);
    let body = Value::Map(vec![
        ("interval".to_string(), Value::UInt(interval)),
        ("threshold".to_string(), Value::Int(threshold)),
        ("sketches".to_string(), health.to_value()),
    ]);
    Ok(Response::json(&body))
}

fn replay(request: &Request, state: &ApiState) -> Result<Response, HttpError> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| HttpError::BadRequest("body is not UTF-8".to_string()))?;
    let value: Value = serde_json::from_str(text)
        .map_err(|e| HttpError::BadRequest(format!("body is not valid JSON: {e}")))?;
    let from = json_u64(&value, "from")?
        .ok_or_else(|| HttpError::BadRequest("missing required field: from".to_string()))?;
    let to = json_u64(&value, "to")?
        .ok_or_else(|| HttpError::BadRequest("missing required field: to".to_string()))?;
    if to < from {
        return Err(HttpError::BadRequest(format!(
            "to={to} is before from={from}"
        )));
    }
    let overrides = ReplayOverrides {
        threshold_per_sec: json_f64(&value, "threshold_per_sec")?,
        ewma_alpha: json_f64(&value, "ewma_alpha")?,
        flood_persist_intervals: match json_u64(&value, "flood_persist_intervals")? {
            Some(v) => Some(u32::try_from(v).map_err(|_| {
                HttpError::BadRequest("flood_persist_intervals does not fit u32".to_string())
            })?),
            None => None,
        },
        flood_syn_ratio: json_f64(&value, "flood_syn_ratio")?,
        classify_top_p: match json_u64(&value, "classify_top_p")? {
            Some(v) => Some(usize::try_from(v).map_err(|_| {
                HttpError::BadRequest("classify_top_p does not fit usize".to_string())
            })?),
            None => None,
        },
        classify_phi: json_f64(&value, "classify_phi")?,
    };
    let output = replay_window(
        state.hub.config(),
        state.hub.history(),
        from,
        to,
        &overrides,
    )
    .map_err(|e| match e {
        ReplayError::BadWindow { from, to } => {
            HttpError::BadRequest(format!("bad replay window [{from}, {to}]"))
        }
        ReplayError::Config(e) => HttpError::BadRequest(format!("bad override: {e}")),
        ReplayError::History(e) => HttpError::Internal(format!("history read failed: {e}")),
    })?;
    let body = Value::Map(vec![
        ("from".to_string(), Value::UInt(output.from)),
        ("to".to_string(), Value::UInt(output.to)),
        (
            "intervals_replayed".to_string(),
            Value::UInt(output.intervals_replayed),
        ),
        ("gaps".to_string(), Value::UInt(output.gaps)),
        ("alerts".to_string(), output.alerts.to_value()),
    ]);
    Ok(Response::json(&body))
}

fn json_u64(value: &Value, key: &str) -> Result<Option<u64>, HttpError> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::UInt(v)) => Ok(Some(*v)),
        Some(Value::Int(v)) if *v >= 0 => Ok(Some(u64::try_from(*v).unwrap_or(u64::MAX))),
        Some(_) => Err(HttpError::BadRequest(format!(
            "field {key} must be a non-negative integer"
        ))),
    }
}

fn json_f64(value: &Value, key: &str) -> Result<Option<f64>, HttpError> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Float(v)) => Ok(Some(*v)),
        Some(Value::UInt(v)) => {
            let f = v.to_string().parse::<f64>().unwrap_or(f64::MAX);
            Ok(Some(f))
        }
        Some(Value::Int(v)) => {
            let f = v.to_string().parse::<f64>().unwrap_or(f64::MAX);
            Ok(Some(f))
        }
        Some(_) => Err(HttpError::BadRequest(format!(
            "field {key} must be a number"
        ))),
    }
}
