//! Operator observability plane for HiFIND.
//!
//! Three pieces, layered strictly *above* the collection plane so the
//! detector never depends on its own monitoring:
//!
//! - [`history`] — a tiered interval-history store: a hot in-memory ring
//!   of recent [`hifind::IntervalSnapshot`]s backed by a warm tier of
//!   CRC-checked segment files (the same container format as
//!   checkpoints), with byte-budget retention.
//! - [`http`] — an embedded, dependency-free HTTP/1.1 server exposing
//!   Prometheus `/metrics`, liveness, alert/interval/sketch-health query
//!   endpoints, and `POST /api/replay`: re-running an archived window
//!   through a fresh detection core under overridden thresholds.
//! - [`events`] — a structured JSONL event log, one schema-versioned
//!   record per collection-plane transition.
//!
//! [`ObsvHub`] ties them together by implementing
//! [`hifind_collect::CollectObserver`]; hand it to
//! [`hifind_collect::CollectorConfig`] and every closed interval is
//! archived, mirrored into the live alert log, and logged.

#![forbid(unsafe_code)]

pub mod events;
pub mod history;
pub mod http;
pub mod hub;

pub use events::{EventLog, EventRecord, EVENT_SCHEMA_VERSION};
pub use history::{HistoryConfig, HistoryError, HistoryStore, IntervalSummary};
pub use http::{ApiState, HttpServer};
pub use hub::{replay_window, ObsvHub, ReplayError, ReplayOutput, ReplayOverrides};
