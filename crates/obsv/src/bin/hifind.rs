//! `hifind` — command-line front end for the HiFIND IDS.
//!
//! ```console
//! $ hifind generate --preset nu --scale 0.05 --seed 7 --out campus.hfnd
//! $ hifind info     --trace campus.hfnd
//! $ hifind detect   --trace campus.hfnd --mitigate
//! ```

#![forbid(unsafe_code)]

use hifind::mitigate::{plan, MitigationPolicy};
use hifind::postprocess::correlate_block_scans;
use hifind::{AlertKind, HiFind, HiFindConfig, Phase};
use hifind_collect::{
    AgentConfig, Aggregator, AggregatorConfig, CheckpointPolicy, Collector, CollectorConfig,
    RouterAgent,
};
use hifind_flow::Trace;
use hifind_obsv::{ApiState, EventLog, HistoryConfig, HistoryStore, HttpServer, ObsvHub};
use hifind_telemetry::Registry;
use hifind_trafficgen::{presets, split_per_packet};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
hifind — DoS-resilient flow-level intrusion detection (ICDCS'06 reproduction)

USAGE:
    hifind generate --preset <nu|lbl|dos> [--scale F] [--seed N] --out FILE
    hifind info     --trace FILE [--metrics-json FILE]
    hifind detect   --trace FILE [--seed N] [--interval-secs N] [--threshold-per-sec F]
                    [--workers N] [--phases] [--mitigate] [--stats] [--metrics-json FILE]
    hifind collect  --listen ADDR --routers N [--seed N] [--interval-secs N]
                    [--threshold-per-sec F] [--straggler-ms N] [--reorder-window N]
                    [--linger-ms N] [--checkpoint FILE] [--checkpoint-every N]
                    [--resume FILE] [--metrics-json FILE] [--http ADDR]
                    [--history-dir DIR] [--event-log FILE]
    hifind aggregate --listen ADDR --upstream ADDR --quorum N [--node-id N]
                    [--seed N] [--interval-secs N] [--threshold-per-sec F]
                    [--straggler-ms N] [--reorder-window N] [--linger-ms N]
                    [--checkpoint FILE] [--checkpoint-every N] [--resume FILE]
                    [--metrics-json FILE] [--http ADDR] [--event-log FILE]
    hifind agent    --connect ADDR --trace FILE [--router-id N] [--split I/N]
                    [--seed N] [--interval-secs N] [--workers N]
                    [--checkpoint FILE] [--resume FILE] [--event-log FILE]

    Trace files ending in .csv use the human-readable CSV format
    (ts_ms,src,sport,dst,dport,kind,direction); anything else uses the
    compact binary .hfnd format.

COMMANDS:
    generate   synthesize a workload trace (binary .hfnd format)
    info       print trace statistics
    detect     run the full three-phase pipeline and print final alerts
    collect    run the central collection site: accept router agents over
               TCP, combine their per-interval sketches, detect on the sum
    aggregate  run a mid-tier aggregation node: accept N downstream agents
               or aggregators, sum each interval's sketches (sketch
               linearity keeps the tree bit-identical to a flat run), and
               ship one combined frame upstream per interval
    agent      replay a trace as one edge router, shipping per-interval
               sketch snapshots to a collector

OPTIONS:
    --preset             workload preset: nu (campus mix), lbl (scan-heavy lab),
                         dos (spoofed smokescreen + real scan)
    --scale F            workload intensity multiplier (default 0.1)
    --seed N             deterministic seed (default 2026)
    --interval-secs N    detection interval (default 60)
    --threshold-per-sec F  unresponded SYNs per second to alert on (default 1)
    --workers N          record through N parallel shard threads instead of
                         the serial recorder; the merged sketches (and so
                         every alert) are bit-identical to serial
                         (default 0 = serial)
    --phases             also print per-phase alert counts (Table 4 style)
    --mitigate           print the derived mitigation plan
    --stats              print the run telemetry summary (phase latencies,
                         alert funnel, sketch health)
    --metrics-json FILE  write machine-readable run telemetry (detect),
                         trace statistics (info), or the collection report
                         (collect) as JSON
    --listen ADDR        collector bind address (e.g. 127.0.0.1:7400)
    --routers N          routers the collector expects per interval
    --straggler-ms N     how long to hold an incomplete interval before
                         detecting on quorum (default 2000)
    --reorder-window N   max intervals buffered out of order (default 8)
    --linger-ms N        reconnect grace once all routers left (default 400)
    --checkpoint FILE    persist state to FILE: the collector writes its
                         detection state every --checkpoint-every intervals
                         (and at run end); an agent writes its shipping
                         state (interval counter + unshipped backlog) when
                         its replay ends
    --checkpoint-every N collector checkpoint cadence in flushed intervals
                         (default 8; 0 = only at run end)
    --resume FILE        restore state from a checkpoint written by the
                         same role under the same --seed; a restarted
                         collector resumes its forecast baselines, streaks
                         and alert log and produces the same final alerts
                         as an uninterrupted run
    --http ADDR          serve the operator API on ADDR (e.g. 127.0.0.1:9100):
                         GET /metrics (Prometheus text, including a
                         hifind_build_info gauge whose help string carries
                         the crate version and compiled features, and a
                         hifind_process_start_time_seconds gauge),
                         GET /healthz, GET /api/alerts,
                         GET /api/intervals?from=&to=, GET /api/sketch-health,
                         and POST /api/replay (re-run an archived interval
                         window under overridden detection thresholds)
    --history-dir DIR    archive every closed interval's combined sketch
                         snapshot into DIR as CRC-checked segment files, so
                         /api/intervals and /api/replay can reach intervals
                         that have left the in-memory ring
    --event-log FILE     append one schema-versioned JSON object per
                         collection-plane transition (interval close, alert
                         raise/suppress, gap synthesis, checkpoint
                         write/resume, frame rejection, agent reconnect) to
                         FILE; see docs/OBSERVABILITY.md for the schema
    --upstream ADDR      parent address an aggregator ships its combined
                         frames to (the root collector or another
                         aggregator)
    --quorum N           downstream nodes an aggregator expects per interval
    --node-id N          an aggregator's id in upstream frame headers
                         (default 0); give each node of one tier a distinct
                         id, or the parent sees their frames collide
    --connect ADDR       collector address an agent ships to
    --router-id N        this agent's id in frame headers (defaults to the
                         --split part index, else 0)
    --split I/N          replay only part I (0-based) of a per-packet split
                         of the trace across N routers; also the default
                         router id, so N agents launched with parts 0..N
                         identify distinctly without extra flags

    All roles derive sketch seeds from --seed; agents and their collector
    must share it, or frames are rejected by configuration fingerprint.
";

struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: &[String]) -> Args {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                let value = argv.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_string(), value));
            }
            i += 1;
        }
        Args { flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {raw}")),
        }
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        return Err(USAGE.into());
    };
    let args = Args::parse(&argv[1..]);
    match command.as_str() {
        "generate" => generate(&args),
        "info" => info(&args),
        "detect" => detect(&args),
        "collect" => collect(&args),
        "aggregate" => aggregate(&args),
        "agent" => agent(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn load_trace(args: &Args) -> Result<Trace, String> {
    let path = args.get("trace").ok_or("missing --trace FILE")?;
    if path.ends_with(".csv") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        hifind_flow::text::parse_csv(&text).map_err(|e| format!("cannot parse {path}: {e}"))
    } else {
        let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Trace::from_bytes(&bytes).map_err(|e| format!("cannot decode {path}: {e}"))
    }
}

fn generate(args: &Args) -> Result<(), String> {
    let preset = args.get("preset").ok_or("missing --preset <nu|lbl|dos>")?;
    let scale: f64 = args.get_parsed("scale", 0.1)?;
    let seed: u64 = args.get_parsed("seed", 2026)?;
    let out = args.get("out").ok_or("missing --out FILE")?;
    let scenario = match preset {
        "nu" => presets::nu_like(seed),
        "lbl" => presets::lbl_like(seed),
        "dos" => presets::dos_resilience(seed),
        other => return Err(format!("unknown preset '{other}' (use nu, lbl or dos)")),
    }
    .scaled(scale);
    eprintln!("generating {} at scale {scale}...", scenario.name);
    let (trace, truth) = scenario.generate();
    if out.ends_with(".csv") {
        std::fs::write(out, hifind_flow::text::to_csv(&trace))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
    } else {
        std::fs::write(out, trace.to_bytes()).map_err(|e| format!("cannot write {out}: {e}"))?;
    }
    println!("{}", trace.stats());
    println!(
        "{} attack campaigns, {} benign anomalies; written to {out}",
        truth.attacks().count(),
        truth.benign().count()
    );
    Ok(())
}

/// The value of `--metrics-json`, or an error if the flag is present
/// without a file operand.
fn metrics_json_path(args: &Args) -> Result<Option<String>, String> {
    if args.has("metrics-json") && args.get("metrics-json").is_none() {
        return Err("--metrics-json needs a FILE operand".into());
    }
    Ok(args.get("metrics-json").map(String::from))
}

fn write_json<T: serde::Serialize>(path: &str, value: &T) -> Result<(), String> {
    let bytes = serde_json::to_vec_pretty(value).map_err(|e| format!("serialize: {e}"))?;
    std::fs::write(path, bytes).map_err(|e| format!("cannot write {path}: {e}"))
}

fn info(args: &Args) -> Result<(), String> {
    let metrics_json = metrics_json_path(args)?;
    let trace = load_trace(args)?;
    let stats = trace.stats();
    println!("{stats}");
    if let Some(path) = metrics_json {
        write_json(&path, &stats)?;
        eprintln!("trace statistics written to {path}");
    }
    Ok(())
}

fn detect(args: &Args) -> Result<(), String> {
    let metrics_json = metrics_json_path(args)?;
    let trace = load_trace(args)?;
    let seed: u64 = args.get_parsed("seed", 2026)?;
    let interval_secs: u64 = args.get_parsed("interval-secs", 60)?;
    let threshold: f64 = args.get_parsed("threshold-per-sec", 1.0)?;
    let mut cfg = HiFindConfig::paper(seed);
    cfg.interval_ms = interval_secs.max(1) * 1000;
    cfg.threshold_per_sec = threshold;
    cfg.validate()?;
    let workers: usize = args.get_parsed("workers", 0)?;
    let mut ids = HiFind::new(cfg).map_err(|e| e.to_string())?;

    // Telemetry is collected whenever someone will consume it.
    let want_report = metrics_json.is_some() || args.has("stats");
    let (log, report) = match (workers, want_report) {
        (0, false) => (ids.run_trace(&trace), None),
        (0, true) => {
            let (log, r) = ids.run_trace_with_report(&trace);
            (log, Some(r))
        }
        (w, false) => (
            ids.run_trace_parallel(&trace, w)
                .map_err(|e| e.to_string())?,
            None,
        ),
        (w, true) => {
            let (log, r) = ids
                .run_trace_parallel_with_report(&trace, w)
                .map_err(|e| e.to_string())?;
            (log, Some(r))
        }
    };

    if args.has("phases") {
        println!("{:<18}{:>6}{:>10}{:>8}", "type", "raw", "after-2D", "final");
        for kind in [AlertKind::SynFlooding, AlertKind::HScan, AlertKind::VScan] {
            println!(
                "{:<18}{:>6}{:>10}{:>8}",
                kind.to_string(),
                log.count(Phase::Raw, kind),
                log.count(Phase::AfterClassification, kind),
                log.count(Phase::Final, kind),
            );
        }
        println!();
    }

    if log.final_alerts().is_empty() {
        println!("no intrusions detected");
    } else {
        println!("{} final alerts:", log.final_alerts().len());
        for alert in log.final_alerts() {
            println!("  {alert}");
        }
        let blocks = correlate_block_scans(log.final_alerts(), 3, 3);
        for b in &blocks {
            println!("  {b}");
        }
    }

    if args.has("mitigate") {
        let actions = plan(log.final_alerts(), &MitigationPolicy::default());
        println!("\nmitigation plan ({} actions):", actions.len());
        for a in &actions {
            println!("  {a}");
        }
    }

    if let Some(report) = &report {
        if args.has("stats") {
            println!("\n{}", report.summary_text());
        }
        if let Some(path) = &metrics_json {
            write_json(path, report)?;
            eprintln!("run telemetry written to {path}");
        }
    }
    Ok(())
}

/// Parses a `--split I/N` operand into `(part, routers)`.
fn parse_split(raw: &str) -> Result<(usize, usize), String> {
    let (i, n) = raw
        .split_once('/')
        .ok_or_else(|| format!("invalid --split '{raw}' (expected I/N, e.g. 0/3)"))?;
    let part: usize = i
        .parse()
        .map_err(|_| format!("invalid --split part '{i}'"))?;
    let routers: usize = n
        .parse()
        .map_err(|_| format!("invalid --split router count '{n}'"))?;
    if routers == 0 || part >= routers {
        return Err(format!(
            "--split part {part} out of range for {routers} routers"
        ));
    }
    Ok((part, routers))
}

/// Shared detection configuration of the networked roles.
fn networked_config(args: &Args) -> Result<HiFindConfig, String> {
    let seed: u64 = args.get_parsed("seed", 2026)?;
    let interval_secs: u64 = args.get_parsed("interval-secs", 60)?;
    let threshold: f64 = args.get_parsed("threshold-per-sec", 1.0)?;
    let mut cfg = HiFindConfig::paper(seed);
    cfg.interval_ms = interval_secs.max(1) * 1000;
    cfg.threshold_per_sec = threshold;
    cfg.validate()?;
    Ok(cfg)
}

/// Registers the build-identity gauges `/metrics` serves: a constant-1
/// `hifind_build_info` whose help text carries the crate version and the
/// compiled feature set, plus the process start time in unix seconds.
fn register_build_info(registry: &Registry) -> Result<(), hifind_telemetry::TelemetryError> {
    let features = if cfg!(feature = "telemetry") {
        "telemetry"
    } else {
        "default"
    };
    let help = format!(
        "constant 1; build identity: version={} features={features}",
        env!("CARGO_PKG_VERSION")
    );
    registry.gauge("hifind_build_info", &help)?.set(1);
    let start = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| i64::try_from(d.as_secs()).unwrap_or(i64::MAX))
        .unwrap_or(0);
    registry
        .gauge(
            "hifind_process_start_time_seconds",
            "unix time this process started",
        )?
        .set(start);
    // Which sketch kernel this process dispatches to (selected once at
    // startup from HIFIND_FORCE_KERNEL / CPUID): a constant-1 gauge whose
    // help text names the code path, so scraped perf is attributable.
    let kernel_help = format!(
        "constant 1; sketch kernel info: {}",
        hifind_sketch::simd::kernel_info_string()
    );
    registry
        .gauge("hifind_sketch_kernel_info", &kernel_help)?
        .set(1);
    Ok(())
}

fn collect(args: &Args) -> Result<(), String> {
    let listen = args.get("listen").ok_or("missing --listen ADDR")?;
    let routers: usize = args.get_parsed("routers", 0)?;
    if routers == 0 {
        return Err("missing --routers N (how many agents to expect)".into());
    }
    let metrics_json = metrics_json_path(args)?;
    let cfg = networked_config(args)?;
    let mut ccfg = CollectorConfig::new(routers);
    ccfg.straggler_deadline = Duration::from_millis(args.get_parsed("straggler-ms", 2000u64)?);
    ccfg.reorder_window = args.get_parsed("reorder-window", 8u64)?;
    ccfg.linger = Duration::from_millis(args.get_parsed("linger-ms", 400u64)?);
    if let Some(path) = args.get("checkpoint") {
        let mut policy = CheckpointPolicy::new(path);
        policy.every_intervals = args.get_parsed("checkpoint-every", 8u64)?;
        ccfg.checkpoint = Some(policy);
    }
    if let Some(path) = args.get("resume") {
        ccfg.resume_from = Some(path.into());
    }

    // Observability plane: history archive, event log, HTTP API.
    let http_addr = args.get("http").map(String::from);
    if args.has("http") && http_addr.is_none() {
        return Err("--http needs an ADDR operand (e.g. 127.0.0.1:9100)".into());
    }
    let registry = http_addr.as_ref().map(|_| Registry::new());
    let wants_obsv = http_addr.is_some() || args.has("history-dir") || args.has("event-log");
    let mut hub = None;
    if wants_obsv {
        let hcfg = match args.get("history-dir") {
            Some(dir) => HistoryConfig::with_dir(dir),
            None => HistoryConfig::default(),
        };
        let history = Arc::new(
            HistoryStore::open(hcfg, cfg.fingerprint(), registry.as_ref())
                .map_err(|e| format!("cannot open history store: {e}"))?,
        );
        let events = match args.get("event-log") {
            Some(path) => Some(
                EventLog::open(std::path::Path::new(path), cfg.fingerprint())
                    .map_err(|e| format!("cannot open event log {path}: {e}"))?,
            ),
            None => None,
        };
        let h = Arc::new(ObsvHub::new(cfg, history, events).with_identity("collector", 0));
        ccfg.observer = Some(h.clone());
        hub = Some(h);
    }
    let server = match (&http_addr, &hub) {
        (Some(addr), Some(hub)) => {
            if let Some(r) = &registry {
                register_build_info(r).map_err(|e| format!("cannot register metrics: {e}"))?;
            }
            let state = ApiState {
                hub: Arc::clone(hub),
                registry: registry.clone().map(Arc::new),
            };
            let server =
                HttpServer::bind(addr, state).map_err(|e| format!("cannot serve --http: {e}"))?;
            eprintln!("operator API on http://{}", server.local_addr());
            Some(server)
        }
        _ => None,
    };

    let handle =
        Collector::bind(listen, cfg, ccfg, registry).map_err(|e| format!("cannot start: {e}"))?;
    eprintln!(
        "collecting on {} from {routers} router(s); finishes once all have \
         connected and disconnected",
        handle.local_addr()
    );
    let report = handle
        .wait()
        .map_err(|e| format!("collector failed: {e}"))?;
    if let Some(server) = server {
        server.stop();
    }
    if let Some(h) = &hub {
        // Persist the partial warm-tier spill; without this, intervals
        // that left the hot ring but had not filled a segment would be
        // lost on shutdown.
        if let Err(e) = h.history().flush() {
            eprintln!("history flush failed: {e}");
        }
    }
    println!(
        "{} intervals ({} complete, {} partial, {} gaps); {} frames, {} bytes, \
         {} late, {} rejected; routers seen: {:?}",
        report.intervals_flushed,
        report.complete_intervals,
        report.partial_intervals,
        report.gap_intervals,
        report.frames_received,
        report.bytes_received,
        report.frames_late,
        report.frames_rejected,
        report.routers_seen,
    );
    if let Some(iv) = report.resumed_at_interval {
        eprintln!("resumed from checkpoint at interval {iv}");
    }
    if report.checkpoints_written > 0 || report.checkpoint_errors > 0 {
        eprintln!(
            "{} checkpoint(s) written, {} write failure(s)",
            report.checkpoints_written, report.checkpoint_errors
        );
    }
    if report.log.final_alerts().is_empty() {
        println!("no intrusions detected");
    } else {
        println!("{} final alerts:", report.log.final_alerts().len());
        for alert in report.log.final_alerts() {
            println!("  {alert}");
        }
    }
    if let Some(path) = metrics_json {
        write_json(&path, &report)?;
        eprintln!("collection report written to {path}");
    }
    Ok(())
}

fn aggregate(args: &Args) -> Result<(), String> {
    let listen = args.get("listen").ok_or("missing --listen ADDR")?;
    let upstream = args.get("upstream").ok_or("missing --upstream ADDR")?;
    let quorum: usize = args.get_parsed("quorum", 0)?;
    if quorum == 0 {
        return Err("missing --quorum N (how many downstream nodes to expect)".into());
    }
    let metrics_json = metrics_json_path(args)?;
    let cfg = networked_config(args)?;
    let node_id: u32 = args.get_parsed("node-id", 0)?;
    let mut acfg = AggregatorConfig::new(node_id, quorum);
    acfg.straggler_deadline = Duration::from_millis(args.get_parsed("straggler-ms", 2000u64)?);
    acfg.reorder_window = args.get_parsed("reorder-window", 8u64)?;
    acfg.linger = Duration::from_millis(args.get_parsed("linger-ms", 400u64)?);
    if let Some(path) = args.get("checkpoint") {
        let mut policy = CheckpointPolicy::new(path);
        policy.every_intervals = args.get_parsed("checkpoint-every", 8u64)?;
        acfg.checkpoint = Some(policy);
    }
    if let Some(path) = args.get("resume") {
        acfg.resume_from = Some(path.into());
    }

    // Observability plane: same hub as the collector, minus detection —
    // forwarded snapshots land in the history ring via snapshot_forwarded.
    let http_addr = args.get("http").map(String::from);
    if args.has("http") && http_addr.is_none() {
        return Err("--http needs an ADDR operand (e.g. 127.0.0.1:9101)".into());
    }
    let registry = http_addr.as_ref().map(|_| Registry::new());
    let wants_obsv = http_addr.is_some() || args.has("event-log");
    let mut hub = None;
    if wants_obsv {
        let history = Arc::new(
            HistoryStore::open(
                HistoryConfig::default(),
                cfg.fingerprint(),
                registry.as_ref(),
            )
            .map_err(|e| format!("cannot open history store: {e}"))?,
        );
        let events = match args.get("event-log") {
            Some(path) => Some(
                EventLog::open(std::path::Path::new(path), cfg.fingerprint())
                    .map_err(|e| format!("cannot open event log {path}: {e}"))?,
            ),
            None => None,
        };
        let h = Arc::new(ObsvHub::new(cfg, history, events).with_identity("aggregator", node_id));
        acfg.observer = Some(h.clone());
        hub = Some(h);
    }
    let server = match (&http_addr, &hub) {
        (Some(addr), Some(hub)) => {
            if let Some(r) = &registry {
                register_build_info(r).map_err(|e| format!("cannot register metrics: {e}"))?;
            }
            let state = ApiState {
                hub: Arc::clone(hub),
                registry: registry.clone().map(Arc::new),
            };
            let server =
                HttpServer::bind(addr, state).map_err(|e| format!("cannot serve --http: {e}"))?;
            eprintln!("operator API on http://{}", server.local_addr());
            Some(server)
        }
        _ => None,
    };

    let handle = Aggregator::bind(listen, upstream, cfg, acfg, registry)
        .map_err(|e| format!("cannot start: {e}"))?;
    eprintln!(
        "aggregating on {} from {quorum} downstream node(s), shipping to {upstream} \
         as node {node_id}; finishes once all have connected and disconnected",
        handle.local_addr()
    );
    let report = handle
        .wait()
        .map_err(|e| format!("aggregator failed: {e}"))?;
    if let Some(server) = server {
        server.stop();
    }
    println!(
        "node {}: {} intervals forwarded ({} complete, {} partial, {} gaps); \
         {} frames in, {} bytes, {} late, {} rejected; children seen: {:?}",
        report.node_id,
        report.intervals_forwarded,
        report.complete_intervals,
        report.partial_intervals,
        report.gap_intervals,
        report.frames_received,
        report.bytes_received,
        report.frames_late,
        report.frames_rejected,
        report.children_seen,
    );
    if let Some(iv) = report.resumed_at_interval {
        eprintln!("resumed from checkpoint at interval {iv}");
    }
    if report.checkpoints_written > 0 || report.checkpoint_errors > 0 {
        eprintln!(
            "{} checkpoint(s) written, {} write failure(s)",
            report.checkpoints_written, report.checkpoint_errors
        );
    }
    if let Some(path) = metrics_json {
        write_json(&path, &report)?;
        eprintln!("aggregation report written to {path}");
    }
    if report.frames_unshipped > 0 {
        return Err(format!(
            "{} combined frame(s) never reached the upstream at {upstream}",
            report.frames_unshipped
        ));
    }
    Ok(())
}

fn agent(args: &Args) -> Result<(), String> {
    let addr = args.get("connect").ok_or("missing --connect ADDR")?;
    let trace = load_trace(args)?;
    let cfg = networked_config(args)?;
    let split = args.get("split").map(parse_split).transpose()?;
    // Without a distinct id per agent the collector sees every frame as
    // router 0 and never assembles a complete interval, so the split part
    // doubles as the default id; --router-id still overrides.
    let default_id = split.map_or(0, |(part, _)| part as u32);
    let router_id: u32 = args.get_parsed("router-id", default_id)?;
    let trace = match split {
        Some((part, routers)) => {
            let seed: u64 = args.get_parsed("seed", 2026)?;
            split_per_packet(&trace, routers, seed ^ 0x5011).swap_remove(part)
        }
        None => trace,
    };
    let workers: usize = args.get_parsed("workers", 0)?;
    let mut agent = if let Some(path) = args.get("resume") {
        if workers > 0 {
            return Err("--resume restores the serial record plane; drop --workers".into());
        }
        RouterAgent::resume_from_file(
            addr,
            &cfg,
            AgentConfig::new(router_id),
            std::path::Path::new(path),
        )
        .map_err(|e| format!("cannot resume agent: {e}"))?
    } else if workers > 0 {
        RouterAgent::new_parallel(addr, &cfg, AgentConfig::new(router_id), workers)
            .map_err(|e| format!("cannot build recorder: {e}"))?
    } else {
        RouterAgent::new(addr, &cfg, AgentConfig::new(router_id))
            .map_err(|e| format!("cannot build recorder: {e}"))?
    };
    if let Some(path) = args.get("event-log") {
        let events = EventLog::open(std::path::Path::new(path), cfg.fingerprint())
            .map_err(|e| format!("cannot open event log {path}: {e}"))?;
        // The agent side only emits transition events; a minimal
        // in-memory history satisfies the hub without archiving.
        let history = Arc::new(
            HistoryStore::open(HistoryConfig::in_memory(1), cfg.fingerprint(), None)
                .map_err(|e| format!("cannot set up event log: {e}"))?,
        );
        agent.set_observer(Arc::new(
            ObsvHub::new(cfg, history, Some(events)).with_identity("agent", router_id),
        ));
    }
    for window in trace.intervals(cfg.interval_ms) {
        for p in window.packets {
            agent.record(p);
        }
        let shipped = agent.end_interval();
        if shipped.queued > 0 {
            eprintln!(
                "interval {}: {} frame(s) backlogged (collector unreachable?)",
                agent.intervals_ended() - 1,
                shipped.queued
            );
        }
    }
    if let Some(path) = args.get("checkpoint") {
        // Flush first so the checkpoint holds only what truly could not
        // ship; whatever remains is re-shipped by a resumed agent.
        agent.flush();
        agent
            .save_checkpoint(std::path::Path::new(path))
            .map_err(|e| format!("cannot write agent checkpoint: {e}"))?;
        eprintln!("agent checkpoint written to {path}");
    }
    let stats = agent.finish();
    println!(
        "router {router_id}: {} intervals, {} frames shipped ({} bytes), \
         {} dropped, {} reconnects, {} send failures",
        stats.frames_enqueued,
        stats.frames_shipped,
        stats.bytes_shipped,
        stats.frames_dropped,
        stats.reconnects,
        stats.send_failures,
    );
    if stats.frames_shipped < stats.frames_enqueued {
        return Err(format!(
            "{} of {} frames never reached the collector",
            stats.frames_enqueued - stats.frames_shipped,
            stats.frames_enqueued
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind::RunReport;

    fn args(list: &[&str]) -> Args {
        Args::parse(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_flags_with_and_without_values() {
        let a = args(&["--preset", "nu", "--phases", "--scale", "0.5"]);
        assert_eq!(a.get("preset"), Some("nu"));
        assert!(a.has("phases"));
        assert_eq!(a.get_parsed::<f64>("scale", 1.0).unwrap(), 0.5);
        assert_eq!(a.get_parsed::<u64>("seed", 7).unwrap(), 7); // default
    }

    #[test]
    fn flag_followed_by_flag_has_no_value() {
        let a = args(&["--phases", "--mitigate"]);
        assert!(a.has("phases"));
        assert!(a.has("mitigate"));
        assert_eq!(a.get("phases"), None);
    }

    #[test]
    fn invalid_numeric_value_is_an_error() {
        let a = args(&["--scale", "abc"]);
        let err = a.get_parsed::<f64>("scale", 1.0).unwrap_err();
        assert!(err.contains("--scale"));
    }

    #[test]
    fn generate_requires_preset_and_out() {
        assert!(generate(&args(&[])).unwrap_err().contains("--preset"));
        assert!(generate(&args(&["--preset", "nu"]))
            .unwrap_err()
            .contains("--out"));
        assert!(generate(&args(&["--preset", "bogus", "--out", "/tmp/x"]))
            .unwrap_err()
            .contains("unknown preset"));
    }

    #[test]
    fn detect_requires_trace() {
        assert!(detect(&args(&[])).unwrap_err().contains("--trace"));
        assert!(detect(&args(&["--trace", "/nonexistent/file.hfnd"]))
            .unwrap_err()
            .contains("cannot read"));
    }

    #[test]
    fn malformed_binary_trace_is_a_clean_error() {
        let dir = std::env::temp_dir().join(format!("hifind-cli-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // Garbage bytes: wrong magic.
        let garbage = dir.join("garbage.hfnd");
        std::fs::write(&garbage, b"this is not a trace file at all").unwrap();
        let err = detect(&args(&["--trace", garbage.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("cannot decode"), "{err}");

        // Truncated: valid header claiming more records than present.
        let full = dir.join("full.hfnd");
        generate(&args(&[
            "--preset",
            "dos",
            "--scale",
            "0.02",
            "--seed",
            "3",
            "--out",
            full.to_str().unwrap(),
        ]))
        .unwrap();
        let bytes = std::fs::read(&full).unwrap();
        let truncated = dir.join("truncated.hfnd");
        std::fs::write(&truncated, &bytes[..bytes.len() - 7]).unwrap();
        let err = detect(&args(&["--trace", truncated.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("cannot decode"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_csv_trace_is_a_clean_error() {
        let dir = std::env::temp_dir().join(format!("hifind-cli-badcsv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.csv");
        std::fs::write(
            &bad,
            "ts_ms,src,sport,dst,dport,kind,direction\nnot,a,valid,row\n",
        )
        .unwrap();
        let err = detect(&args(&["--trace", bad.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("cannot parse"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_json_needs_a_file_operand() {
        let err = detect(&args(&["--trace", "/tmp/x.hfnd", "--metrics-json"])).unwrap_err();
        assert!(err.contains("--metrics-json"), "{err}");
    }

    #[test]
    fn detect_writes_run_report_json() {
        let dir = std::env::temp_dir().join(format!("hifind-cli-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.hfnd");
        let metrics = dir.join("metrics.json");
        generate(&args(&[
            "--preset",
            "dos",
            "--scale",
            "0.03",
            "--seed",
            "9",
            "--out",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        detect(&args(&[
            "--trace",
            trace.to_str().unwrap(),
            "--stats",
            "--metrics-json",
            metrics.to_str().unwrap(),
        ]))
        .unwrap();

        let json = std::fs::read_to_string(&metrics).unwrap();
        let report: RunReport = serde_json::from_str(&json).unwrap();
        assert!(!report.intervals.is_empty());
        assert_eq!(
            report.phase_latency.total.count,
            report.intervals.len() as u64
        );
        assert!(report.phase_latency.total.sum_ns > 0);
        assert!(report.sketch_memory_bytes > 0);
        // Every interval carries the health of all six sketch grids.
        assert!(report
            .intervals
            .iter()
            .all(|iv| iv.sketch_health.len() == 6));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn info_writes_trace_stats_json() {
        let dir = std::env::temp_dir().join(format!("hifind-cli-info-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.hfnd");
        let stats = dir.join("stats.json");
        generate(&args(&[
            "--preset",
            "nu",
            "--scale",
            "0.02",
            "--seed",
            "4",
            "--out",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        info(&args(&[
            "--trace",
            trace.to_str().unwrap(),
            "--metrics-json",
            stats.to_str().unwrap(),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&stats).unwrap();
        assert!(json.contains("packets"), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_trace_round_trip_through_cli() {
        let dir = std::env::temp_dir().join(format!("hifind-cli-csv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("t.csv");
        let out_str = out.to_str().unwrap();
        generate(&args(&[
            "--preset", "dos", "--scale", "0.02", "--seed", "6", "--out", out_str,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.starts_with("ts_ms,src,sport"));
        info(&args(&["--trace", out_str])).unwrap();
        detect(&args(&["--trace", out_str])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn split_operand_parses_and_validates() {
        assert_eq!(parse_split("0/3").unwrap(), (0, 3));
        assert_eq!(parse_split("2/3").unwrap(), (2, 3));
        assert!(parse_split("3/3").unwrap_err().contains("out of range"));
        assert!(parse_split("0/0").unwrap_err().contains("out of range"));
        assert!(parse_split("nope").unwrap_err().contains("expected I/N"));
        assert!(parse_split("a/3").unwrap_err().contains("part"));
        assert!(parse_split("1/b").unwrap_err().contains("router count"));
    }

    #[test]
    fn collect_and_agent_validate_their_flags() {
        assert!(collect(&args(&[])).unwrap_err().contains("--listen"));
        assert!(collect(&args(&["--listen", "127.0.0.1:0"]))
            .unwrap_err()
            .contains("--routers"));
        assert!(agent(&args(&[])).unwrap_err().contains("--connect"));
        assert!(agent(&args(&["--connect", "127.0.0.1:1"]))
            .unwrap_err()
            .contains("--trace"));
        assert!(aggregate(&args(&[])).unwrap_err().contains("--listen"));
        assert!(aggregate(&args(&["--listen", "127.0.0.1:0"]))
            .unwrap_err()
            .contains("--upstream"));
        assert!(aggregate(&args(&[
            "--listen",
            "127.0.0.1:0",
            "--upstream",
            "127.0.0.1:1"
        ]))
        .unwrap_err()
        .contains("--quorum"));
    }

    /// Three tiers over real loopback sockets, end to end through the CLI:
    /// four agents feed two mid-tier aggregators which feed one root
    /// collector. Sketch linearity means the root must assemble every
    /// interval completely — any partial interval would mean a tier
    /// dropped or mis-aligned frames.
    #[test]
    fn three_tier_loopback_smoke() {
        let dir = std::env::temp_dir().join(format!("hifind-cli-tree-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.hfnd");
        let report = dir.join("root.json");
        generate(&args(&[
            "--preset",
            "dos",
            "--scale",
            "0.02",
            "--seed",
            "3",
            "--out",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        let root = "127.0.0.1:47420";
        let mids = ["127.0.0.1:47421", "127.0.0.1:47422"];
        // Agents replay sequentially, so every tier must buffer a whole
        // child's run: widen the reorder window and straggler deadline
        // beyond the trace length at every tier.
        let root_args: Vec<String> = [
            "--listen",
            root,
            "--routers",
            "2",
            "--seed",
            "3",
            "--reorder-window",
            "64",
            "--straggler-ms",
            "30000",
            "--metrics-json",
            report.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let collector = std::thread::spawn(move || collect(&Args::parse(&root_args)));
        std::thread::sleep(std::time::Duration::from_millis(100));
        let aggs: Vec<_> = mids
            .iter()
            .enumerate()
            .map(|(i, listen)| {
                let a: Vec<String> = [
                    "--listen",
                    listen,
                    "--upstream",
                    root,
                    "--quorum",
                    "2",
                    "--node-id",
                    &i.to_string(),
                    "--seed",
                    "3",
                    "--reorder-window",
                    "64",
                    "--straggler-ms",
                    "30000",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect();
                std::thread::spawn(move || aggregate(&Args::parse(&a)))
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(100));
        // Four agents, split 4 ways: parts 0/1 feed the first aggregator,
        // parts 2/3 the second. Router ids must be distinct per parent.
        for (part, mid) in [(0, 0), (1, 0), (2, 1), (3, 1)] {
            agent(&args(&[
                "--connect",
                mids[mid],
                "--trace",
                trace.to_str().unwrap(),
                "--split",
                &format!("{part}/4"),
                "--router-id",
                &(part % 2).to_string(),
                "--seed",
                "3",
            ]))
            .unwrap();
        }
        for h in aggs {
            h.join().unwrap().unwrap();
        }
        collector.join().unwrap().unwrap();
        let json = std::fs::read_to_string(&report).unwrap();
        assert!(json.contains("intervals_flushed"), "{json}");
        assert!(
            json.contains("\"partial_intervals\": 0") || json.contains("\"partial_intervals\":0"),
            "every interval must assemble completely through both tiers: {json}"
        );
        assert!(
            json.contains("\"gap_intervals\": 0") || json.contains("\"gap_intervals\":0"),
            "no tier should have synthesized a gap: {json}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn collect_and_agent_round_trip_over_loopback() {
        let dir = std::env::temp_dir().join(format!("hifind-cli-net-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.hfnd");
        let report = dir.join("report.json");
        generate(&args(&[
            "--preset",
            "dos",
            "--scale",
            "0.02",
            "--seed",
            "3",
            "--out",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        // The collect command blocks until both agents finish, so it runs
        // on its own thread while this one drives the agents.
        let listen = "127.0.0.1:47411";
        // The agents replay sequentially, so the collector must buffer the
        // whole first agent's run: widen the reorder window and deadline
        // beyond the trace length so only router identity is under test.
        let collect_args: Vec<String> = [
            "--listen",
            listen,
            "--routers",
            "2",
            "--seed",
            "3",
            "--reorder-window",
            "64",
            "--straggler-ms",
            "30000",
            "--metrics-json",
            report.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let collector = std::thread::spawn(move || collect(&Args::parse(&collect_args)));
        std::thread::sleep(std::time::Duration::from_millis(100));
        // No --router-id: the split part must serve as the id, or both
        // agents collide on router 0 and no interval ever completes.
        for part in ["0/2", "1/2"] {
            agent(&args(&[
                "--connect",
                listen,
                "--trace",
                trace.to_str().unwrap(),
                "--split",
                part,
                "--seed",
                "3",
            ]))
            .unwrap();
        }
        collector.join().unwrap().unwrap();
        let json = std::fs::read_to_string(&report).unwrap();
        assert!(json.contains("intervals_flushed"), "{json}");
        assert!(
            json.contains("\"partial_intervals\": 0") || json.contains("\"partial_intervals\":0"),
            "both agents should be distinct routers: {json}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// One raw HTTP/1.1 GET against the operator API; returns (status, body).
    fn http_get(addr: &str, path: &str) -> (u16, String) {
        use std::io::{Read as _, Write as _};
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap();
        let body = match raw.find("\r\n\r\n") {
            Some(i) => raw[i + 4..].to_string(),
            None => String::new(),
        };
        (status, body)
    }

    #[test]
    fn collect_with_http_api_answers_scrapes_mid_run() {
        let dir = std::env::temp_dir().join(format!("hifind-cli-http-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.hfnd");
        let events = dir.join("events.jsonl");
        let history = dir.join("history");
        generate(&args(&[
            "--preset",
            "dos",
            "--scale",
            "0.02",
            "--seed",
            "3",
            "--out",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        let listen = "127.0.0.1:47413";
        let http = "127.0.0.1:47414";
        let collect_args: Vec<String> = [
            "--listen",
            listen,
            "--routers",
            "2",
            "--seed",
            "3",
            "--reorder-window",
            "64",
            "--straggler-ms",
            "30000",
            "--http",
            http,
            "--history-dir",
            history.to_str().unwrap(),
            "--event-log",
            events.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let collector = std::thread::spawn(move || collect(&Args::parse(&collect_args)));
        // The API binds before the collector socket, so once it answers
        // the agents can connect too.
        let mut up = false;
        for _ in 0..200 {
            if std::net::TcpStream::connect(http).is_ok() {
                up = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        assert!(up, "operator API never came up on {http}");
        agent(&args(&[
            "--connect",
            listen,
            "--trace",
            trace.to_str().unwrap(),
            "--split",
            "0/2",
            "--seed",
            "3",
        ]))
        .unwrap();
        // Mid-run — the collector is alive and waiting on router 1. Both
        // scrape endpoints must answer with non-empty, parseable bodies.
        let (status, metrics) = http_get(http, "/metrics");
        assert_eq!(status, 200, "{metrics}");
        assert!(
            metrics.contains("# TYPE hifind_build_info gauge"),
            "{metrics}"
        );
        // The collect role stamps its tier identity onto every series.
        assert!(
            metrics.contains("hifind_build_info{tier=\"collector\",node_id=\"0\"} 1"),
            "{metrics}"
        );
        assert!(
            metrics.contains("# TYPE hifind_history_archived_total counter"),
            "{metrics}"
        );
        let (status, alerts) = http_get(http, "/api/alerts");
        assert_eq!(status, 200, "{alerts}");
        let parsed: serde_json::Value = serde_json::from_str(&alerts).unwrap();
        assert!(parsed.as_map().is_some(), "{alerts}");
        agent(&args(&[
            "--connect",
            listen,
            "--trace",
            trace.to_str().unwrap(),
            "--split",
            "1/2",
            "--seed",
            "3",
        ]))
        .unwrap();
        collector.join().unwrap().unwrap();
        // The run is over: the event log recorded transitions and the
        // history directory was created. (This short trace fits in the
        // hot ring; warm segment files are covered by tests/replay.rs.)
        assert!(std::fs::metadata(&events).unwrap().len() > 0);
        assert!(history.is_dir());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_info_detect_round_trip() {
        let dir = std::env::temp_dir().join(format!("hifind-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("t.hfnd");
        let out_str = out.to_str().unwrap();
        generate(&args(&[
            "--preset", "dos", "--scale", "0.03", "--seed", "5", "--out", out_str,
        ]))
        .unwrap();
        info(&args(&["--trace", out_str])).unwrap();
        detect(&args(&[
            "--trace",
            out_str,
            "--phases",
            "--mitigate",
            "--interval-secs",
            "60",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
