//! The observability hub: one [`CollectObserver`] implementation fanning
//! collection-plane transitions into the interval-history store, the
//! structured event log, and a live alert mirror the HTTP API serves.
//!
//! The hub runs inline on collector/agent threads, so every callback is
//! bounded work: a ring append (amortised one segment write per
//! [`crate::HistoryConfig::segment_intervals`] intervals), one JSONL
//! line, and a few map insertions. Failures are counted and swallowed —
//! observability must never take the detector down.

use crate::events::EventLog;
use crate::history::{HistoryError, HistoryStore};
use hifind::pipeline::DetectionCore;
use hifind::report::{AlertLog, Phase};
use hifind::{HiFindConfig, IntervalOutcome, IntervalSnapshot};
use hifind_collect::CollectObserver;
use hifind_collect::WireError;
use hifind_sketch::SketchError;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Shared observability state: history tier, event log, alert mirror.
pub struct ObsvHub {
    cfg: HiFindConfig,
    history: Arc<HistoryStore>,
    events: Option<EventLog>,
    // lock-order: obsv.alerts
    alerts: Mutex<AlertLog>,
    last_interval: AtomicU64,
    intervals_closed: AtomicU64,
    identity: Option<(&'static str, u32)>,
}

impl ObsvHub {
    /// Builds a hub archiving into `history`, optionally logging events.
    pub fn new(cfg: HiFindConfig, history: Arc<HistoryStore>, events: Option<EventLog>) -> Self {
        ObsvHub {
            cfg,
            history,
            events,
            alerts: Mutex::new(AlertLog::new()),
            last_interval: AtomicU64::new(0),
            intervals_closed: AtomicU64::new(0),
            identity: None,
        }
    }

    /// Stamps a collection-tier identity (`"collector"`, `"aggregator"`,
    /// or `"agent"`, plus the node id within that tier) into every event
    /// record this hub emits and onto the `/metrics` labels, so logs and
    /// scrapes from a multi-tier deployment stay distinguishable.
    #[must_use]
    pub fn with_identity(mut self, tier: &'static str, node_id: u32) -> Self {
        self.identity = Some((tier, node_id));
        self
    }

    /// The tier identity, when one was stamped.
    pub fn identity(&self) -> Option<(&'static str, u32)> {
        self.identity
    }

    /// The configuration this hub's deployment detects under.
    pub fn config(&self) -> HiFindConfig {
        self.cfg
    }

    /// The history store backing `/api/intervals` and `/api/replay`.
    pub fn history(&self) -> &Arc<HistoryStore> {
        &self.history
    }

    /// A copy of the live alert log (mirrored per interval close).
    pub fn alerts(&self) -> AlertLog {
        self.lock_alerts().clone()
    }

    /// The most recently closed interval index.
    pub fn last_interval(&self) -> u64 {
        // relaxed-ok: monitoring read; staleness is fine
        self.last_interval.load(Ordering::Relaxed)
    }

    /// Intervals closed since the hub was built.
    pub fn intervals_closed(&self) -> u64 {
        // relaxed-ok: monitoring read; staleness is fine
        self.intervals_closed.load(Ordering::Relaxed)
    }

    fn lock_alerts(&self) -> MutexGuard<'_, AlertLog> {
        // Poisoning would only lose mirror freshness; keep serving.
        self.alerts.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn emit(&self, record: crate::events::EventRecord) {
        if let Some(log) = &self.events {
            log.emit(&record);
        }
    }

    fn record(&self, event: &'static str, interval: u64) -> crate::events::EventRecord {
        let mut rec = match &self.events {
            Some(log) => log.record(event, interval),
            None => crate::events::EventRecord {
                event,
                interval,
                ..crate::events::EventRecord::default()
            },
        };
        if let Some((tier, node_id)) = self.identity {
            rec.tier = Some(tier.to_string());
            rec.node_id = Some(node_id);
        }
        rec
    }
}

impl CollectObserver for ObsvHub {
    fn interval_closed(
        &self,
        interval: u64,
        snapshot: &IntervalSnapshot,
        outcome: &IntervalOutcome,
        contributors: usize,
        expected: usize,
    ) {
        // relaxed-ok: independent monotone cells; readers tolerate skew
        self.last_interval.store(interval, Ordering::Relaxed);
        // relaxed-ok: same as above
        self.intervals_closed.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = self.history.append(interval, snapshot) {
            // Already counted in hifind_history_spill_errors_total.
            eprintln!("[hifind-obsv] history append failed: {e}");
        }
        // Mirror the outcome into the live alert log and derive
        // raise/suppress events from what was new this interval.
        let mut raised = Vec::new();
        let mut suppressed = Vec::new();
        {
            let mut log = self.lock_alerts();
            let mut new_raw = Vec::new();
            for a in &outcome.raw {
                if log.record(Phase::Raw, *a) {
                    new_raw.push(*a);
                }
            }
            for a in &outcome.classified {
                log.record(Phase::AfterClassification, *a);
            }
            for a in &outcome.fin {
                if log.record(Phase::Final, *a) {
                    raised.push(*a);
                }
            }
            for a in new_raw {
                if !outcome.fin.iter().any(|f| f.identity() == a.identity()) {
                    suppressed.push(a);
                }
            }
        }
        if self.events.is_some() {
            let mut rec = self.record("interval_closed", interval);
            rec.routers = Some(u64::try_from(contributors).unwrap_or(u64::MAX));
            rec.expected = Some(u64::try_from(expected).unwrap_or(u64::MAX));
            rec.alerts_raw = Some(u64::try_from(outcome.raw.len()).unwrap_or(u64::MAX));
            rec.alerts_final = Some(u64::try_from(outcome.fin.len()).unwrap_or(u64::MAX));
            self.emit(rec);
            for a in &raised {
                let mut rec = self.record("alert_raised", interval);
                rec.alert = Some(a.to_string());
                self.emit(rec);
            }
            for a in &suppressed {
                let mut rec = self.record("alert_suppressed", interval);
                rec.alert = Some(a.to_string());
                self.emit(rec);
            }
        }
    }

    fn gap_synthesized(&self, interval: u64, _outcome: &IntervalOutcome) {
        // relaxed-ok: monotone bookkeeping; readers tolerate skew
        self.last_interval.store(interval, Ordering::Relaxed);
        self.emit(self.record("gap_synthesized", interval));
    }

    fn checkpoint_written(&self, interval: u64, path: &Path) {
        let mut rec = self.record("checkpoint_written", interval);
        rec.path = Some(path.display().to_string());
        self.emit(rec);
    }

    fn resumed(&self, interval: u64, path: &Path) {
        let mut rec = self.record("resumed", interval);
        rec.path = Some(path.display().to_string());
        self.emit(rec);
    }

    fn frame_rejected(&self, error: &WireError) {
        let mut rec = self.record("frame_rejected", self.last_interval());
        rec.error = Some(error.to_string());
        self.emit(rec);
    }

    fn agent_reconnected(&self, router_id: u32, reconnects: u64) {
        let mut rec = self.record("agent_reconnected", self.last_interval());
        rec.router_id = Some(router_id);
        rec.reconnects = Some(reconnects);
        self.emit(rec);
    }

    fn snapshot_forwarded(
        &self,
        node_id: u32,
        interval: u64,
        snapshot: &IntervalSnapshot,
        contributors: usize,
        expected: usize,
    ) {
        // relaxed-ok: independent monotone cells; readers tolerate skew
        self.last_interval.store(interval, Ordering::Relaxed);
        // relaxed-ok: same as above
        self.intervals_closed.fetch_add(1, Ordering::Relaxed);
        // Archive the forwarded sum, so a mid-tier node's /api/intervals
        // and /api/replay see its subtree exactly as the upstream does.
        if let Err(e) = self.history.append(interval, snapshot) {
            eprintln!("[hifind-obsv] history append failed: {e}");
        }
        let mut rec = self.record("snapshot_forwarded", interval);
        rec.router_id = Some(node_id);
        rec.routers = Some(u64::try_from(contributors).unwrap_or(u64::MAX));
        rec.expected = Some(u64::try_from(expected).unwrap_or(u64::MAX));
        self.emit(rec);
    }

    fn tier_gap(&self, node_id: u32, interval: u64) {
        // relaxed-ok: monotone bookkeeping; readers tolerate skew
        self.last_interval.store(interval, Ordering::Relaxed);
        let mut rec = self.record("tier_gap", interval);
        rec.router_id = Some(node_id);
        self.emit(rec);
    }
}

/// Detection-knob overrides applied by a counterfactual replay. `None`
/// keeps the archived deployment's value. Only knobs outside the
/// record-plane fingerprint can be overridden — the sketches themselves
/// are fixed by what was archived.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayOverrides {
    /// Per-second change threshold (k·σ scale in the paper's terms).
    pub threshold_per_sec: Option<f64>,
    /// EWMA smoothing factor for the forecasters.
    pub ewma_alpha: Option<f64>,
    /// Intervals a flooding candidate must persist.
    pub flood_persist_intervals: Option<u32>,
    /// SYN/SYN-ACK imbalance ratio for the flooding heuristic.
    pub flood_syn_ratio: Option<f64>,
    /// Top-p key count for the 2D-sketch scan classification.
    pub classify_top_p: Option<usize>,
    /// Concentration threshold for the 2D-sketch scan classification.
    pub classify_phi: Option<f64>,
}

impl ReplayOverrides {
    /// Applies the overrides to a copy of `cfg`.
    pub fn apply(&self, mut cfg: HiFindConfig) -> HiFindConfig {
        if let Some(v) = self.threshold_per_sec {
            cfg.threshold_per_sec = v;
        }
        if let Some(v) = self.ewma_alpha {
            cfg.ewma_alpha = v;
        }
        if let Some(v) = self.flood_persist_intervals {
            cfg.flood_persist_intervals = v;
        }
        if let Some(v) = self.flood_syn_ratio {
            cfg.flood_syn_ratio = v;
        }
        if let Some(v) = self.classify_top_p {
            cfg.classify_top_p = v;
        }
        if let Some(v) = self.classify_phi {
            cfg.classify_phi = v;
        }
        cfg
    }
}

/// What a replay produced.
#[derive(Clone, Debug)]
pub struct ReplayOutput {
    /// First interval fed (the requested `from`).
    pub from: u64,
    /// Last interval fed (the requested `to`).
    pub to: u64,
    /// Snapshots actually found and replayed.
    pub intervals_replayed: u64,
    /// Intervals in the window with no archived snapshot (fed as gaps).
    pub gaps: u64,
    /// The counterfactual alert log.
    pub alerts: AlertLog,
}

/// Pulls `[from, to]` back out of `history` and feeds it through a fresh
/// [`DetectionCore`] under `cfg` with `overrides` applied. Intervals the
/// store no longer holds are fed as gaps (forecasters frozen), exactly
/// like the live aligner's outage handling, so the replayed timeline
/// stays aligned with the archived one. A window starting at the
/// deployment's interval 0 under unchanged knobs reproduces the live
/// alert set bit for bit.
///
/// # Errors
///
/// History read failures and detection-core construction errors (an
/// override that fails [`HiFindConfig::validate`]).
pub fn replay_window(
    cfg: HiFindConfig,
    history: &HistoryStore,
    from: u64,
    to: u64,
    overrides: &ReplayOverrides,
) -> Result<ReplayOutput, ReplayError> {
    let cfg = overrides.apply(cfg);
    let mut core = DetectionCore::new(cfg)?;
    let snapshots = history.snapshots(from, to)?;
    let mut by_interval = snapshots.into_iter().peekable();
    let mut replayed = 0u64;
    let mut gaps = 0u64;
    for interval in from..=to {
        // Snapshots are ascending; skip any below the cursor (cannot
        // happen after dedup, but never trust an iterator twice).
        while by_interval.peek().is_some_and(|(iv, _)| *iv < interval) {
            by_interval.next();
        }
        if by_interval.peek().is_some_and(|(iv, _)| *iv == interval) {
            if let Some((_, snapshot)) = by_interval.next() {
                core.process_snapshot(&snapshot);
                replayed += 1;
            }
        } else {
            core.process_gap();
            gaps += 1;
        }
    }
    Ok(ReplayOutput {
        from,
        to,
        intervals_replayed: replayed,
        gaps,
        alerts: core.log().clone(),
    })
}

/// Why a replay failed.
#[derive(Debug)]
pub enum ReplayError {
    /// The archived window could not be read back.
    History(HistoryError),
    /// The overridden configuration failed validation or construction.
    Config(SketchError),
    /// The request window is empty or inverted.
    BadWindow {
        /// Requested start.
        from: u64,
        /// Requested end.
        to: u64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::History(e) => write!(f, "replay history error: {e}"),
            ReplayError::Config(e) => write!(f, "replay configuration error: {e}"),
            ReplayError::BadWindow { from, to } => {
                write!(f, "replay window [{from}, {to}] is empty or inverted")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<HistoryError> for ReplayError {
    fn from(e: HistoryError) -> Self {
        ReplayError::History(e)
    }
}

impl From<SketchError> for ReplayError {
    fn from(e: SketchError) -> Self {
        ReplayError::Config(e)
    }
}
