//! Structured JSONL event log.
//!
//! One schema-versioned JSON object per line, one line per significant
//! collection-plane transition: interval close, alert raise/suppress, gap
//! synthesis, checkpoint write/resume, fault/frame rejection, agent
//! reconnect. Every record carries the interval index and the
//! record-plane configuration fingerprint (as a hex string — JSON
//! numbers lose precision past 2^53), so agent-side and collector-side
//! logs of one deployment can be joined offline on
//! `(fingerprint, interval)`.
//!
//! The full field-by-field schema is documented in
//! `docs/OBSERVABILITY.md`; bump [`EVENT_SCHEMA_VERSION`] on any
//! incompatible change.

use serde::{Serialize, Value};
use std::io::Write;
use std::path::Path;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Version stamped into every record's `v` field.
pub const EVENT_SCHEMA_VERSION: u32 = 1;

/// One event record. Fields that do not apply to an event kind are
/// omitted from the JSON entirely, so consumers can treat presence as
/// meaning (`Serialize` is hand-written to that end — the vendored derive
/// would emit `null`s).
#[derive(Clone, Debug, Default)]
pub struct EventRecord {
    /// Schema version ([`EVENT_SCHEMA_VERSION`]).
    pub v: u32,
    /// Event kind, e.g. `"interval_closed"`.
    pub event: &'static str,
    /// Interval index the event belongs to (the latest flushed interval
    /// for events without one of their own).
    pub interval: u64,
    /// Record-plane configuration fingerprint, hex with `0x` prefix.
    pub fingerprint: String,
    /// Milliseconds since the event log was opened.
    pub uptime_ms: u64,
    /// Collection tier of the emitting process (`"collector"`,
    /// `"aggregator"`, or `"agent"`); absent for single-process runs.
    pub tier: Option<String>,
    /// Node id within the tier (router id or aggregator node id);
    /// absent for single-process runs.
    pub node_id: Option<u32>,
    /// Routers that contributed to the interval (`interval_closed`).
    pub routers: Option<u64>,
    /// Routers expected per interval (`interval_closed`).
    pub expected: Option<u64>,
    /// Phase-1 raw alerts this interval (`interval_closed`).
    pub alerts_raw: Option<u64>,
    /// Final alerts this interval (`interval_closed`).
    pub alerts_final: Option<u64>,
    /// Alert description (`alert_raised` / `alert_suppressed`).
    pub alert: Option<String>,
    /// File path (`checkpoint_written` / `resumed`).
    pub path: Option<String>,
    /// Rejection reason (`frame_rejected`).
    pub error: Option<String>,
    /// Router id (`agent_reconnected`).
    pub router_id: Option<u32>,
    /// Lifetime reconnect count (`agent_reconnected`).
    pub reconnects: Option<u64>,
}

impl Serialize for EventRecord {
    fn to_value(&self) -> Value {
        let mut map: Vec<(String, Value)> = vec![
            ("v".to_string(), self.v.to_value()),
            ("event".to_string(), Value::Str(self.event.to_string())),
            ("interval".to_string(), self.interval.to_value()),
            (
                "fingerprint".to_string(),
                Value::Str(self.fingerprint.clone()),
            ),
            ("uptime_ms".to_string(), self.uptime_ms.to_value()),
        ];
        if let Some(t) = &self.tier {
            map.push(("tier".to_string(), Value::Str(t.clone())));
        }
        if let Some(n) = self.node_id {
            map.push(("node_id".to_string(), n.to_value()));
        }
        let mut opt_u64 = |key: &str, v: &Option<u64>| {
            if let Some(v) = v {
                map.push((key.to_string(), v.to_value()));
            }
        };
        opt_u64("routers", &self.routers);
        opt_u64("expected", &self.expected);
        opt_u64("alerts_raw", &self.alerts_raw);
        opt_u64("alerts_final", &self.alerts_final);
        if let Some(a) = &self.alert {
            map.push(("alert".to_string(), Value::Str(a.clone())));
        }
        if let Some(p) = &self.path {
            map.push(("path".to_string(), Value::Str(p.clone())));
        }
        if let Some(e) = &self.error {
            map.push(("error".to_string(), Value::Str(e.clone())));
        }
        if let Some(r) = self.router_id {
            map.push(("router_id".to_string(), r.to_value()));
        }
        if let Some(r) = self.reconnects {
            map.push(("reconnects".to_string(), r.to_value()));
        }
        Value::Map(map)
    }
}

/// An append-only JSONL writer. Writes are flushed per event — events
/// are per-interval, not per-packet, so durability wins over batching.
/// Write failures are swallowed: the event log is observability, and
/// observability must never take the detector down with it.
pub struct EventLog {
    // lock-order: obsv.event_log
    file: Mutex<std::fs::File>,
    fingerprint: String,
    started: std::time::Instant,
}

impl EventLog {
    /// Opens (or creates, appending) the log at `path` for events under
    /// `fingerprint`.
    ///
    /// # Errors
    ///
    /// Surfaces the underlying open failure.
    pub fn open(path: &Path, fingerprint: u64) -> Result<Self, std::io::Error> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(EventLog {
            file: Mutex::new(file),
            fingerprint: format!("{fingerprint:#018x}"),
            started: std::time::Instant::now(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, std::fs::File> {
        // Poisoning cannot corrupt an append-only fd; keep logging.
        self.file.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A record pre-filled with schema version, fingerprint, and uptime;
    /// the caller sets kind-specific fields before [`EventLog::emit`].
    pub fn record(&self, event: &'static str, interval: u64) -> EventRecord {
        EventRecord {
            v: EVENT_SCHEMA_VERSION,
            event,
            interval,
            fingerprint: self.fingerprint.clone(),
            uptime_ms: u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX),
            ..EventRecord::default()
        }
    }

    /// Serializes and appends one record as a single line.
    pub fn emit(&self, record: &EventRecord) {
        let Ok(mut line) = serde_json::to_string(record) else {
            return;
        };
        line.push('\n');
        let mut file = self.lock();
        let _ = file.write_all(line.as_bytes());
        let _ = file.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_one_json_object_per_line() {
        let path = std::env::temp_dir().join(format!("hifind-events-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = EventLog::open(&path, 0xABCD).unwrap();
        let mut rec = log.record("interval_closed", 7);
        rec.routers = Some(2);
        rec.expected = Some(2);
        rec.tier = Some("aggregator".to_string());
        rec.node_id = Some(42);
        log.emit(&rec);
        log.emit(&log.record("gap_synthesized", 8));
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: Value = serde_json::from_str(lines[0]).expect("first line parses");
        assert_eq!(first.get("v"), Some(&Value::UInt(1)));
        assert_eq!(
            first.get("event").and_then(Value::as_str),
            Some("interval_closed")
        );
        assert_eq!(first.get("interval"), Some(&Value::UInt(7)));
        assert_eq!(
            first.get("fingerprint").and_then(Value::as_str),
            Some("0x000000000000abcd")
        );
        assert_eq!(first.get("routers"), Some(&Value::UInt(2)));
        assert_eq!(
            first.get("tier").and_then(Value::as_str),
            Some("aggregator")
        );
        assert_eq!(first.get("node_id"), Some(&Value::UInt(42)));
        let second: Value = serde_json::from_str(lines[1]).expect("second line parses");
        assert_eq!(
            second.get("event").and_then(Value::as_str),
            Some("gap_synthesized")
        );
        assert!(
            second.get("routers").is_none(),
            "inapplicable fields are omitted"
        );
        assert!(
            second.get("tier").is_none() && second.get("node_id").is_none(),
            "identity fields are omitted when unset"
        );
        let _ = std::fs::remove_file(&path);
    }
}
