//! `cargo xtask <task>` entry point.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use xtask::rules::RULE_IDS;

const USAGE: &str = "\
cargo xtask <task>

Tasks:
  lint [--rule <id>]   run the static-analysis suite over the workspace
                       (all rules by default; --rule filters to one)
  lint --json          emit the machine-readable report on stdout
                       (rule, file, line, message, snippet, timings)
  lint --timings       print per-rule wall time after the report
  lint --list          list the rules with one-line summaries

See docs/STATIC_ANALYSIS.md for rule rationale and the suppression
workflow (`// lint: allow(rule, reason)` inline, `lint.toml` for
file-level exceptions and the `[[unsafe-file]]` perimeter).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown task `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut rule_filter: Option<String> = None;
    let mut json = false;
    let mut timings = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                for id in RULE_IDS {
                    println!("{id:>16}  {}", rule_summary(id));
                }
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            "--timings" => timings = true,
            "--rule" => match iter.next() {
                Some(id) if RULE_IDS.contains(&id.as_str()) => rule_filter = Some(id.clone()),
                Some(id) => {
                    eprintln!("unknown rule `{id}`; try `cargo xtask lint --list`");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--rule needs an argument; try `cargo xtask lint --list`");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown lint option `{other}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = xtask::workspace_root();
    let mut report = match xtask::lint_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(rule) = &rule_filter {
        report.violations.retain(|v| v.rule == rule);
    }
    if json {
        print!("{}", report.to_json());
        return if report.violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    for v in &report.violations {
        println!("{v}\n");
    }
    if timings {
        println!("per-rule wall time:");
        for t in &report.timings {
            println!("{:>18}  {:>8} us", t.rule, t.micros);
        }
    }
    if report.violations.is_empty() {
        println!(
            "xtask lint: clean — {} files scanned, {} allowlist entr{}",
            report.files_scanned,
            report.allow_entries,
            if report.allow_entries == 1 {
                "y"
            } else {
                "ies"
            }
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask lint: {} violation{} in {} files scanned \
             (suppress a sound exception with `// lint: allow(rule, reason)` or lint.toml)",
            report.violations.len(),
            if report.violations.len() == 1 {
                ""
            } else {
                "s"
            },
            report.files_scanned,
        );
        ExitCode::FAILURE
    }
}

fn rule_summary(id: &str) -> &'static str {
    match id {
        "hot-path-panic" => "no unwrap/expect/panic!/unreachable! in hot-path library code",
        "truncating-cast" => "no bare `as` integer casts in wire/codec boundary files",
        "atomics-audit" => "every Ordering::Relaxed carries `// relaxed-ok: <reason>`",
        "bounded-channels" => "no unbounded mpsc::channel in the collector",
        "joined-threads" => "every thread::spawn handle is bound and joinable",
        "lint-directive" => "malformed `lint: allow` directives are errors",
        "lock-order" => "global lock graph must match the declared `// lock-order:` hierarchy",
        "poll-loop-purity" => "no blocking calls reachable from the engine poll dispatch loop",
        "overflow-audit" => "counter arithmetic in sketch hot paths must saturate or justify",
        "unsafe-perimeter" => "`unsafe` only in files listed by lint.toml [[unsafe-file]]",
        _ => "",
    }
}
