//! The cross-file workspace model behind the concurrency passes.
//!
//! Per-file rules (see [`crate::rules`]) can only see one file at a time;
//! the concurrency properties this workspace cares about — lock ordering,
//! purity of the poll dispatch path — are properties of *paths through
//! the call graph*, which may cross files and crates. This module builds
//! a token-level model of the whole workspace out of the same blanked
//! line scanner the per-file rules use:
//!
//! * every function (free or method, with its impl type, parameter
//!   types, and return type as raw text),
//! * every call site, resolved to candidate workspace functions
//!   (receiver-typed where a type can be inferred from `self`, params,
//!   struct fields, or `let` bindings; same-crate name match otherwise),
//! * every `Mutex` declaration (struct field or `let` binding) together
//!   with its `// lock-order:` annotation,
//! * every lock acquisition (`<receiver>.lock()`), attributed to a
//!   declared `Mutex` and given a release line (end of the binding's
//!   enclosing block, a `drop(guard)`, or the same line for
//!   temporaries).
//!
//! Like the line scanner this is an *approximation*, not a compiler:
//! resolution is deliberately conservative (an untypable method call
//! resolves to every same-crate function of that name) so that the
//! passes over-approximate reachability rather than miss an edge. The
//! seeded-violation self-tests in `passes/` pin the corners down.

use crate::scan::{scan, ScannedFile};

/// Primitive scalar types accepted as field types by `field_shaped`.
const PRIMITIVES: [&str; 16] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64", "bool", "char",
];

/// Rust keywords that can precede `(` without being a call.
const NON_CALL_KEYWORDS: [&str; 16] = [
    "fn", "if", "else", "match", "while", "for", "loop", "return", "move", "let", "in", "ref",
    "where", "impl", "dyn", "as",
];

/// One scanned workspace file.
pub struct FileModel {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Crate directory name under `crates/` (e.g. `collect`).
    pub krate: String,
    /// The blanked, comment-split line view.
    pub scanned: ScannedFile,
    /// True for `tests/`, `benches/`, `examples/` exercise code.
    pub exercise: bool,
}

/// A struct/enum definition site (for receiver typing).
#[derive(Clone, Debug)]
pub struct TypeDef {
    pub name: String,
    pub file: usize,
}

/// `name: Type` pair harvested from struct fields and fn params.
#[derive(Clone, Debug)]
pub struct FieldDecl {
    pub name: String,
    pub ty: String,
    pub file: usize,
}

/// One declared `Mutex` (struct field or `let` binding).
#[derive(Clone, Debug)]
pub struct MutexDecl {
    pub file: usize,
    pub line: usize,
    /// The field or binding identifier (`inner`, `rx`, ...).
    pub ident: String,
    /// The `// lock-order:` name, when annotated.
    pub name: Option<String>,
    /// The raw source line, for diagnostics.
    pub snippet: String,
}

/// A declared ordering edge `before < after` from an annotation chain.
#[derive(Clone, Debug)]
pub struct LockConstraint {
    pub before: String,
    pub after: String,
    pub file: usize,
    pub line: usize,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    pub line: usize,
    /// Order key within the line (acquisitions sort before calls).
    pub seq: usize,
    /// Callee name as written.
    pub name: String,
    /// Resolved candidate functions (indices into `functions`).
    pub targets: Vec<usize>,
    /// Scope-end line if the result is `let`-bound (guard-returning
    /// callees keep their locks held until here); same line otherwise.
    pub release_line: usize,
}

/// One lock acquisition inside a function body.
#[derive(Clone, Debug)]
pub struct AcqSite {
    pub line: usize,
    /// Order key within the line (acquisitions sort before calls).
    pub seq: usize,
    /// The declared mutex acquired; `None` when the receiver could not
    /// be attributed to any declaration (a pass-level violation).
    pub lock: Option<usize>,
    /// Receiver text, for diagnostics.
    pub receiver: String,
    /// Line after which the guard is no longer held.
    pub release_line: usize,
}

/// One function (free fn or method) in the workspace.
pub struct Function {
    pub file: usize,
    pub name: String,
    /// `Some("HistoryStore")` for methods in `impl HistoryStore` /
    /// `impl Trait for HistoryStore` blocks.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub start: usize,
    /// Last body line (== `start` for bodyless declarations).
    pub end: usize,
    pub in_test: bool,
    /// `(name, type)` pairs from the signature (excluding `self`).
    pub params: Vec<(String, String)>,
    /// Raw return-type text (`""` when omitted).
    pub ret: String,
    pub calls: Vec<CallSite>,
    pub acquisitions: Vec<AcqSite>,
    /// Typed `let` bindings seen in the body: `(name, type)`.
    typed_lets: Vec<(String, String)>,
}

impl Function {
    /// True when calling this function hands the caller a live guard.
    pub fn returns_guard(&self) -> bool {
        self.ret.contains("MutexGuard")
    }
}

/// The whole-workspace model.
pub struct WorkspaceModel {
    pub files: Vec<FileModel>,
    pub functions: Vec<Function>,
    pub mutexes: Vec<MutexDecl>,
    pub constraints: Vec<LockConstraint>,
    types: Vec<TypeDef>,
    fields: Vec<FieldDecl>,
}

impl WorkspaceModel {
    /// Builds the model from `(path, source)` pairs (workspace-relative
    /// forward-slash paths). Non-`crates/` files are ignored.
    pub fn build(sources: &[(String, String)]) -> WorkspaceModel {
        let mut model = WorkspaceModel {
            files: Vec::new(),
            functions: Vec::new(),
            mutexes: Vec::new(),
            constraints: Vec::new(),
            types: Vec::new(),
            fields: Vec::new(),
        };
        for (path, source) in sources {
            if !path.starts_with("crates/") || !path.ends_with(".rs") {
                continue;
            }
            let krate = path.split('/').nth(1).unwrap_or_default().to_string();
            let exercise = ["/tests/", "/benches/", "/examples/"]
                .iter()
                .any(|e| path.contains(e));
            model.files.push(FileModel {
                path: path.clone(),
                krate,
                scanned: scan(source),
                exercise,
            });
        }
        for idx in 0..model.files.len() {
            if model.files[idx].exercise {
                continue;
            }
            model.extract_file(idx);
        }
        model.resolve();
        model
    }

    /// The scanned view of a file by path, when the model holds it.
    pub fn scanned(&self, path: &str) -> Option<&ScannedFile> {
        self.files
            .iter()
            .find(|f| f.path == path)
            .map(|f| &f.scanned)
    }

    /// Function index by `(path, name)`, first match.
    pub fn function(&self, path: &str, name: &str) -> Option<usize> {
        self.functions
            .iter()
            .position(|f| f.name == name && self.files[f.file].path == path)
    }

    // ----- extraction ---------------------------------------------------

    /// Extracts types, fields, mutex declarations, and functions (with
    /// their call/acquisition events) from one file.
    fn extract_file(&mut self, file: usize) {
        let lines: Vec<(usize, String, String, bool)> = self.files[file]
            .scanned
            .lines
            .iter()
            .map(|l| (l.number, l.code.clone(), l.comment.clone(), l.in_test))
            .collect();

        // Pass 1: type definitions, `name: Type` pairs, mutex decls.
        for (number, code, _comment, _in_test) in &lines {
            let trimmed = code.trim();
            for kw in ["struct ", "enum ", "union "] {
                if let Some(rest) = trimmed
                    .strip_prefix("pub ")
                    .unwrap_or(trimmed)
                    .strip_prefix(kw)
                {
                    if let Some(name) = leading_ident(rest) {
                        self.types.push(TypeDef {
                            name: name.to_string(),
                            file,
                        });
                    }
                }
            }
            if let Some((name, ty)) = field_shaped(trimmed) {
                if ty.contains("Mutex<") {
                    let raw = self.files[file].scanned.lines[number - 1].raw.clone();
                    self.push_mutex(file, *number, &name, &raw);
                }
                self.fields.push(FieldDecl { name, ty, file });
            }
            // `let`-bound mutexes: `let rx = Arc::new(Mutex::new(..))`.
            if trimmed.starts_with("let ") && code.contains("Mutex::new(") {
                if let Some(name) = let_binding_name(trimmed) {
                    let raw = self.files[file].scanned.lines[number - 1].raw.clone();
                    self.push_mutex(file, *number, &name, &raw);
                }
            }
        }

        // Pass 2: functions and their bodies.
        let mut walker = FileWalker::new(file, &lines);
        walker.walk(self);
    }

    /// Records a mutex declaration and parses its `// lock-order:`
    /// annotation (same line or line above).
    fn push_mutex(&mut self, file: usize, line: usize, ident: &str, raw: &str) {
        let scanned = &self.files[file].scanned;
        let same = scanned.lines.get(line - 1).map(|l| l.comment.as_str());
        let above = line
            .checked_sub(2)
            .and_then(|i| scanned.lines.get(i))
            .map(|l| l.comment.as_str());
        let mut name = None;
        for comment in [same, above].into_iter().flatten() {
            if let Some(chain) = parse_lock_order(comment) {
                name = chain.first().cloned();
                for pair in chain.windows(2) {
                    self.constraints.push(LockConstraint {
                        before: pair[0].clone(),
                        after: pair[1].clone(),
                        file,
                        line,
                    });
                }
                break;
            }
        }
        self.mutexes.push(MutexDecl {
            file,
            line,
            ident: ident.to_string(),
            name,
            snippet: raw.trim().to_string(),
        });
    }

    // ----- resolution ---------------------------------------------------

    /// Resolves every call site's candidate targets and every
    /// acquisition's mutex, now that all declarations are known.
    fn resolve(&mut self) {
        for fi in 0..self.functions.len() {
            let file = self.functions[fi].file;
            let krate = self.files[file].krate.clone();
            let calls = std::mem::take(&mut self.functions[fi].calls);
            let resolved: Vec<CallSite> = calls
                .into_iter()
                .map(|mut c| {
                    c.targets = self.resolve_call(fi, &krate, &c);
                    c
                })
                .collect();
            self.functions[fi].calls = resolved;
            let acqs = std::mem::take(&mut self.functions[fi].acquisitions);
            let resolved: Vec<AcqSite> = acqs
                .into_iter()
                .map(|mut a| {
                    a.lock = self.resolve_lock(file, &krate, &a.receiver);
                    a
                })
                .collect();
            self.functions[fi].acquisitions = resolved;
        }
    }

    /// Candidate functions for one call site.
    fn resolve_call(&self, caller: usize, krate: &str, call: &CallSite) -> Vec<usize> {
        let name = call.name.as_str();
        // `name` arrives as the full written path (e.g. `wire::decode`,
        // `self.inner.lock`); split into receiver chain + final ident.
        let (chain, method) = split_chain(name);
        if chain.is_empty() {
            // Bare call: free functions, same file first, then crate.
            let file = self.functions[caller].file;
            let same_file: Vec<usize> = self
                .fn_candidates(method, |f| f.file == file && f.impl_type.is_none())
                .collect();
            if !same_file.is_empty() {
                return same_file;
            }
            return self
                .fn_candidates(method, |f| {
                    self.files[f.file].krate == krate && f.impl_type.is_none()
                })
                .collect();
        }
        if let Some(qual) = chain.strip_suffix("::") {
            // `A::method` / `module::func`: type methods, module free fns.
            let seg = qual.rsplit("::").next().unwrap_or(qual);
            if self.types.iter().any(|t| t.name == seg) {
                return self
                    .fn_candidates(method, |f| f.impl_type.as_deref() == Some(seg))
                    .collect();
            }
            let module_file = format!("/{seg}.rs");
            let in_module: Vec<usize> = self
                .fn_candidates(method, |f| {
                    self.files[f.file].path.ends_with(&module_file)
                        && self.files[f.file].krate == krate
                })
                .collect();
            if !in_module.is_empty() {
                return in_module;
            }
            // `Vec::new`, `u64::try_from`, ... — external, no edge.
            if seg.chars().next().is_some_and(char::is_uppercase) {
                return Vec::new();
            }
            return Vec::new();
        }
        // `recv.method(...)`: type the receiver if possible.
        let recv = chain.trim_end_matches('.');
        match self.type_of_chain(caller, recv) {
            Some(ty) => {
                let base = base_type(&ty);
                if self.types.iter().any(|t| t.name == base) {
                    self.fn_candidates(method, |f| f.impl_type.as_deref() == Some(base.as_str()))
                        .collect()
                } else {
                    // Typed to a non-workspace type: external call.
                    Vec::new()
                }
            }
            // Untypable receiver: conservatively, every same-crate
            // function of that name — except when the receiver is an
            // opaque call result (iterator/builder chains, marked `?`),
            // whose type is external, and never the enclosing function
            // itself (real self-recursion has a typed `self` receiver
            // and resolves above).
            None => {
                if recv.is_empty() || recv.contains('?') {
                    // `?` marker, or a continuation line (`.collect()`)
                    // whose receiver sits on the line above: both are
                    // expression results, not nameable workspace values.
                    return Vec::new();
                }
                self.fn_candidates(method, |f| self.files[f.file].krate == krate)
                    .filter(|&i| i != caller)
                    .collect()
            }
        }
    }

    fn fn_candidates<'a, P: Fn(&Function) -> bool + 'a>(
        &'a self,
        name: &'a str,
        pred: P,
    ) -> impl Iterator<Item = usize> + 'a {
        self.functions
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.name == name && pred(f))
            .map(|(i, _)| i)
    }

    /// Attributes a `.lock()` receiver to a declared mutex: same file
    /// first, then same crate, by field/binding identifier.
    fn resolve_lock(&self, file: usize, krate: &str, receiver: &str) -> Option<usize> {
        let ident = receiver.rsplit(['.', ':']).next().unwrap_or(receiver);
        let same_file = self
            .mutexes
            .iter()
            .position(|m| m.file == file && m.ident == ident);
        same_file.or_else(|| {
            self.mutexes
                .iter()
                .position(|m| self.files[m.file].krate == krate && m.ident == ident)
        })
    }

    /// The innermost function whose span contains `line` of `file`.
    pub fn function_at(&self, file: usize, line: usize) -> Option<usize> {
        self.functions
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && f.start <= line && line <= f.end)
            .min_by_key(|(_, f)| f.end - f.start)
            .map(|(i, _)| i)
    }

    /// Infers the type of a receiver chain (`self`, `self.history`,
    /// `inner`, ...) inside function `fi`, as raw type text.
    pub(crate) fn type_of_chain(&self, fi: usize, chain: &str) -> Option<String> {
        let f = &self.functions[fi];
        let mut segments = chain.split('.');
        let head = segments.next()?;
        let mut ty = if head == "self" {
            f.impl_type.clone()?
        } else {
            self.type_of_ident(fi, head)?
        };
        for seg in segments {
            let base = base_type(&ty);
            let def_file = self.types.iter().find(|t| t.name == base)?.file;
            ty = self
                .fields
                .iter()
                .find(|fd| fd.file == def_file && fd.name == seg)?
                .ty
                .clone();
        }
        Some(ty)
    }

    /// The type of a bare identifier in `fi`: parameter, typed `let`,
    /// or (last resort) a same-file `name: Type` pair.
    fn type_of_ident(&self, fi: usize, ident: &str) -> Option<String> {
        let f = &self.functions[fi];
        if let Some((_, ty)) = f.params.iter().find(|(n, _)| n == ident) {
            return Some(ty.clone());
        }
        if let Some((_, ty)) = f.typed_lets.iter().rev().find(|(n, _)| n == ident) {
            return Some(ty.clone());
        }
        self.fields
            .iter()
            .find(|fd| fd.file == f.file && fd.name == ident)
            .map(|fd| fd.ty.clone())
    }
}

/// Walks one file's blanked lines, building `Function` entries.
struct FileWalker<'a> {
    file: usize,
    lines: &'a [(usize, String, String, bool)],
    depth: i64,
    /// `(type name, depth its `{` opened at)`.
    impl_stack: Vec<(String, i64)>,
    /// `(function index, depth its body `{` opened at)`.
    fn_stack: Vec<(usize, i64)>,
    /// A `fn` signature being accumulated until its `{` or `;`.
    pending_sig: Option<PendingSig>,
    /// Guards awaiting their scope-exit line: `(fn idx, kind, depth)`.
    open_scopes: Vec<(usize, ScopeKind, i64)>,
}

enum ScopeKind {
    Acq(usize),
    Call(usize),
}

struct PendingSig {
    text: String,
    start_line: usize,
    in_test: bool,
}

impl<'a> FileWalker<'a> {
    fn new(file: usize, lines: &'a [(usize, String, String, bool)]) -> Self {
        FileWalker {
            file,
            lines,
            depth: 0,
            impl_stack: Vec::new(),
            fn_stack: Vec::new(),
            pending_sig: None,
            open_scopes: Vec::new(),
        }
    }

    fn walk(&mut self, model: &mut WorkspaceModel) {
        for li in 0..self.lines.len() {
            let (number, code, _, in_test) = &self.lines[li];
            let number = *number;
            let code = code.clone();
            // Detect `impl Type` openers before brace bookkeeping.
            if self.pending_sig.is_none() {
                if let Some(ty) = impl_type_of(code.trim()) {
                    // Registered when its `{` arrives; store depth then.
                    self.impl_stack.push((ty, i64::MIN));
                }
            }
            // Detect a starting `fn` signature.
            if self.pending_sig.is_none() {
                if let Some(at) = find_fn_keyword(&code) {
                    self.pending_sig = Some(PendingSig {
                        text: code[at..].to_string(),
                        start_line: number,
                        in_test: *in_test,
                    });
                    self.scan_braces(model, &code[..at], number);
                    self.finish_sig_if_ready(model, number);
                    continue;
                }
            } else {
                let sig = self.pending_sig.as_mut().expect("pending sig");
                sig.text.push(' ');
                sig.text.push_str(&code);
                self.finish_sig_if_ready(model, number);
                continue;
            }
            self.scan_braces(model, &code, number);
        }
        // Close any function still open at EOF.
        let eof = self.lines.last().map_or(1, |l| l.0);
        while let Some((fi, _)) = self.fn_stack.pop() {
            model.functions[fi].end = eof;
        }
        for (fi, kind, _) in self.open_scopes.drain(..) {
            set_release(model, fi, &kind, eof);
        }
    }

    /// Completes a pending signature once its `{` (body) or `;`
    /// (declaration only) shows up in the accumulated text.
    fn finish_sig_if_ready(&mut self, model: &mut WorkspaceModel, number: usize) {
        let Some(sig) = &self.pending_sig else { return };
        let body_at = sig_terminator(&sig.text);
        let Some((term_idx, has_body)) = body_at else {
            return;
        };
        let sig = self.pending_sig.take().expect("pending sig");
        let header = &sig.text[..term_idx];
        let (name, params, ret) = parse_signature(header);
        let impl_type = self.impl_stack.last().map(|(t, _)| t.clone());
        let fi = model.functions.len();
        model.functions.push(Function {
            file: self.file,
            name,
            impl_type,
            start: sig.start_line,
            end: sig.start_line,
            in_test: sig.in_test,
            params,
            ret,
            calls: Vec::new(),
            acquisitions: Vec::new(),
            typed_lets: Vec::new(),
        });
        if has_body {
            // Process the remainder of the line from the body brace on;
            // the brace itself pushes the fn onto the stack.
            let rest = &sig.text[term_idx..];
            self.fn_stack.push((fi, self.depth + 1));
            self.depth += 1; // the `{`
            let rest_after_brace = &rest[1..];
            self.scan_braces(model, rest_after_brace, number);
        }
    }

    /// Brace bookkeeping plus, when inside a function body, event
    /// extraction for the slice of (blanked) code handed in.
    fn scan_braces(&mut self, model: &mut WorkspaceModel, code: &str, number: usize) {
        if let Some(&(fi, _)) = self.fn_stack.last() {
            self.extract_events(model, fi, code, number);
        }
        // Register impl blocks waiting for their `{`.
        for c in code.chars() {
            match c {
                '{' => {
                    self.depth += 1;
                    if let Some(last) = self.impl_stack.last_mut() {
                        if last.1 == i64::MIN {
                            last.1 = self.depth;
                        }
                    }
                }
                '}' => {
                    // Close any guard scopes opened at this depth.
                    let depth = self.depth;
                    let mut idx = 0;
                    while idx < self.open_scopes.len() {
                        if self.open_scopes[idx].2 >= depth {
                            let (fi, kind, _) = self.open_scopes.remove(idx);
                            set_release(model, fi, &kind, number);
                        } else {
                            idx += 1;
                        }
                    }
                    self.depth -= 1;
                    while self
                        .fn_stack
                        .last()
                        .is_some_and(|&(_, open)| self.depth < open)
                    {
                        let (fi, _) = self.fn_stack.pop().expect("fn stack");
                        model.functions[fi].end = number;
                    }
                    while self
                        .impl_stack
                        .last()
                        .is_some_and(|&(_, open)| open != i64::MIN && self.depth < open)
                    {
                        self.impl_stack.pop();
                    }
                }
                _ => {}
            }
        }
    }

    /// Finds calls, acquisitions, typed lets, and `drop()`s in one line
    /// slice belonging to function `fi`.
    fn extract_events(&mut self, model: &mut WorkspaceModel, fi: usize, code: &str, number: usize) {
        let trimmed = code.trim_start();
        let let_binding = trimmed
            .strip_prefix("let ")
            .and_then(|r| let_binding_name(trimmed).map(|n| (n, r)));
        // Typed let: `let x: T = ...` (also `let mut x: T`).
        if let Some((name, _)) = &let_binding {
            if let Some(colon) = trimmed.find(':') {
                let after = &trimmed[colon + 1..];
                if let Some(eq) = after.find('=') {
                    let ty = after[..eq].trim().to_string();
                    if !ty.is_empty() {
                        model.functions[fi].typed_lets.push((name.clone(), ty));
                    }
                }
            } else if let Some(eq) = trimmed.find('=') {
                // `let x = Type { ..` / `let x = Type::ctor(..)` /
                // `let mut n = 0u64;` (suffixed literal).
                let rhs = trimmed[eq + 1..].trim_start();
                if let Some(ident) = leading_ident(rhs) {
                    if ident.chars().next().is_some_and(char::is_uppercase) {
                        let next = rhs[ident.len()..].trim_start();
                        if next.starts_with('{') || next.starts_with("::") {
                            model.functions[fi]
                                .typed_lets
                                .push((name.clone(), ident.to_string()));
                        }
                    } else if ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                        let suffix =
                            ident.trim_start_matches(|c: char| c.is_ascii_digit() || c == '_');
                        if PRIMITIVES.contains(&suffix) {
                            model.functions[fi]
                                .typed_lets
                                .push((name.clone(), suffix.to_string()));
                        }
                    }
                }
            }
        }
        let chars: Vec<char> = code.chars().collect();
        let mut i = 0usize;
        let mut seq = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if !(c.is_alphabetic() || c == '_') {
                i += 1;
                continue;
            }
            // Read an identifier (absorbing a path/receiver chain that
            // precedes it is done below via back-scan at call time).
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let ident: String = chars[start..i].iter().collect();
            // Skip whitespace to see what follows.
            let mut j = i;
            while j < chars.len() && chars[j].is_whitespace() {
                j += 1;
            }
            if chars.get(j) != Some(&'(') {
                continue;
            }
            if NON_CALL_KEYWORDS.contains(&ident.as_str()) {
                continue;
            }
            // Back-scan the receiver chain: `a.b.`, `a::`, `self.x.`.
            let chain = receiver_chain(&chars, start);
            let full = format!("{chain}{ident}");
            if ident == "drop" && chain.is_empty() {
                // `drop(g)`: releases `g` early. Close matching scopes.
                let arg: String = chars[j + 1..]
                    .iter()
                    .take_while(|c| **c != ')')
                    .collect::<String>()
                    .trim()
                    .to_string();
                let _ = arg; // release tracked by scope end; a `drop` at
                             // the same depth closes at the same `}`.
                continue;
            }
            // A binding anywhere on the line (`let g =`, `if let Ok(g) =`,
            // `while let`) keeps a returned guard alive to scope end;
            // over-holding is the conservative direction for lock order.
            let bound = code.contains("let ");
            if ident == "lock" && !chain.is_empty() {
                // `.lock()` — either a mutex acquisition or a call to a
                // workspace `lock` helper; decide by receiver.
                let recv = chain.trim_end_matches(['.', ':']).to_string();
                if self.is_mutex_receiver(model, fi, &recv) {
                    let acq = AcqSite {
                        line: number,
                        seq,
                        lock: None, // resolved later
                        receiver: recv,
                        release_line: number,
                    };
                    seq += 1;
                    let idx = model.functions[fi].acquisitions.len();
                    model.functions[fi].acquisitions.push(acq);
                    if bound {
                        self.open_scopes.push((fi, ScopeKind::Acq(idx), self.depth));
                    }
                    continue;
                }
            }
            let call = CallSite {
                line: number,
                seq,
                name: full,
                targets: Vec::new(),
                release_line: number,
            };
            seq += 1;
            let idx = model.functions[fi].calls.len();
            model.functions[fi].calls.push(call);
            if bound {
                self.open_scopes
                    .push((fi, ScopeKind::Call(idx), self.depth));
            }
        }
    }

    /// True when `recv` names a declared mutex (field or binding) or is
    /// typed to something containing `Mutex<`.
    fn is_mutex_receiver(&self, model: &WorkspaceModel, fi: usize, recv: &str) -> bool {
        let ident = recv.rsplit(['.', ':']).next().unwrap_or(recv);
        let file = model.functions[fi].file;
        let krate = &model.files[file].krate;
        if model
            .mutexes
            .iter()
            .any(|m| m.ident == ident && (m.file == file || model.files[m.file].krate == *krate))
        {
            return true;
        }
        model
            .type_of_chain(fi, recv)
            .is_some_and(|ty| ty.contains("Mutex<"))
    }
}

fn set_release(model: &mut WorkspaceModel, fi: usize, kind: &ScopeKind, line: usize) {
    match kind {
        ScopeKind::Acq(idx) => {
            if let Some(a) = model.functions[fi].acquisitions.get_mut(*idx) {
                a.release_line = line.max(a.line);
            }
        }
        ScopeKind::Call(idx) => {
            if let Some(c) = model.functions[fi].calls.get_mut(*idx) {
                c.release_line = line.max(c.line);
            }
        }
    }
}

// ----- small parsing helpers ------------------------------------------

/// `// lock-order: a.b < c.d < e` → `["a.b", "c.d", "e"]`.
pub fn parse_lock_order(comment: &str) -> Option<Vec<String>> {
    let at = comment.find("lock-order:")?;
    if !comment[..at]
        .chars()
        .all(|c| c == '/' || c == '!' || c.is_whitespace())
    {
        return None;
    }
    let rest = &comment[at + "lock-order:".len()..];
    let names: Vec<String> = rest
        .split('<')
        .map(|s| s.trim().to_string())
        .take_while(|s| {
            !s.is_empty()
                && s.chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '.' || c == '-')
        })
        .collect();
    if names.is_empty() {
        None
    } else {
        Some(names)
    }
}

/// Leading identifier of `s`, if any.
fn leading_ident(s: &str) -> Option<&str> {
    let end = s
        .char_indices()
        .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
        .map_or(s.len(), |(i, _)| i);
    if end == 0 {
        None
    } else {
        Some(&s[..end])
    }
}

/// Matches `pub? name: Type,`-shaped lines (struct fields, multi-line fn
/// params). Rejects struct-literal lines (`name: value(...)`) by
/// refusing parentheses in the type.
fn field_shaped(trimmed: &str) -> Option<(String, String)> {
    let rest = trimmed
        .strip_prefix("pub(crate) ")
        .or_else(|| trimmed.strip_prefix("pub(super) "))
        .or_else(|| trimmed.strip_prefix("pub "))
        .unwrap_or(trimmed);
    let name = leading_ident(rest)?;
    let after = rest[name.len()..].trim_start();
    let ty = after.strip_prefix(':')?.trim();
    let ty = ty.strip_suffix(',').unwrap_or(ty).trim();
    if ty.is_empty() || ty.contains('(') || ty.contains('"') || ty.contains('=') {
        return None;
    }
    // Require type-shaped text so struct-literal *values* (`path: path,`,
    // lowercase idents) don't pollute the field map with garbage types.
    let type_shaped = ty.starts_with(|c: char| c.is_uppercase())
        || ty.starts_with('&')
        || ty.starts_with('[')
        || ty.contains('<')
        || ty.starts_with("std::")
        || ty.starts_with("crate::")
        || PRIMITIVES.contains(&ty);
    if !type_shaped {
        return None;
    }
    // Keywords never open a field.
    if [
        "let", "pub", "fn", "if", "match", "return", "else", "use", "mod", "for", "while",
    ]
    .contains(&name)
    {
        return None;
    }
    Some((name.to_string(), ty.to_string()))
}

/// `let mut? name ...` → binding name (single-identifier patterns only).
fn let_binding_name(trimmed: &str) -> Option<String> {
    let rest = trimmed.strip_prefix("let ")?.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    leading_ident(rest).map(str::to_string)
}

/// `impl Foo {` / `impl Trait for Foo {` / `impl<T> Foo<T> {` → `Foo`.
fn impl_type_of(trimmed: &str) -> Option<String> {
    let rest = trimmed.strip_prefix("impl")?;
    let rest = if let Some(r) = rest.strip_prefix('<') {
        // Skip the generic parameter list.
        let mut depth = 1;
        let mut cut = r.len();
        for (i, c) in r.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        &r[cut..]
    } else if rest.starts_with(' ') {
        rest
    } else {
        return None;
    };
    let rest = rest.trim_start();
    // `impl Trait for Type` → the Type; otherwise the first type.
    let target = match rest.find(" for ") {
        Some(at) => &rest[at + 5..],
        None => rest,
    };
    let target = target.trim_start();
    let name = leading_ident(target)?;
    Some(name.to_string())
}

/// Position just past `fn` where a function keyword starts, if the line
/// declares one (word-boundary checked; `fn` in idents like `fn_x` or
/// paths does not count).
fn find_fn_keyword(code: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(at) = code[from..].find("fn ") {
        let abs = from + at;
        let before_ok =
            abs == 0 || !(bytes[abs - 1].is_ascii_alphanumeric() || bytes[abs - 1] == b'_');
        if before_ok {
            // Must be followed by an identifier (not `fn(` pointer types).
            let after = code[abs + 3..].trim_start();
            if after
                .chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
            {
                return Some(abs);
            }
        }
        from = abs + 3;
    }
    None
}

/// Finds the signature terminator in accumulated text: byte index of the
/// body `{` (true) or the `;` of a bodyless declaration (false). The
/// terminator must sit outside parens/generics so `where` clauses and
/// default-arg braces don't confuse it.
fn sig_terminator(text: &str) -> Option<(usize, bool)> {
    let mut paren = 0i64;
    let mut angle = 0i64;
    let mut seen_paren = false;
    for (i, c) in text.char_indices() {
        match c {
            '(' => {
                paren += 1;
                seen_paren = true;
            }
            ')' => paren -= 1,
            '<' => angle += 1,
            // `->` is not a generic close.
            '>' if !text[..i].ends_with('-') => angle -= 1,
            '{' if paren == 0 && seen_paren => return Some((i, true)),
            ';' if paren == 0 && angle <= 0 && seen_paren => return Some((i, false)),
            _ => {}
        }
    }
    None
}

/// Parses `fn name<...>(params) -> Ret` header text.
fn parse_signature(header: &str) -> (String, Vec<(String, String)>, String) {
    let after_fn = header
        .find("fn ")
        .map(|i| &header[i + 3..])
        .unwrap_or(header);
    let name = leading_ident(after_fn.trim_start())
        .unwrap_or_default()
        .to_string();
    let params_start = after_fn.find('(').map(|i| i + 1).unwrap_or(0);
    let mut depth = 1i64;
    let mut params_end = after_fn.len();
    for (i, c) in after_fn[params_start..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    params_end = params_start + i;
                    break;
                }
            }
            _ => {}
        }
    }
    let params_text = &after_fn[params_start..params_end];
    let mut params = Vec::new();
    for part in split_top_level(params_text) {
        let part = part.trim();
        if part.is_empty() || part == "self" || part.ends_with("self") {
            continue;
        }
        if let Some((n, t)) = part.split_once(':') {
            if let Some(ident) = leading_ident(n.trim().strip_prefix("mut ").unwrap_or(n.trim())) {
                params.push((ident.to_string(), t.trim().to_string()));
            }
        }
    }
    let ret = after_fn[params_end..]
        .split_once("->")
        .map(|(_, r)| r.trim().to_string())
        .unwrap_or_default();
    (name, params, ret)
}

/// Splits on commas at zero paren/angle/bracket depth.
fn split_top_level(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '(' | '<' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            '>' if !text[..i].ends_with('-') => depth -= 1,
            ',' if depth == 0 => {
                out.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&text[start..]);
    out
}

/// Back-scans the receiver chain ending just before char `at`:
/// `self.inner.` for `self.inner.lock`, `wire::` for `wire::decode`.
/// Returns `""` for bare calls, and a chain ending in `.`/`::` or `.`
/// when a receiver exists. Chains through `)`/`]` (call results) yield
/// the opaque marker `"?."` so callers know the receiver is untypable.
fn receiver_chain(chars: &[char], at: usize) -> String {
    let mut i = at;
    let mut chain = String::new();
    loop {
        // Expect `.` or `::` immediately before the current segment.
        if i >= 1 && chars[i - 1] == '.' {
            i -= 1;
            chain.insert(0, '.');
        } else if i >= 2 && chars[i - 1] == ':' && chars[i - 2] == ':' {
            i -= 2;
            chain.insert_str(0, "::");
        } else {
            break;
        }
        // Read the segment before the separator.
        if i >= 1 && (chars[i - 1] == ')' || chars[i - 1] == ']') {
            chain.insert(0, '?');
            break;
        }
        let end = i;
        while i >= 1 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
            i -= 1;
        }
        if i == end {
            break;
        }
        let seg: String = chars[i..end].iter().collect();
        chain.insert_str(0, &seg);
    }
    chain
}

/// Final path segment of a type, wrappers stripped: `&Arc<HistoryStore>`
/// → `HistoryStore`, `MutexGuard<'_, Inner>` → `Inner`.
fn base_type(ty: &str) -> String {
    let mut t = ty.trim();
    loop {
        t = t.trim_start_matches('&').trim_start_matches("mut ").trim();
        let mut unwrapped = false;
        for wrapper in ["Arc<", "Rc<", "Box<", "Option<", "MutexGuard<"] {
            if let Some(rest) = t.strip_prefix(wrapper) {
                let inner = rest.strip_suffix('>').unwrap_or(rest);
                // `MutexGuard<'_, Inner>`: skip the lifetime.
                t = inner
                    .rsplit_once(',')
                    .map(|(_, x)| x)
                    .unwrap_or(inner)
                    .trim();
                unwrapped = true;
                break;
            }
        }
        if !unwrapped {
            break;
        }
    }
    // Drop generics and leading path.
    let t = t.split('<').next().unwrap_or(t);
    let t = t.rsplit("::").next().unwrap_or(t);
    t.trim().to_string()
}

/// The split of a written call path into (receiver chain, final ident).
fn split_chain(full: &str) -> (String, &str) {
    if let Some(at) = full.rfind("::") {
        (full[..at + 2].to_string(), &full[at + 2..])
    } else if let Some(at) = full.rfind('.') {
        (full[..at + 1].to_string(), &full[at + 1..])
    } else {
        (String::new(), full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(files: &[(&str, &str)]) -> WorkspaceModel {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        WorkspaceModel::build(&sources)
    }

    #[test]
    fn functions_and_methods_are_extracted_with_impl_types() {
        let m = model_of(&[(
            "crates/demo/src/lib.rs",
            "struct Store { inner: u64 }\n\
             impl Store {\n\
                 fn get(&self) -> u64 { self.inner }\n\
             }\n\
             fn free(x: u64) -> u64 { x }\n",
        )]);
        assert_eq!(m.functions.len(), 2);
        let get = &m.functions[0];
        assert_eq!(get.name, "get");
        assert_eq!(get.impl_type.as_deref(), Some("Store"));
        let free = &m.functions[1];
        assert_eq!(free.name, "free");
        assert!(free.impl_type.is_none());
        assert_eq!(free.params, vec![("x".to_string(), "u64".to_string())]);
    }

    #[test]
    fn calls_resolve_by_receiver_type_and_by_name() {
        let m = model_of(&[(
            "crates/demo/src/lib.rs",
            "struct A;\n\
             impl A {\n\
                 fn ping(&self) {}\n\
             }\n\
             fn caller(a: &A) { a.ping(); helper(); }\n\
             fn helper() {}\n",
        )]);
        let caller = m.function("crates/demo/src/lib.rs", "caller").unwrap();
        let calls = &m.functions[caller].calls;
        assert_eq!(calls.len(), 2);
        let ping = m.function("crates/demo/src/lib.rs", "ping").unwrap();
        let helper = m.function("crates/demo/src/lib.rs", "helper").unwrap();
        assert_eq!(calls[0].targets, vec![ping]);
        assert_eq!(calls[1].targets, vec![helper]);
    }

    #[test]
    fn mutex_fields_and_annotations_are_collected() {
        let m = model_of(&[(
            "crates/demo/src/lib.rs",
            "struct S {\n\
                 // lock-order: demo.inner < demo.outer\n\
                 inner: Mutex<u64>,\n\
                 // lock-order: demo.outer\n\
                 outer: Mutex<u64>,\n\
             }\n",
        )]);
        assert_eq!(m.mutexes.len(), 2);
        assert_eq!(m.mutexes[0].name.as_deref(), Some("demo.inner"));
        assert_eq!(m.mutexes[1].name.as_deref(), Some("demo.outer"));
        assert_eq!(m.constraints.len(), 1);
        assert_eq!(m.constraints[0].before, "demo.inner");
        assert_eq!(m.constraints[0].after, "demo.outer");
    }

    #[test]
    fn acquisitions_resolve_to_declared_mutexes_with_scoped_release() {
        let m = model_of(&[(
            "crates/demo/src/lib.rs",
            "struct S {\n\
                 // lock-order: demo.inner\n\
                 inner: Mutex<u64>,\n\
             }\n\
             impl S {\n\
                 fn f(&self) {\n\
                     let g = self.inner.lock();\n\
                     touch(&g);\n\
                 }\n\
             }\n\
             fn touch(_: &u64) {}\n",
        )]);
        let f = m.function("crates/demo/src/lib.rs", "f").unwrap();
        let acqs = &m.functions[f].acquisitions;
        assert_eq!(acqs.len(), 1);
        assert_eq!(acqs[0].lock, Some(0));
        assert!(
            acqs[0].release_line > acqs[0].line,
            "let-bound guard held past its line: {acqs:?}"
        );
    }

    #[test]
    fn guard_returning_helpers_are_recognized() {
        let m = model_of(&[(
            "crates/demo/src/lib.rs",
            "struct S {\n\
                 // lock-order: demo.inner\n\
                 inner: Mutex<u64>,\n\
             }\n\
             impl S {\n\
                 fn lock(&self) -> MutexGuard<'_, u64> {\n\
                     self.inner.lock().unwrap()\n\
                 }\n\
             }\n",
        )]);
        let lockfn = m.function("crates/demo/src/lib.rs", "lock").unwrap();
        assert!(m.functions[lockfn].returns_guard());
        assert_eq!(m.functions[lockfn].acquisitions.len(), 1);
    }

    #[test]
    fn exercise_files_grow_no_functions() {
        let m = model_of(&[("crates/demo/tests/int.rs", "fn helper() {}\n")]);
        assert!(m.functions.is_empty());
        assert_eq!(m.files.len(), 1);
        assert!(m.files[0].exercise);
    }
}
