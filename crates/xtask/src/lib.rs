//! `cargo xtask` — repo-owned developer tooling.
//!
//! The only task so far is `lint`: a custom static-analysis suite that
//! enforces the workspace's DoS-resilience invariants at the source
//! level (see `docs/STATIC_ANALYSIS.md` for the rules and the rationale
//! tying each one back to the paper). Two layers share one engine:
//! per-file token rules over each file's blanked line view, and
//! cross-file workspace passes (lock-order, poll-loop purity,
//! overflow-audit, unsafe-perimeter) over the call-graph model in
//! [`graph`]. Everything is dependency-free: it builds in well under a
//! second, runs offline, and is wired into CI as a blocking step.

#![forbid(unsafe_code)]

pub mod allowlist;
pub mod graph;
pub mod passes;
pub mod rules;
pub mod scan;

use allowlist::Allowlist;
use graph::WorkspaceModel;
use rules::Violation;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Wall time one rule or pass took over the whole workspace.
#[derive(Debug, Clone)]
pub struct RuleTiming {
    /// Rule id, or `workspace-graph` for model construction.
    pub rule: String,
    pub micros: u128,
}

/// Outcome of linting the whole workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings that survived suppression, path-then-line ordered.
    pub violations: Vec<Violation>,
    /// Rust files inspected.
    pub files_scanned: usize,
    /// Allowlist entries loaded from `lint.toml` (`[[allow]]` plus
    /// `[[unsafe-file]]`).
    pub allow_entries: usize,
    /// Per-rule wall time, in report order.
    pub timings: Vec<RuleTiming>,
}

impl LintReport {
    /// Machine-readable form for CI annotation tooling. Hand-rolled
    /// (the workspace builds offline with no serde in xtask); keys are
    /// stable API for `.github/workflows/ci.yml`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"allow_entries\": {},\n", self.allow_entries));
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \
                 \"snippet\": {}}}",
                json_str(v.rule),
                json_str(&v.path),
                v.line,
                json_str(&v.message),
                json_str(&v.snippet),
            ));
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"timings\": [");
        for (i, t) in self.timings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"micros\": {}}}",
                json_str(&t.rule),
                t.micros
            ));
        }
        if !self.timings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// JSON string literal with the escapes the report can actually contain.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Any failure of the lint *driver* (rule findings are data, not errors).
#[derive(Debug)]
pub enum XtaskError {
    /// Filesystem trouble under the workspace root.
    Io(PathBuf, std::io::Error),
    /// `lint.toml` did not parse or validate.
    Allowlist(allowlist::AllowlistError),
}

impl std::fmt::Display for XtaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XtaskError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            XtaskError::Allowlist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for XtaskError {}

impl From<allowlist::AllowlistError> for XtaskError {
    fn from(e: allowlist::AllowlistError) -> Self {
        XtaskError::Allowlist(e)
    }
}

/// Lints every `.rs` file under `<root>/crates` against the allowlist at
/// `<root>/lint.toml` (a missing allowlist means no file-level
/// exceptions). The vendored shims under `vendor/` are third-party API
/// surface reimplementations and are out of scope by design.
pub fn lint_workspace(root: &Path) -> Result<LintReport, XtaskError> {
    let allow_path = root.join("lint.toml");
    let allowlist = match std::fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Allowlist::default(),
        Err(e) => return Err(XtaskError::Io(allow_path, e)),
    };
    let mut report = LintReport {
        allow_entries: allowlist.entries.len() + allowlist.unsafe_files.len(),
        ..LintReport::default()
    };
    let mut files = Vec::new();
    collect_rust_files(&root.join("crates"), &mut files)?;
    files.sort();
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in files {
        let source = std::fs::read_to_string(&path).map_err(|e| XtaskError::Io(path.clone(), e))?;
        sources.push((relative_path(root, &path), source));
    }
    report.files_scanned = sources.len();

    // One scan per file; per-file rules and workspace passes share it.
    let start = Instant::now();
    let model = WorkspaceModel::build(&sources);
    report.timings.push(RuleTiming {
        rule: "workspace-graph".to_string(),
        micros: start.elapsed().as_micros(),
    });

    let mut found: Vec<Violation> = Vec::new();
    for (id, rule) in rules::FILE_RULES {
        let start = Instant::now();
        for file in &model.files {
            if file.exercise {
                continue;
            }
            rule(&file.path, &file.scanned, &mut found);
        }
        report.timings.push(RuleTiming {
            rule: id.to_string(),
            micros: start.elapsed().as_micros(),
        });
    }
    for (id, pass) in [
        (
            "lock-order",
            run_lock_order as fn(&WorkspaceModel, &Allowlist, &mut Vec<Violation>),
        ),
        ("poll-loop-purity", run_poll_purity),
        ("overflow-audit", run_overflow),
        ("unsafe-perimeter", run_unsafe_perimeter),
    ] {
        let start = Instant::now();
        pass(&model, &allowlist, &mut found);
        report.timings.push(RuleTiming {
            rule: id.to_string(),
            micros: start.elapsed().as_micros(),
        });
    }

    found.retain(|v| match model.scanned(&v.path) {
        Some(file) => !rules::suppressed(v, file, &allowlist),
        None => !allowlist.permits(v),
    });
    report.violations = found;
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

fn run_lock_order(model: &WorkspaceModel, _allow: &Allowlist, out: &mut Vec<Violation>) {
    passes::lock_order::check(model, out);
}

fn run_poll_purity(model: &WorkspaceModel, _allow: &Allowlist, out: &mut Vec<Violation>) {
    passes::poll_purity::check(model, out);
}

fn run_overflow(model: &WorkspaceModel, _allow: &Allowlist, out: &mut Vec<Violation>) {
    passes::overflow::check(model, out);
}

fn run_unsafe_perimeter(model: &WorkspaceModel, allow: &Allowlist, out: &mut Vec<Violation>) {
    passes::unsafe_perimeter::check(model, &allow.unsafe_files, out);
}

fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), XtaskError> {
    let entries = std::fs::read_dir(dir).map_err(|e| XtaskError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| XtaskError::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root from the xtask manifest dir (compile-time,
/// so `cargo xtask lint` works from any subdirectory).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_escapes_and_round_trips_structure() {
        let report = LintReport {
            violations: vec![Violation {
                path: "crates/a/src/lib.rs".to_string(),
                line: 3,
                rule: "hot-path-panic",
                message: "say \"no\" to\npanics".to_string(),
                snippet: "x.unwrap()\t// tab".to_string(),
            }],
            files_scanned: 2,
            allow_entries: 1,
            timings: vec![RuleTiming {
                rule: "hot-path-panic".to_string(),
                micros: 1234,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"files_scanned\": 2"));
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("say \\\"no\\\" to\\npanics"));
        assert!(json.contains("x.unwrap()\\t// tab"));
        assert!(json.contains("\"micros\": 1234"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_report_serializes_to_empty_arrays() {
        let json = LintReport::default().to_json();
        assert!(json.contains("\"violations\": []"));
        assert!(json.contains("\"timings\": []"));
    }
}
