//! `cargo xtask` — repo-owned developer tooling.
//!
//! The only task so far is `lint`: a custom static-analysis pass that
//! enforces the workspace's DoS-resilience invariants at the source
//! level (see `docs/STATIC_ANALYSIS.md` for the rules and the rationale
//! tying each one back to the paper). The engine is a dependency-free
//! token scanner: it builds in well under a second, runs offline, and is
//! wired into CI as a blocking step.

pub mod allowlist;
pub mod rules;
pub mod scan;

use allowlist::Allowlist;
use rules::Violation;
use std::path::{Path, PathBuf};

/// Outcome of linting the whole workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings that survived suppression, path-then-line ordered.
    pub violations: Vec<Violation>,
    /// Rust files inspected.
    pub files_scanned: usize,
    /// Allowlist entries loaded from `lint.toml`.
    pub allow_entries: usize,
}

/// Any failure of the lint *driver* (rule findings are data, not errors).
#[derive(Debug)]
pub enum XtaskError {
    /// Filesystem trouble under the workspace root.
    Io(PathBuf, std::io::Error),
    /// `lint.toml` did not parse or validate.
    Allowlist(allowlist::AllowlistError),
}

impl std::fmt::Display for XtaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XtaskError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            XtaskError::Allowlist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for XtaskError {}

impl From<allowlist::AllowlistError> for XtaskError {
    fn from(e: allowlist::AllowlistError) -> Self {
        XtaskError::Allowlist(e)
    }
}

/// Lints every `.rs` file under `<root>/crates` against the allowlist at
/// `<root>/lint.toml` (a missing allowlist means no file-level
/// exceptions). The vendored shims under `vendor/` are third-party API
/// surface reimplementations and are out of scope by design.
pub fn lint_workspace(root: &Path) -> Result<LintReport, XtaskError> {
    let allow_path = root.join("lint.toml");
    let allowlist = match std::fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Allowlist::default(),
        Err(e) => return Err(XtaskError::Io(allow_path, e)),
    };
    let mut report = LintReport {
        allow_entries: allowlist.entries.len(),
        ..LintReport::default()
    };
    let mut files = Vec::new();
    collect_rust_files(&root.join("crates"), &mut files)?;
    files.sort();
    for path in files {
        let source = std::fs::read_to_string(&path).map_err(|e| XtaskError::Io(path.clone(), e))?;
        let rel = relative_path(root, &path);
        report
            .violations
            .extend(rules::lint_source(&rel, &source, &allowlist));
        report.files_scanned += 1;
    }
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), XtaskError> {
    let entries = std::fs::read_dir(dir).map_err(|e| XtaskError::Io(dir.to_path_buf(), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| XtaskError::Io(dir.to_path_buf(), e))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root from the xtask manifest dir (compile-time,
/// so `cargo xtask lint` works from any subdirectory).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}
