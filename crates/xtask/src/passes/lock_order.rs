//! Pass `lock-order`: the global lock-acquisition graph must be
//! consistent with the declared hierarchy.
//!
//! Every `Mutex` declaration carries a `// lock-order: <name>`
//! annotation naming its place in the hierarchy; a chain form
//! `// lock-order: a < b < c` additionally declares that `a` may be
//! held while acquiring `b`, and `b` while acquiring `c`. The pass
//! extracts every acquisition per function, propagates lock sets
//! through the call graph to a fixpoint, walks each function's
//! acquire/call events with guard scopes modeled, and then demands
//! that every *observed* held→acquired edge is covered by the declared
//! (acyclic) ordering. An edge between locks with no declared
//! relationship is a violation too: the hierarchy must be explicit,
//! not inferred, so an inversion shows up as a diff on the annotation
//! rather than a runtime deadlock two tiers deep.

use crate::graph::WorkspaceModel;
use crate::rules::Violation;
use std::collections::{BTreeMap, BTreeSet};

pub const RULE: &str = "lock-order";

/// One observed held→acquired edge, with its site.
struct Edge {
    held: usize,
    acquired: usize,
    func: usize,
    line: usize,
}

pub fn check(model: &WorkspaceModel, out: &mut Vec<Violation>) {
    // --- declarations: every mutex annotated, names unique ------------
    let mut names: BTreeMap<&str, usize> = BTreeMap::new();
    for (mi, m) in model.mutexes.iter().enumerate() {
        let path = model.files[m.file].path.clone();
        match &m.name {
            None => out.push(violation(
                path,
                m.line,
                format!(
                    "`Mutex` `{}` has no `// lock-order: <name>` annotation; every lock must \
                     declare its place in the hierarchy (chain form `// lock-order: a < b` \
                     declares that `a` may be held while acquiring `b`)",
                    m.ident
                ),
                &m.snippet,
            )),
            Some(name) => {
                if let Some(prev) = names.insert(name.as_str(), mi) {
                    let prev = &model.mutexes[prev];
                    out.push(violation(
                        path,
                        m.line,
                        format!(
                            "lock-order name `{name}` is already used by `{}` at {}:{}; names \
                             must be unique so the hierarchy is unambiguous",
                            prev.ident, model.files[prev.file].path, prev.line
                        ),
                        &m.snippet,
                    ));
                }
            }
        }
    }

    // --- declared constraints: known names, acyclic -------------------
    let mut declared: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for c in &model.constraints {
        for name in [&c.before, &c.after] {
            if !names.contains_key(name.as_str()) {
                out.push(violation(
                    model.files[c.file].path.clone(),
                    c.line,
                    format!(
                        "lock-order constraint references `{name}`, but no `Mutex` declares \
                         that name"
                    ),
                    "",
                ));
            }
        }
        declared
            .entry(c.before.as_str())
            .or_default()
            .insert(c.after.as_str());
    }
    if let Some(cycle) = find_cycle(&declared) {
        // Report at the first constraint participating in the cycle.
        let site = model
            .constraints
            .iter()
            .find(|c| cycle.contains(&c.before.as_str()))
            .expect("cycle implies a constraint");
        out.push(violation(
            model.files[site.file].path.clone(),
            site.line,
            format!(
                "declared lock-order hierarchy is cyclic ({}); a cycle in the declaration \
                 means no safe acquisition order exists",
                cycle.join(" < ")
            ),
            "",
        ));
        // A cyclic declaration makes conformance checking meaningless.
        return;
    }
    let reach = transitive_closure(&declared);

    // --- transitive lock sets per function ----------------------------
    let nfun = model.functions.len();
    let mut sets: Vec<BTreeSet<usize>> = (0..nfun)
        .map(|fi| {
            model.functions[fi]
                .acquisitions
                .iter()
                .filter_map(|a| a.lock)
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for fi in 0..nfun {
            let mut add: BTreeSet<usize> = BTreeSet::new();
            for call in &model.functions[fi].calls {
                for &t in &call.targets {
                    add.extend(sets[t].iter().copied());
                }
            }
            for l in add {
                changed |= sets[fi].insert(l);
            }
        }
        if !changed {
            break;
        }
    }

    // --- event walk: observed edges, re-entrancy, unattributable ------
    let mut edges: Vec<Edge> = Vec::new();
    for (fi, f) in model.functions.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let path = &model.files[f.file].path;
        // Merge acquisitions and calls into line order; on one line,
        // acquisitions first (arguments are evaluated before the call).
        enum Ev<'a> {
            A(&'a crate::graph::AcqSite),
            C(&'a crate::graph::CallSite),
        }
        let mut events: Vec<(usize, u8, usize, Ev)> = f
            .acquisitions
            .iter()
            .map(|a| (a.line, 0u8, a.seq, Ev::A(a)))
            .chain(f.calls.iter().map(|c| (c.line, 1u8, c.seq, Ev::C(c))))
            .collect();
        events.sort_by_key(|(line, kind, seq, _)| (*line, *kind, *seq));
        // Held guards: (lock, release line).
        let mut held: Vec<(usize, usize)> = Vec::new();
        for (line, _, _, ev) in events {
            held.retain(|&(_, release)| release >= line);
            match ev {
                Ev::A(a) => {
                    let Some(lock) = a.lock else {
                        out.push(violation(
                            path.clone(),
                            a.line,
                            format!(
                                "`.lock()` on `{}` cannot be attributed to any declared \
                                 `Mutex`; declare the lock (with a `// lock-order:` \
                                 annotation) where it is created",
                                a.receiver
                            ),
                            &snippet_at(model, f.file, a.line),
                        ));
                        continue;
                    };
                    for &(h, _) in &held {
                        if h == lock {
                            out.push(violation(
                                path.clone(),
                                a.line,
                                format!(
                                    "`{}` is re-acquired while already held in `{}`; a \
                                     second `.lock()` on the same std Mutex deadlocks",
                                    lock_name(model, lock),
                                    f.name
                                ),
                                &snippet_at(model, f.file, a.line),
                            ));
                        } else {
                            edges.push(Edge {
                                held: h,
                                acquired: lock,
                                func: fi,
                                line: a.line,
                            });
                        }
                    }
                    held.push((lock, a.release_line));
                }
                Ev::C(c) => {
                    let mut callee: BTreeSet<usize> = BTreeSet::new();
                    let mut guard = false;
                    for &t in &c.targets {
                        callee.extend(sets[t].iter().copied());
                        guard |= model.functions[t].returns_guard();
                    }
                    if callee.is_empty() {
                        continue;
                    }
                    for &(h, _) in &held {
                        for &l in &callee {
                            if h == l {
                                out.push(violation(
                                    path.clone(),
                                    c.line,
                                    format!(
                                        "call to `{}` may re-acquire `{}` which `{}` already \
                                         holds here; a second `.lock()` on the same std Mutex \
                                         deadlocks",
                                        c.name,
                                        lock_name(model, l),
                                        f.name
                                    ),
                                    &snippet_at(model, f.file, c.line),
                                ));
                            } else {
                                edges.push(Edge {
                                    held: h,
                                    acquired: l,
                                    func: fi,
                                    line: c.line,
                                });
                            }
                        }
                    }
                    if guard {
                        for &l in &callee {
                            held.push((l, c.release_line));
                        }
                    }
                }
            }
        }
    }

    // --- conformance: every observed edge is declared -----------------
    let mut reported: BTreeSet<(usize, usize, usize)> = BTreeSet::new();
    for e in edges {
        let (Some(h), Some(a)) = (
            model.mutexes[e.held].name.as_deref(),
            model.mutexes[e.acquired].name.as_deref(),
        ) else {
            continue; // unannotated locks already violated above
        };
        let permitted = reach.get(h).is_some_and(|r| r.contains(a));
        if !permitted && reported.insert((e.held, e.acquired, e.line)) {
            let f = &model.functions[e.func];
            out.push(violation(
                model.files[f.file].path.clone(),
                e.line,
                format!(
                    "`{a}` is acquired while `{h}` is held (in `{}`), but the declared \
                     hierarchy does not permit `{h} < {a}`; either reorder the acquisitions \
                     or extend the `// lock-order:` chain at one of the declarations",
                    f.name
                ),
                &snippet_at(model, f.file, e.line),
            ));
        }
    }
}

fn violation(path: String, line: usize, message: String, snippet: &str) -> Violation {
    Violation {
        path,
        line,
        rule: RULE,
        message,
        snippet: snippet.to_string(),
    }
}

fn lock_name(model: &WorkspaceModel, lock: usize) -> String {
    let m = &model.mutexes[lock];
    m.name.clone().unwrap_or_else(|| m.ident.clone())
}

fn snippet_at(model: &WorkspaceModel, file: usize, line: usize) -> String {
    model.files[file]
        .scanned
        .lines
        .get(line - 1)
        .map(|l| l.raw.trim().to_string())
        .unwrap_or_default()
}

/// Returns the node names of some cycle in `adj`, if one exists.
fn find_cycle<'a>(adj: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> Option<Vec<&'a str>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
        marks: &mut BTreeMap<&'a str, Mark>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<&'a str>> {
        marks.insert(node, Mark::Grey);
        stack.push(node);
        for &next in adj.get(node).into_iter().flatten() {
            match marks.get(next).copied().unwrap_or(Mark::White) {
                Mark::Grey => {
                    let from = stack.iter().position(|&n| n == next).unwrap_or(0);
                    return Some(stack[from..].to_vec());
                }
                Mark::White => {
                    if let Some(cycle) = dfs(next, adj, marks, stack) {
                        return Some(cycle);
                    }
                }
                Mark::Black => {}
            }
        }
        stack.pop();
        marks.insert(node, Mark::Black);
        None
    }
    let mut marks: BTreeMap<&str, Mark> = BTreeMap::new();
    for &node in adj.keys() {
        if marks.get(node).copied().unwrap_or(Mark::White) == Mark::White {
            let mut stack = Vec::new();
            if let Some(cycle) = dfs(node, adj, &mut marks, &mut stack) {
                return Some(cycle);
            }
        }
    }
    None
}

/// Reachability closure of the declared ordering.
fn transitive_closure<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
) -> BTreeMap<&'a str, BTreeSet<&'a str>> {
    let mut reach: BTreeMap<&str, BTreeSet<&str>> = adj.clone();
    loop {
        let mut changed = false;
        let keys: Vec<&str> = reach.keys().copied().collect();
        for k in keys {
            let step: BTreeSet<&str> = reach[k]
                .iter()
                .flat_map(|n| reach.get(n).into_iter().flatten().copied())
                .collect();
            for n in step {
                changed |= reach.get_mut(k).expect("key exists").insert(n);
            }
        }
        if !changed {
            break;
        }
    }
    reach
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Violation> {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let model = WorkspaceModel::build(&sources);
        let mut out = Vec::new();
        check(&model, &mut out);
        out
    }

    const TWO_LOCKS: &str = "struct S {\n\
             // lock-order: t.a < t.b\n\
             a: Mutex<u64>,\n\
             // lock-order: t.b\n\
             b: Mutex<u64>,\n\
         }\n";

    #[test]
    fn seeded_cycle_between_two_locks_is_detected() {
        // `f` nests a-then-b (declared), `g` nests b-then-a: the classic
        // two-lock deadlock. The b→a edge is not covered by `t.a < t.b`.
        let src = format!(
            "{TWO_LOCKS}\
             impl S {{\n\
                 fn f(&self) {{\n\
                     let ga = self.a.lock();\n\
                     let gb = self.b.lock();\n\
                 }}\n\
                 fn g(&self) {{\n\
                     let gb = self.b.lock();\n\
                     let ga = self.a.lock();\n\
                 }}\n\
             }}\n"
        );
        let found = run(&[("crates/demo/src/lib.rs", &src)]);
        assert_eq!(found.len(), 1, "exactly the inverted edge: {found:?}");
        assert!(found[0]
            .message
            .contains("`t.a` is acquired while `t.b` is held"));
        assert!(found[0].message.contains("in `g`"));
    }

    #[test]
    fn declared_order_and_conforming_code_are_clean() {
        let src = format!(
            "{TWO_LOCKS}\
             impl S {{\n\
                 fn f(&self) {{\n\
                     let ga = self.a.lock();\n\
                     let gb = self.b.lock();\n\
                 }}\n\
             }}\n"
        );
        let found = run(&[("crates/demo/src/lib.rs", &src)]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn inversion_through_the_call_graph_is_detected() {
        // `g` holds t.b and calls `deep`, which (transitively) acquires
        // t.a — the inversion only exists across function boundaries.
        let src = format!(
            "{TWO_LOCKS}\
             impl S {{\n\
                 fn g(&self) {{\n\
                     let gb = self.b.lock();\n\
                     self.deep();\n\
                 }}\n\
                 fn deep(&self) {{\n\
                     self.deeper();\n\
                 }}\n\
                 fn deeper(&self) {{\n\
                     let ga = self.a.lock();\n\
                 }}\n\
             }}\n"
        );
        let found = run(&[("crates/demo/src/lib.rs", &src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0]
            .message
            .contains("`t.a` is acquired while `t.b` is held"));
    }

    #[test]
    fn reacquiring_a_held_lock_is_a_deadlock_violation() {
        let src = "struct S {\n\
                 // lock-order: t.a\n\
                 a: Mutex<u64>,\n\
             }\n\
             impl S {\n\
                 fn f(&self) {\n\
                     let g1 = self.a.lock();\n\
                     let g2 = self.a.lock();\n\
                 }\n\
             }\n";
        let found = run(&[("crates/demo/src/lib.rs", src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("re-acquired"));
    }

    #[test]
    fn guard_released_by_scope_permits_sequential_use() {
        // a is released (block end) before b is taken: no edge at all,
        // so no declaration between them is needed.
        let src = "struct S {\n\
                 // lock-order: t.a\n\
                 a: Mutex<u64>,\n\
                 // lock-order: t.b\n\
                 b: Mutex<u64>,\n\
             }\n\
             impl S {\n\
                 fn f(&self) {\n\
                     {\n\
                         let ga = self.a.lock();\n\
                     }\n\
                     let gb = self.b.lock();\n\
                 }\n\
             }\n";
        let found = run(&[("crates/demo/src/lib.rs", src)]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn unannotated_mutex_is_flagged() {
        let src = "struct S {\n\
                 a: Mutex<u64>,\n\
             }\n";
        let found = run(&[("crates/demo/src/lib.rs", src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("no `// lock-order:"));
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn cyclic_declaration_is_rejected() {
        let src = "struct S {\n\
                 // lock-order: t.a < t.b\n\
                 a: Mutex<u64>,\n\
                 // lock-order: t.b < t.a\n\
                 b: Mutex<u64>,\n\
             }\n";
        let found = run(&[("crates/demo/src/lib.rs", src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("cyclic"));
    }

    #[test]
    fn duplicate_lock_names_are_rejected() {
        let src = "struct S {\n\
                 // lock-order: t.a\n\
                 a: Mutex<u64>,\n\
                 // lock-order: t.a\n\
                 b: Mutex<u64>,\n\
             }\n";
        let found = run(&[("crates/demo/src/lib.rs", src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("already used"));
    }

    #[test]
    fn constraint_naming_an_unknown_lock_is_flagged() {
        let src = "struct S {\n\
                 // lock-order: t.a < t.ghost\n\
                 a: Mutex<u64>,\n\
             }\n";
        let found = run(&[("crates/demo/src/lib.rs", src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("t.ghost"));
    }

    #[test]
    fn guard_returning_helper_propagates_the_held_lock() {
        // `outer` holds t.b (via the helper) and then locks t.a — the
        // inversion must be seen through the MutexGuard-returning helper.
        let src = "struct S {\n\
                 // lock-order: t.a < t.b\n\
                 a: Mutex<u64>,\n\
                 // lock-order: t.b\n\
                 b: Mutex<u64>,\n\
             }\n\
             impl S {\n\
                 fn lock_b(&self) -> MutexGuard<'_, u64> {\n\
                     self.b.lock().unwrap()\n\
                 }\n\
                 fn outer(&self) {\n\
                     let gb = self.lock_b();\n\
                     let ga = self.a.lock();\n\
                 }\n\
             }\n";
        let found = run(&[("crates/demo/src/lib.rs", src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0]
            .message
            .contains("`t.a` is acquired while `t.b` is held"));
    }

    #[test]
    fn cross_file_edges_within_a_crate_are_seen() {
        // Lock declarations and the inverted use live in different files
        // of the same crate.
        let decl = "pub struct S {\n\
                 // lock-order: t.a < t.b\n\
                 pub a: Mutex<u64>,\n\
                 // lock-order: t.b\n\
                 pub b: Mutex<u64>,\n\
             }\n";
        let usefile = "fn invert(s: &S) {\n\
                 let gb = s.b.lock();\n\
                 let ga = s.a.lock();\n\
             }\n";
        let found = run(&[
            ("crates/demo/src/decl.rs", decl),
            ("crates/demo/src/use_site.rs", usefile),
        ]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].path.ends_with("use_site.rs"));
    }
}
