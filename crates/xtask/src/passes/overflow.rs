//! Pass `overflow-audit`: counter arithmetic in the sketch hot paths
//! must be explicit about wraparound.
//!
//! The sketch/forecast/flowtable counters absorb attacker-driven
//! traffic volumes; in release builds a bare `+=` wraps silently,
//! turning a flooding source into a counter that *shrinks* — precisely
//! the blind spot a change-detection IDS cannot afford (saturating
//! counters are the discipline the invertible-sketch literature
//! assumes). The pass flags unchecked `+=`/`-=`/`*=` (and plain `=`
//! with top-level `+`/`*` on the right) when the left side resolves to
//! an integer-typed field, local, or element, unless the line uses
//! `saturating_*`/`wrapping_*`/`checked_*` or carries an inline
//! justification. Float accumulators (EWMA math) are out of scope by
//! type. Index arithmetic inside `[...]` is not the accumulator itself
//! and is ignored here.

use crate::graph::WorkspaceModel;
use crate::rules::Violation;

pub const RULE: &str = "overflow-audit";

/// Hot-path directories audited by this pass.
pub const PERIMETER: [&str; 3] = [
    "crates/sketch/src/",
    "crates/forecast/src/",
    "crates/flowtable/src/",
];

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

#[derive(PartialEq)]
enum Class {
    Int,
    Float,
    Unknown,
}

pub fn check(model: &WorkspaceModel, out: &mut Vec<Violation>) {
    for (fx, file) in model.files.iter().enumerate() {
        if !PERIMETER.iter().any(|p| file.path.starts_with(p)) || file.exercise {
            continue;
        }
        for li in 0..file.scanned.lines.len() {
            let line = &file.scanned.lines[li];
            if line.in_test {
                continue;
            }
            scan_line(
                model,
                fx,
                &file.path,
                line.number,
                &line.code,
                &line.raw,
                out,
            );
        }
    }
}

fn scan_line(
    model: &WorkspaceModel,
    fx: usize,
    path: &str,
    number: usize,
    code: &str,
    raw: &str,
    out: &mut Vec<Violation>,
) {
    for (op_at, op) in compound_ops(code) {
        let Some(lhs) = lhs_chain(code, op_at) else {
            continue;
        };
        if audit_target(model, fx, number, &lhs, code) {
            out.push(violation(path, number, op, &lhs.chain, raw));
        }
    }
    // Plain `x = a + b` / `x = a * b` on an integer target.
    if let Some(eq) = plain_assign(code) {
        if rhs_has_hot_arith(&code[eq + 1..]) {
            if let Some(lhs) = lhs_chain(code, eq) {
                if !lhs.deref && audit_target_strict(model, fx, number, &lhs, code) {
                    out.push(violation(path, number, "=", &lhs.chain, raw));
                }
            }
        }
    }
}

fn violation(path: &str, line: usize, op: &str, chain: &str, raw: &str) -> Violation {
    Violation {
        path: path.to_string(),
        line,
        rule: RULE,
        message: format!(
            "unchecked `{op}` on counter-typed `{chain}` in a sketch hot path wraps silently \
             under flood traffic; use `saturating_*`/`wrapping_*`/`checked_*` (or justify with \
             `// lint: allow(overflow-audit, <why wraparound is impossible>)`)"
        ),
        snippet: raw.trim().to_string(),
    }
}

/// Whether the resolved left side warrants a finding for a compound op:
/// integers do; floats never; unresolved only when written through a
/// deref (`*slot += x`, the sketch bucket idiom) with no float evidence.
fn audit_target(model: &WorkspaceModel, fx: usize, line: usize, lhs: &Lhs, code: &str) -> bool {
    match classify(model, fx, line, lhs) {
        Class::Int => true,
        Class::Float => false,
        Class::Unknown => lhs.deref && !float_hint(code),
    }
}

/// Strict variant for plain `=`: only a positively integer-typed target.
fn audit_target_strict(
    model: &WorkspaceModel,
    fx: usize,
    line: usize,
    lhs: &Lhs,
    code: &str,
) -> bool {
    classify(model, fx, line, lhs) == Class::Int && !float_hint(code)
}

fn classify(model: &WorkspaceModel, fx: usize, line: usize, lhs: &Lhs) -> Class {
    let Some(fi) = model.function_at(fx, line) else {
        return Class::Unknown;
    };
    let Some(ty) = model.type_of_chain(fi, &lhs.chain) else {
        return Class::Unknown;
    };
    let ty = if lhs.indexed {
        match element_type(&ty) {
            Some(elem) => elem,
            None => return Class::Unknown,
        }
    } else {
        ty
    };
    if contains_type_word(&ty, &["f32", "f64"]) {
        Class::Float
    } else if contains_type_word(&ty, &INT_TYPES) {
        Class::Int
    } else {
        Class::Unknown
    }
}

/// `Vec<i64>` → `i64`, `[u32; 8]` / `Box<[u64]>` → element type.
fn element_type(ty: &str) -> Option<String> {
    if let Some(at) = ty.find("Vec<") {
        let inner = &ty[at + 4..];
        return Some(inner.trim_end_matches('>').to_string());
    }
    if let Some(at) = ty.find('[') {
        let inner = &ty[at + 1..];
        let end = inner.find([';', ']'])?;
        return Some(inner[..end].trim().to_string());
    }
    None
}

fn contains_type_word(ty: &str, words: &[&str]) -> bool {
    ty.split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .any(|w| words.contains(&w))
}

/// Evidence the line is float math (` as f64`, a float literal).
fn float_hint(code: &str) -> bool {
    if code.contains("as f64") || code.contains("as f32") {
        return true;
    }
    let bytes = code.as_bytes();
    bytes
        .windows(3)
        .any(|w| w[1] == b'.' && w[0].is_ascii_digit() && w[2].is_ascii_digit())
}

/// Positions and spellings of compound arithmetic ops on the line.
fn compound_ops(code: &str) -> Vec<(usize, &'static str)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let two = &bytes[i..i + 2];
        let op = match two {
            b"+=" => Some("+="),
            b"-=" => Some("-="),
            b"*=" => Some("*="),
            _ => None,
        };
        if let Some(op) = op {
            // `-=`-lookalikes such as `->` are impossible here, but make
            // sure the previous char is not an operator (rules out `<<=`
            // handled below and degenerate `=+=` text).
            let prev_op = i > 0 && matches!(bytes[i - 1], b'+' | b'-' | b'*' | b'<' | b'>' | b'=');
            if !prev_op {
                out.push((i, op));
            }
            i += 2;
            continue;
        }
        if bytes[i..].starts_with(b"<<=") {
            out.push((i, "<<="));
            i += 3;
            continue;
        }
        i += 1;
    }
    out
}

/// Position of a plain `=` assignment (not `==`, `!=`, `<=`, `>=`, or a
/// compound op), if the line has one.
fn plain_assign(code: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    for i in 0..bytes.len() {
        if bytes[i] != b'=' {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| bytes[p]);
        let next = bytes.get(i + 1);
        let prev_bad = matches!(
            prev,
            Some(b'=' | b'!' | b'<' | b'>' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^')
        );
        if !prev_bad && next != Some(&b'=') && next != Some(&b'>') {
            return Some(i);
        }
    }
    None
}

/// True when the right side has a top-level ` + ` or ` * ` outside any
/// `[...]` index expression and no checked-arithmetic call.
fn rhs_has_hot_arith(rhs: &str) -> bool {
    for guard in ["saturating_", "wrapping_", "checked_"] {
        if rhs.contains(guard) {
            return false;
        }
    }
    let bytes = rhs.as_bytes();
    let mut bracket = 0i64;
    for i in 0..bytes.len() {
        match bytes[i] {
            b'[' => bracket += 1,
            b']' => bracket -= 1,
            b'+' | b'*' if bracket == 0 => {
                // Spaced binary form only: `a + b`, not `+=`, `*ptr`,
                // `a.iter()` deref chains, or unary minus contexts.
                let spaced = i > 0 && bytes[i - 1] == b' ' && bytes.get(i + 1) == Some(&b' ');
                if spaced {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// A parsed assignment target.
struct Lhs {
    /// Receiver chain with index expressions removed: `self.data`.
    chain: String,
    /// The target was indexed (`x[i] += ...`).
    indexed: bool,
    /// The target was written through a deref (`*slot += ...`).
    deref: bool,
}

/// Walks backwards from the operator to recover the assignment target.
fn lhs_chain(code: &str, op_at: usize) -> Option<Lhs> {
    let chars: Vec<char> = code[..op_at].chars().collect();
    let mut i = chars.len();
    // Skip trailing whitespace.
    while i > 0 && chars[i - 1].is_whitespace() {
        i -= 1;
    }
    let mut indexed = false;
    let mut parts: Vec<String> = Vec::new();
    loop {
        if i > 0 && chars[i - 1] == ']' {
            // Skip the whole index expression.
            indexed = true;
            let mut depth = 0i64;
            while i > 0 {
                match chars[i - 1] {
                    ']' => depth += 1,
                    '[' => {
                        depth -= 1;
                        if depth == 0 {
                            i -= 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i -= 1;
            }
            continue;
        }
        let end = i;
        while i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
            i -= 1;
        }
        if i == end {
            break;
        }
        parts.push(chars[i..end].iter().collect());
        if i > 0 && chars[i - 1] == '.' {
            i -= 1;
            continue;
        }
        break;
    }
    if parts.is_empty() {
        return None;
    }
    let deref = i > 0 && chars[i - 1] == '*';
    parts.reverse();
    Some(Lhs {
        chain: parts.join("."),
        indexed,
        deref,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Violation> {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let model = WorkspaceModel::build(&sources);
        let mut out = Vec::new();
        check(&model, &mut out);
        out
    }

    const SKETCH: &str = "crates/sketch/src/fixture.rs";

    #[test]
    fn seeded_unchecked_add_on_counter_field_is_detected() {
        let src = "pub struct K {\n\
                 total: u64,\n\
             }\n\
             impl K {\n\
                 fn bump(&mut self, d: u64) {\n\
                     self.total += d;\n\
                 }\n\
             }\n";
        let found = run(&[(SKETCH, src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("`+=`"));
        assert!(found[0].message.contains("self.total"));
        assert_eq!(found[0].line, 6);
    }

    #[test]
    fn saturating_form_is_clean() {
        let src = "pub struct K {\n\
                 total: u64,\n\
             }\n\
             impl K {\n\
                 fn bump(&mut self, d: u64) {\n\
                     self.total = self.total.saturating_add(d);\n\
                 }\n\
             }\n";
        assert!(run(&[(SKETCH, src)]).is_empty());
    }

    #[test]
    fn float_accumulators_are_out_of_scope() {
        let src = "pub struct E {\n\
                 level: f64,\n\
             }\n\
             impl E {\n\
                 fn update(&mut self, o: f64) {\n\
                     self.level += o;\n\
                     self.level = self.level * 0.9 + o * 0.1;\n\
                 }\n\
             }\n";
        assert!(run(&[(SKETCH, src)]).is_empty());
    }

    #[test]
    fn indexed_integer_buckets_are_detected_with_index_math_ignored() {
        let src = "pub struct G {\n\
                 data: Vec<i64>,\n\
                 buckets: usize,\n\
             }\n\
             impl G {\n\
                 fn add(&mut self, stage: usize, b: usize, d: i64) {\n\
                     self.data[stage * self.buckets + b] += d;\n\
                 }\n\
             }\n";
        let found = run(&[(SKETCH, src)]);
        assert_eq!(
            found.len(),
            1,
            "index `*`/`+` must not double-count: {found:?}"
        );
        assert!(found[0].message.contains("self.data"));
    }

    #[test]
    fn deref_write_without_float_evidence_is_detected() {
        let src = "fn combine(a: &mut [i64], b: &[i64]) {\n\
                 for (x, y) in a.iter_mut().zip(b) {\n\
                     *x += *y;\n\
                 }\n\
             }\n";
        let found = run(&[(SKETCH, src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("`+=`"));
    }

    #[test]
    fn deref_write_with_float_evidence_is_clean() {
        let src = "fn decay(a: &mut [f64]) {\n\
                 for x in a.iter_mut() {\n\
                     *x += 0.5;\n\
                 }\n\
             }\n";
        assert!(run(&[(SKETCH, src)]).is_empty());
    }

    #[test]
    fn suffixed_integer_locals_are_detected() {
        let src = "fn count(xs: &[u8]) -> u64 {\n\
                 let mut alive = 0u64;\n\
                 for _x in xs {\n\
                     alive += 1;\n\
                 }\n\
                 alive\n\
             }\n";
        let found = run(&[(SKETCH, src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("alive"));
    }

    #[test]
    fn plain_assignment_with_hot_arithmetic_is_detected() {
        let src = "pub struct K {\n\
                 total: u64,\n\
             }\n\
             impl K {\n\
                 fn fold(&mut self, a: u64, b: u64) {\n\
                     self.total = a + b;\n\
                 }\n\
             }\n";
        let found = run(&[(SKETCH, src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("`=`"));
    }

    #[test]
    fn files_outside_the_perimeter_are_ignored() {
        let src = "pub struct K { total: u64 }\n\
             impl K {\n\
                 fn bump(&mut self, d: u64) { self.total += d; }\n\
             }\n";
        assert!(run(&[("crates/collect/src/fixture.rs", src)]).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "pub fn noop() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 struct K { total: u64 }\n\
                 fn f(k: &mut K) { k.total += 1; }\n\
             }\n";
        assert!(run(&[(SKETCH, src)]).is_empty());
    }
}
