//! Pass `unsafe-perimeter`: `unsafe` may appear only in files named by
//! `lint.toml` `[[unsafe-file]]` entries.
//!
//! The compiler-side twin of this pass is `#![forbid(unsafe_code)]` /
//! `#![deny(unsafe_code)]` in every crate root; the lint-side pass
//! closes the gaps the attributes cannot cover (integration tests and
//! benches are separate compilation units, a future crate could forget
//! the attribute) and makes the perimeter a *reviewed file*: widening
//! it means a `lint.toml` diff with a reason, not a scattered
//! `#[allow]`. A perimeter entry whose file no longer contains any
//! `unsafe` is also flagged, so the perimeter can only ever shrink
//! silently, never grow.

use crate::allowlist::UnsafeFileEntry;
use crate::graph::WorkspaceModel;
use crate::rules::Violation;

pub const RULE: &str = "unsafe-perimeter";

pub fn check(model: &WorkspaceModel, perimeter: &[UnsafeFileEntry], out: &mut Vec<Violation>) {
    let mut used: Vec<bool> = vec![false; perimeter.len()];
    for file in &model.files {
        let allowed = perimeter.iter().position(|e| e.path == file.path);
        for line in &file.scanned.lines {
            if !has_unsafe_token(&line.code) {
                continue;
            }
            match allowed {
                Some(idx) => used[idx] = true,
                None => out.push(Violation {
                    path: file.path.clone(),
                    line: line.number,
                    rule: RULE,
                    message: "`unsafe` outside the declared perimeter; only files listed in \
                              lint.toml `[[unsafe-file]]` entries may contain unsafe code \
                              (currently the poll(2) FFI and the AVX2 kernel) — widening the \
                              perimeter is a reviewed lint.toml change, not a local exception"
                        .to_string(),
                    snippet: line.raw.trim().to_string(),
                }),
            }
        }
    }
    for (idx, entry) in perimeter.iter().enumerate() {
        if !used[idx] {
            out.push(Violation {
                path: entry.path.clone(),
                line: 1,
                rule: RULE,
                message: format!(
                    "stale perimeter entry: lint.toml lists `{}` as an unsafe file but it \
                     contains no `unsafe` code; remove the `[[unsafe-file]]` entry so the \
                     perimeter stays minimal",
                    entry.path
                ),
                snippet: String::new(),
            });
        }
    }
}

/// `unsafe` as a standalone word in (blanked) code. `unsafe_code` inside
/// `#![deny(unsafe_code)]` does not match: the boundary check sees `_`.
fn has_unsafe_token(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(at) = code[from..].find("unsafe") {
        let abs = from + at;
        let end = abs + "unsafe".len();
        let before_ok =
            abs == 0 || !(bytes[abs - 1].is_ascii_alphanumeric() || bytes[abs - 1] == b'_');
        let after_ok =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)], perimeter: &[(&str, &str)]) -> Vec<Violation> {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let model = WorkspaceModel::build(&sources);
        let perimeter: Vec<UnsafeFileEntry> = perimeter
            .iter()
            .map(|(p, r)| UnsafeFileEntry {
                path: p.to_string(),
                reason: r.to_string(),
            })
            .collect();
        let mut out = Vec::new();
        check(&model, &perimeter, &mut out);
        out
    }

    const FFI: &str = "crates/demo/src/engine.rs";
    const OTHER: &str = "crates/demo/src/other.rs";
    const UNSAFE_SRC: &str = "fn poll_once(fds: &mut [PollFd]) -> i32 {\n\
             let rc = unsafe { poll(fds.as_mut_ptr(), fds.len(), 0) };\n\
             rc\n\
         }\n";

    #[test]
    fn seeded_unsafe_outside_perimeter_is_detected() {
        let found = run(&[(OTHER, UNSAFE_SRC)], &[(FFI, "poll ffi")]);
        // One violation for the stray unsafe, one for the now-stale
        // perimeter entry that covers nothing.
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().any(|v| v.path == OTHER && v.line == 2));
        assert!(found.iter().any(|v| v.message.contains("stale perimeter")));
    }

    #[test]
    fn unsafe_inside_perimeter_is_clean() {
        let found = run(&[(FFI, UNSAFE_SRC)], &[(FFI, "poll ffi")]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn unsafe_in_test_files_is_still_outside_the_perimeter() {
        // `#![forbid(unsafe_code)]` in lib.rs does not cover integration
        // tests (separate crate targets); the pass must.
        let found = run(
            &[("crates/demo/tests/int.rs", UNSAFE_SRC)],
            &[(FFI, "poll ffi")],
        );
        assert!(found
            .iter()
            .any(|v| v.path == "crates/demo/tests/int.rs" && v.rule == RULE));
    }

    #[test]
    fn the_attribute_spelling_does_not_match() {
        let src = "#![deny(unsafe_code)]\n#[allow(unsafe_code)]\nmod sys;\n";
        let found = run(&[(OTHER, src)], &[]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn simd_kernel_unsafe_outside_its_one_file_is_detected() {
        // The SIMD perimeter mirrors the real workspace layout: only
        // `crates/sketch/src/simd/avx2.rs` may hold intrinsics. A second
        // kernel file sprouting `unsafe` (or unsafe leaking into the
        // dispatcher module) must be flagged even though it lives in the
        // same directory as the allowed file.
        const AVX2: &str = "crates/sketch/src/simd/avx2.rs";
        const INTRINSIC: &str = "fn sum(row: &[i64]) -> i64 {\n\
             unsafe { sum_wrapping(row) }\n\
         }\n";
        let found = run(
            &[
                (AVX2, INTRINSIC),
                ("crates/sketch/src/simd/mod.rs", INTRINSIC),
                ("crates/sketch/src/simd/avx512.rs", INTRINSIC),
            ],
            &[(AVX2, "avx2 kernel intrinsics")],
        );
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found
            .iter()
            .all(|v| v.rule == RULE && v.path.starts_with("crates/sketch/src/simd/")));
        assert!(found.iter().any(|v| v.path.ends_with("mod.rs")));
        assert!(found.iter().any(|v| v.path.ends_with("avx512.rs")));
    }

    #[test]
    fn stale_perimeter_entry_is_flagged() {
        let found = run(&[(FFI, "fn safe_only() {}\n")], &[(FFI, "poll ffi")]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("stale perimeter"));
    }
}
