//! Cross-file analysis passes over the [`crate::graph::WorkspaceModel`].
//!
//! Per-file rules (see [`crate::rules`]) catch token-level hazards; the
//! passes here catch *path* hazards that only exist across function and
//! file boundaries: lock-order inversions, blocking calls reachable from
//! the poll dispatch loop, unchecked counter arithmetic in the sketch
//! hot paths, and `unsafe` outside the declared perimeter. Each pass
//! emits ordinary [`crate::rules::Violation`]s, so suppression (inline
//! `// lint: allow(...)` and `lint.toml`) works uniformly.

pub mod lock_order;
pub mod overflow;
pub mod poll_purity;
pub mod unsafe_perimeter;
