//! Pass `poll-loop-purity`: nothing reachable from the poll dispatch
//! loop may block.
//!
//! The connection engine multiplexes every peer on one thread behind
//! poll(2); a single blocking call anywhere in the dispatch path stalls
//! *all* tiers at once — exactly the outage the paper's resilience claim
//! forbids. The pass walks the call graph from the dispatch root
//! (`run` in `crates/collect/src/engine.rs`) and flags blocking
//! primitives in any reachable function: blocking reads/writes
//! (`read_exact`/`write_all`/`read_to_end`/`read_to_string`), sleeps,
//! unbounded `recv()`, condvar waits, and any lock acquisition (a lock
//! held across dispatch turns one slow handler into a pipeline stall).
//!
//! Deliberately *not* flagged: `send` on the bounded `sync_channel` —
//! that block is the engine's designed backpressure release valve (the
//! module docs in `engine.rs` own this trade-off).
//!
//! If the root cannot be resolved (file or function renamed), that is
//! itself a violation: a silently vacuous pass is worse than none.

use crate::graph::WorkspaceModel;
use crate::rules::Violation;
use std::collections::BTreeMap;

pub const RULE: &str = "poll-loop-purity";

/// The dispatch roots: `(workspace-relative path, function name)`.
pub const ROOTS: [(&str, &str); 1] = [("crates/collect/src/engine.rs", "run")];

/// Blocking tokens looked for in reachable code: `(needle, label)`.
/// Needles starting with `.` are method calls matched verbatim; bare
/// needles are matched with a word boundary before them.
const BLOCKING: [(&str, &str); 7] = [
    (".read_exact(", "blocking `read_exact`"),
    (".read_to_end(", "blocking `read_to_end`"),
    (".read_to_string(", "blocking `read_to_string`"),
    (".write_all(", "blocking `write_all`"),
    (".recv()", "unbounded blocking `recv()`"),
    (".wait(", "condvar `wait`"),
    ("sleep(", "`sleep`"),
];

pub fn check(model: &WorkspaceModel, out: &mut Vec<Violation>) {
    check_roots(model, &ROOTS, out);
}

/// The pass body, parameterized over roots so self-tests can seed a mock
/// dispatch path.
pub fn check_roots(model: &WorkspaceModel, roots: &[(&str, &str)], out: &mut Vec<Violation>) {
    // Resolve roots; a missing root is a violation, not a silent pass.
    let mut queue: Vec<usize> = Vec::new();
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    for (path, name) in roots {
        match model.function(path, name) {
            Some(fi) => queue.push(fi),
            None => out.push(Violation {
                path: path.to_string(),
                line: 1,
                rule: RULE,
                message: format!(
                    "poll dispatch root `{name}` not found in `{path}`; the purity pass \
                     would be vacuous — update `passes::poll_purity::ROOTS` to the renamed \
                     dispatch entry point"
                ),
                snippet: String::new(),
            }),
        }
    }
    let mut visited: Vec<usize> = queue.clone();
    while let Some(fi) = queue.pop() {
        for call in &model.functions[fi].calls {
            for &t in &call.targets {
                if model.functions[t].in_test || visited.contains(&t) {
                    continue;
                }
                parent.insert(t, fi);
                visited.push(t);
                queue.push(t);
            }
        }
    }

    for &fi in &visited {
        let f = &model.functions[fi];
        let route = route_to_root(model, fi, &parent);
        let scanned = &model.files[f.file].scanned;
        let path = &model.files[f.file].path;
        for line in &scanned.lines {
            if line.number < f.start || line.number > f.end || line.in_test {
                continue;
            }
            for (needle, label) in BLOCKING {
                if contains_token(&line.code, needle) {
                    out.push(Violation {
                        path: path.clone(),
                        line: line.number,
                        rule: RULE,
                        message: format!(
                            "{label} is reachable from the poll dispatch loop ({route}); \
                             the engine thread must never block outside poll(2) itself"
                        ),
                        snippet: line.raw.trim().to_string(),
                    });
                    break; // one finding per line
                }
            }
        }
        for a in &f.acquisitions {
            out.push(Violation {
                path: path.clone(),
                line: a.line,
                rule: RULE,
                message: format!(
                    "lock acquisition on `{}` is reachable from the poll dispatch loop \
                     ({route}); a lock held across dispatch stalls every connection at once",
                    a.receiver
                ),
                snippet: scanned
                    .lines
                    .get(a.line - 1)
                    .map(|l| l.raw.trim().to_string())
                    .unwrap_or_default(),
            });
        }
    }
}

/// `run → wait_ready → helper` style route for diagnostics.
fn route_to_root(model: &WorkspaceModel, fi: usize, parent: &BTreeMap<usize, usize>) -> String {
    let mut chain = vec![model.functions[fi].name.clone()];
    let mut cur = fi;
    while let Some(&p) = parent.get(&cur) {
        chain.push(model.functions[p].name.clone());
        cur = p;
        if chain.len() > 16 {
            break;
        }
    }
    chain.reverse();
    chain.join(" -> ")
}

/// Method needles (`.x(`) match verbatim; bare needles need a non-ident
/// character (or line start) before them so `xsleep(` never matches.
fn contains_token(code: &str, needle: &str) -> bool {
    if needle.starts_with('.') {
        return code.contains(needle);
    }
    let mut from = 0;
    while let Some(at) = code[from..].find(needle) {
        let abs = from + at;
        let boundary = abs == 0
            || !code.as_bytes()[abs - 1].is_ascii_alphanumeric()
                && code.as_bytes()[abs - 1] != b'_';
        if boundary {
            return true;
        }
        from = abs + needle.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)], roots: &[(&str, &str)]) -> Vec<Violation> {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let model = WorkspaceModel::build(&sources);
        let mut out = Vec::new();
        check_roots(&model, roots, &mut out);
        out
    }

    const MOCK: &str = "crates/demo/src/engine.rs";

    #[test]
    fn seeded_blocking_call_in_dispatch_helper_is_detected() {
        // `dispatch` itself is clean; the blocking read hides one call
        // down, in `drain` — reachability must cross the function edge.
        let src = "fn dispatch(s: &mut Conn) {\n\
                 drain(s);\n\
             }\n\
             fn drain(s: &mut Conn) {\n\
                 let mut buf = [0u8; 4];\n\
                 s.sock.read_exact(&mut buf);\n\
             }\n";
        let found = run(&[(MOCK, src)], &[(MOCK, "dispatch")]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("read_exact"));
        assert!(found[0].message.contains("dispatch -> drain"));
        assert_eq!(found[0].line, 6);
    }

    #[test]
    fn sleep_and_unbounded_recv_are_detected() {
        let src = "fn dispatch() {\n\
                 std::thread::sleep(TICK);\n\
                 helper();\n\
             }\n\
             fn helper(rx: &Receiver<u8>) {\n\
                 let _v = rx.recv();\n\
             }\n";
        let found = run(&[(MOCK, src)], &[(MOCK, "dispatch")]);
        let msgs: Vec<&str> = found.iter().map(|v| v.message.as_str()).collect();
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(msgs.iter().any(|m| m.contains("`sleep`")));
        assert!(msgs.iter().any(|m| m.contains("recv()")));
    }

    #[test]
    fn lock_acquisition_on_the_dispatch_path_is_detected() {
        let src = "struct Shared {\n\
                 // lock-order: demo.state\n\
                 state: Mutex<u64>,\n\
             }\n\
             impl Shared {\n\
                 fn dispatch(&self) {\n\
                     let g = self.state.lock();\n\
                 }\n\
             }\n";
        let found = run(&[(MOCK, src)], &[(MOCK, "dispatch")]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("lock acquisition"));
    }

    #[test]
    fn non_blocking_variants_are_not_flagged() {
        let src = "fn dispatch(rx: &Receiver<u8>) {\n\
                 let _a = rx.try_recv();\n\
                 let _b = rx.recv_timeout(TICK);\n\
             }\n";
        let found = run(&[(MOCK, src)], &[(MOCK, "dispatch")]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn send_backpressure_is_deliberately_permitted() {
        let src = "fn dispatch(tx: &SyncSender<u8>) {\n\
                 let _ = tx.send(1);\n\
             }\n";
        let found = run(&[(MOCK, src)], &[(MOCK, "dispatch")]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn unreachable_blocking_code_is_not_flagged() {
        let src = "fn dispatch() {}\n\
             fn offline_worker(s: &mut Conn) {\n\
                 s.sock.read_exact(&mut [0u8; 4]);\n\
             }\n";
        let found = run(&[(MOCK, src)], &[(MOCK, "dispatch")]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn missing_root_is_a_violation_not_a_silent_pass() {
        let found = run(&[(MOCK, "fn other() {}\n")], &[(MOCK, "dispatch")]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("not found"));
    }

    #[test]
    fn real_engine_root_is_resolvable() {
        // Pin the production ROOTS constant against the actual engine
        // source so a rename breaks this test, not the pass's coverage.
        let root = crate::workspace_root();
        let engine = root.join("crates/collect/src/engine.rs");
        let source = std::fs::read_to_string(&engine).expect("engine.rs readable");
        let model = WorkspaceModel::build(&[(ROOTS[0].0.to_string(), source)]);
        assert!(
            model.function(ROOTS[0].0, ROOTS[0].1).is_some(),
            "poll dispatch root {}::{} must exist",
            ROOTS[0].0,
            ROOTS[0].1
        );
    }
}
