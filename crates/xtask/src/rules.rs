//! The lint rules and the per-file rule driver.
//!
//! Every rule is a pure function over a [`ScannedFile`]; suppression is
//! handled uniformly here: an inline `// lint: allow(<rule>, <reason>)`
//! on the flagged line (or the line directly above it) silences one
//! finding, and entries in the checked-in `lint.toml` allowlist silence
//! findings by path and optional line substring. Both demand a reason, so
//! every exception stays visible in review.

use crate::allowlist::Allowlist;
use crate::scan::{scan, ScannedFile};

/// Library crates whose non-test code must be panic-free: these sit on
/// the record/decode/detect hot paths that process attacker-influenced
/// traffic, where an abort is a DoS primitive (PAPER.md §1, §5).
pub const PANIC_FREE_CRATES: [&str; 7] = [
    "crates/flow/src",
    "crates/sketch/src",
    "crates/hashing/src",
    "crates/forecast/src",
    "crates/hifind/src",
    "crates/collect/src",
    "crates/obsv/src",
];

/// Boundary files that parse raw wire bytes: every integer conversion
/// must be checked, so no bare `as` casts. The poll engine assembles
/// frames straight off attacker-reachable sockets and the aggregator
/// re-encodes what it combined, so both live inside this boundary too.
pub const CAST_CHECKED_FILES: [&str; 7] = [
    "crates/collect/src/wire.rs",
    "crates/collect/src/codec.rs",
    "crates/collect/src/codec_v2.rs",
    "crates/collect/src/checkpoint.rs",
    "crates/collect/src/engine.rs",
    "crates/collect/src/aggregator.rs",
    "crates/obsv/src/history.rs",
];

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id, e.g. `hot-path-panic`.
    pub rule: &'static str,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.path, self.line, self.rule, self.message, self.snippet
        )
    }
}

/// Rule ids, in report order. The first six are per-file token rules;
/// the last four are cross-file workspace passes (see [`crate::passes`]).
pub const RULE_IDS: [&str; 10] = [
    "hot-path-panic",
    "truncating-cast",
    "atomics-audit",
    "bounded-channels",
    "joined-threads",
    "lint-directive",
    "lock-order",
    "poll-loop-purity",
    "overflow-audit",
    "unsafe-perimeter",
];

/// A per-file rule body.
pub(crate) type RuleFn = fn(&str, &ScannedFile, &mut Vec<Violation>);

/// The per-file rules, in report order, for the workspace driver (which
/// scans each file once and times each rule individually).
pub(crate) const FILE_RULES: [(&str, RuleFn); 6] = [
    ("hot-path-panic", hot_path_panic),
    ("truncating-cast", truncating_cast),
    ("atomics-audit", atomics_audit),
    ("bounded-channels", bounded_channels),
    ("joined-threads", joined_threads),
    ("lint-directive", malformed_directives),
];

/// Exercise code (integration tests, benches, examples) is exempt from
/// the per-file rules: it is not attacker-reachable library code.
pub(crate) fn exercise_path(rel_path: &str) -> bool {
    ["/tests/", "/benches/", "/examples/"]
        .iter()
        .any(|e| rel_path.contains(e))
}

/// Lints one file. `rel_path` uses forward slashes relative to the
/// workspace root (e.g. `crates/collect/src/wire.rs`).
pub fn lint_source(rel_path: &str, source: &str, allowlist: &Allowlist) -> Vec<Violation> {
    if !rel_path.starts_with("crates/") || !rel_path.ends_with(".rs") {
        return Vec::new();
    }
    // Integration tests, benches, and examples are exercise code, not
    // attacker-reachable library paths.
    if exercise_path(rel_path) {
        return Vec::new();
    }
    let file = scan(source);
    let mut found = Vec::new();
    for (_, rule) in FILE_RULES {
        rule(rel_path, &file, &mut found);
    }
    found.retain(|v| !suppressed(v, &file, allowlist));
    found
}

/// True when the finding carries a valid inline or allowlist suppression.
pub(crate) fn suppressed(v: &Violation, file: &ScannedFile, allowlist: &Allowlist) -> bool {
    if v.rule == "lint-directive" {
        return allowlist.permits(v); // malformed directives can only be allowlisted
    }
    let same = file.lines.get(v.line - 1).map(|l| l.comment.as_str());
    let above = v
        .line
        .checked_sub(2)
        .and_then(|i| file.lines.get(i))
        .map(|l| l.comment.as_str());
    for comment in [same, above].into_iter().flatten() {
        if let Some(Ok(directive)) = parse_allow_directive(comment) {
            if directive.rule == v.rule && !directive.reason.is_empty() {
                return true;
            }
        }
    }
    allowlist.permits(v)
}

/// A parsed `// lint: allow(rule, reason)` directive.
struct AllowDirective {
    rule: String,
    reason: String,
}

/// Returns `None` when `comment` holds no directive, `Some(Err)` when it
/// holds one that does not parse (missing reason, unknown shape).
///
/// A directive must be the comment's content (`// lint: allow(…)`), not
/// a mention of the syntax mid-prose — only comment markers and
/// whitespace may precede `lint:`.
fn parse_allow_directive(comment: &str) -> Option<Result<AllowDirective, String>> {
    let at = comment.find("lint: allow(")?;
    if !comment[..at]
        .chars()
        .all(|c| c == '/' || c == '!' || c.is_whitespace())
    {
        return None;
    }
    let rest = &comment[at + "lint: allow(".len()..];
    let Some(close) = rest.find(')') else {
        return Some(Err("unclosed `lint: allow(` directive".to_string()));
    };
    let inner = &rest[..close];
    let Some((rule, reason)) = inner.split_once(',') else {
        return Some(Err(format!(
            "`lint: allow({inner})` needs a reason: `lint: allow(rule, why this is sound)`"
        )));
    };
    let (rule, reason) = (rule.trim(), reason.trim());
    if !RULE_IDS.contains(&rule) {
        return Some(Err(format!(
            "unknown lint rule `{rule}` in allow directive"
        )));
    }
    if reason.is_empty() {
        return Some(Err(format!("`lint: allow({rule}, …)` has an empty reason")));
    }
    Some(Ok(AllowDirective {
        rule: rule.to_string(),
        reason: reason.to_string(),
    }))
}

fn in_scope(rel_path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel_path.starts_with(p))
}

fn is_bin(rel_path: &str) -> bool {
    rel_path.contains("/src/bin/")
}

/// Rule `hot-path-panic`: no `unwrap`/`expect`/`panic!`/`unreachable!`/
/// `todo!`/`unimplemented!` in non-test library code of the six hot-path
/// crates. `assert!`-family macros are allowed: they express invariants,
/// are greppable, and the paper-facing ones are documented.
fn hot_path_panic(rel_path: &str, file: &ScannedFile, out: &mut Vec<Violation>) {
    if !in_scope(rel_path, &PANIC_FREE_CRATES) || is_bin(rel_path) {
        return;
    }
    for line in file.lines.iter().filter(|l| !l.in_test) {
        for (needle, what, fix) in [
            (
                ".unwrap()",
                "`unwrap()`",
                "return the crate's typed error or restructure so the value is proven present",
            ),
            (
                ".expect(",
                "`expect()`",
                "return the crate's typed error or restructure so the value is proven present",
            ),
            (
                "::unwrap",
                "`unwrap` as a function path",
                "map through a typed error instead of `Option::unwrap`/`Result::unwrap`",
            ),
            ("panic!", "`panic!`", "return a typed error"),
            ("unreachable!", "`unreachable!`", "return a typed error"),
            ("todo!", "`todo!`", "implement or return a typed error"),
            (
                "unimplemented!",
                "`unimplemented!`",
                "implement or return a typed error",
            ),
        ] {
            if match_panic_token(&line.code, needle) {
                out.push(Violation {
                    path: rel_path.to_string(),
                    line: line.number,
                    rule: "hot-path-panic",
                    message: format!(
                        "{what} in hot-path library code can abort on attacker-influenced input; {fix}"
                    ),
                    snippet: line.raw.trim().to_string(),
                });
                break; // one finding per line is enough
            }
        }
    }
}

/// Token-ish match: `needle` must appear with no identifier character
/// continuing it (so `.expect(` never matches `.expect_err(`, and
/// `::unwrap` never matches `::unwrap_or`).
fn match_panic_token(code: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(at) = code[from..].find(needle) {
        let end = from + at + needle.len();
        let boundary = if needle.ends_with(['(', ')']) {
            true
        } else {
            !code[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        };
        if boundary {
            return true;
        }
        from = end;
    }
    false
}

const INT_TYPES: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Rule `truncating-cast`: no bare `as <integer type>` in the wire/codec
/// boundary files — a silently truncating cast on a length or counter
/// derived from attacker bytes is exactly the bug class CRC checks cannot
/// catch. Use `try_from` (mapped to the typed decode errors) or the
/// checked helpers already in those files.
fn truncating_cast(rel_path: &str, file: &ScannedFile, out: &mut Vec<Violation>) {
    if !CAST_CHECKED_FILES.contains(&rel_path) {
        return;
    }
    for line in file.lines.iter().filter(|l| !l.in_test) {
        if let Some(ty) = find_int_cast(&line.code) {
            out.push(Violation {
                path: rel_path.to_string(),
                line: line.number,
                rule: "truncating-cast",
                message: format!(
                    "bare `as {ty}` in wire-boundary code can silently truncate attacker-controlled \
                     values; use `{ty}::try_from` mapped to a typed decode error (or a checked helper)"
                ),
                snippet: line.raw.trim().to_string(),
            });
        }
    }
}

/// Finds `as <int-type>` with `as` as a standalone word; returns the type.
fn find_int_cast(code: &str) -> Option<&'static str> {
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0;
    while i + 1 < chars.len() {
        if chars[i] == 'a'
            && chars[i + 1] == 's'
            && !prev_ident(&chars, i)
            && !next_ident(&chars, i + 2)
        {
            let mut j = i + 2;
            while chars.get(j).is_some_and(|c| c.is_whitespace()) {
                j += 1;
            }
            let word: String = chars[j..]
                .iter()
                .take_while(|c| c.is_alphanumeric() || **c == '_')
                .collect();
            if let Some(ty) = INT_TYPES.iter().find(|t| **t == word) {
                return Some(ty);
            }
            i = j.max(i + 2);
        } else {
            i += 1;
        }
    }
    None
}

fn prev_ident(chars: &[char], i: usize) -> bool {
    i.checked_sub(1)
        .and_then(|p| chars.get(p))
        .is_some_and(|c| c.is_alphanumeric() || *c == '_')
}

fn next_ident(chars: &[char], i: usize) -> bool {
    chars
        .get(i)
        .is_some_and(|c| c.is_alphanumeric() || *c == '_')
}

/// Rule `atomics-audit`: every `Ordering::Relaxed` in non-test code must
/// carry an inline `// relaxed-ok: <reason>` on the same line or the line
/// above. Relaxed is usually right for monotonic telemetry counters, but
/// each use must say *why* no ordering is needed, so a future reader can
/// tell an audited site from an accidental one.
fn atomics_audit(rel_path: &str, file: &ScannedFile, out: &mut Vec<Violation>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || !line.code.contains("Ordering::Relaxed") {
            continue;
        }
        let above = idx
            .checked_sub(1)
            .and_then(|i| file.lines.get(i))
            .map_or("", |l| l.comment.as_str());
        let justified = [line.comment.as_str(), above]
            .iter()
            .any(|c| c.contains("relaxed-ok:"));
        if !justified {
            out.push(Violation {
                path: rel_path.to_string(),
                line: line.number,
                rule: "atomics-audit",
                message: "`Ordering::Relaxed` without a `// relaxed-ok: <reason>` justification; \
                          say why no synchronization is needed, or use a stronger ordering"
                    .to_string(),
                snippet: line.raw.trim().to_string(),
            });
        }
    }
}

/// Rule `bounded-channels`: the collector and the observability plane
/// absorb backpressure in TCP, never in memory — an unbounded
/// `mpsc::channel` between reader and aligner (or acceptor and HTTP
/// worker) would let one fast peer queue unbounded work and undo the
/// DoS-resilience story. Use `mpsc::sync_channel` with a small bound.
fn bounded_channels(rel_path: &str, file: &ScannedFile, out: &mut Vec<Violation>) {
    if !rel_path.starts_with("crates/collect/src") && !rel_path.starts_with("crates/obsv/src") {
        return;
    }
    for line in file.lines.iter().filter(|l| !l.in_test) {
        if line.code.contains("mpsc::channel(") || line.code.contains("mpsc::channel::<") {
            out.push(Violation {
                path: rel_path.to_string(),
                line: line.number,
                rule: "bounded-channels",
                message: "unbounded `mpsc::channel` in the collector turns a fast peer into a \
                          memory-exhaustion DoS; use `mpsc::sync_channel` with a small bound"
                    .to_string(),
                snippet: line.raw.trim().to_string(),
            });
        }
    }
}

/// Rule `joined-threads`: a `thread::spawn` whose `JoinHandle` is
/// discarded (`spawn(..);`, `let _ = spawn(..);`, `drop(spawn(..))`) is a
/// thread the shutdown path can neither join nor observe panicking. Bind
/// the handle and join it (or register it with the owner's shutdown set).
fn joined_threads(rel_path: &str, file: &ScannedFile, out: &mut Vec<Violation>) {
    if !in_scope(rel_path, &PANIC_FREE_CRATES) {
        return;
    }
    let text = file.code_text();
    let chars: Vec<char> = text.chars().collect();
    let needle: Vec<char> = "thread::spawn".chars().collect();
    let mut at = 0usize;
    while at + needle.len() <= chars.len() {
        if chars[at..at + needle.len()] != needle[..] {
            at += 1;
            continue;
        }
        let line = chars[..at].iter().filter(|c| **c == '\n').count() + 1;
        if handle_discarded(&chars, at) {
            if let Some(l) = file.lines.get(line - 1) {
                if !l.in_test {
                    out.push(Violation {
                        path: rel_path.to_string(),
                        line,
                        rule: "joined-threads",
                        message: "`thread::spawn` handle is discarded; bind the JoinHandle and \
                                  join it on the shutdown path (a detached thread can outlive \
                                  shutdown and hide panics)"
                            .to_string(),
                        snippet: l.raw.trim().to_string(),
                    });
                }
            }
        }
        at += needle.len();
    }
}

/// Decides whether the spawn expression starting at `at` (char index of
/// `thread::spawn`) has its value discarded.
fn handle_discarded(bytes: &[char], at: usize) -> bool {
    // Find the opening paren of the call, then its match.
    let mut i = at;
    while bytes.get(i).is_some_and(|c| *c != '(') {
        i += 1;
    }
    let mut depth = 0i64;
    while let Some(&c) = bytes.get(i) {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    // The statement prefix before the call, up to the nearest `;`/brace.
    let mut k = at;
    while k > 0 {
        let c = bytes[k - 1];
        if c == ';' || c == '{' || c == '}' {
            break;
        }
        k -= 1;
    }
    let prefix: String = bytes[k..at].iter().collect();
    let prefix = prefix.trim();
    // A `std::` path prefix belongs to the spawn expression itself.
    let prefix = prefix.strip_suffix("std::").unwrap_or(prefix).trim();
    if prefix.ends_with("drop(") {
        return true; // `drop(thread::spawn(..))`
    }
    // What follows the call?
    let mut j = i + 1;
    while bytes.get(j).is_some_and(|c| c.is_whitespace()) {
        j += 1;
    }
    if bytes.get(j) != Some(&';') {
        // Chained (`.join()`), passed as an argument, or a tail
        // expression — the handle is used.
        return false;
    }
    if prefix.is_empty() {
        return true; // bare `thread::spawn(..);`
    }
    let squashed: String = prefix.split_whitespace().collect::<Vec<_>>().join(" ");
    squashed.starts_with("let _ =")
}

/// Rule `lint-directive`: a malformed suppression must be an error, not a
/// silently inert comment.
fn malformed_directives(rel_path: &str, file: &ScannedFile, out: &mut Vec<Violation>) {
    for line in &file.lines {
        if let Some(Err(problem)) = parse_allow_directive(&line.comment) {
            out.push(Violation {
                path: rel_path.to_string(),
                line: line.number,
                rule: "lint-directive",
                message: problem,
                snippet: line.raw.trim().to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allowlist::Allowlist;

    const HOT: &str = "crates/flow/src/demo.rs";
    const WIRE: &str = "crates/collect/src/wire.rs";
    const COLLECT: &str = "crates/collect/src/demo.rs";
    const FAULTS: &str = "crates/collect/src/faults.rs";
    const CHECKPOINT: &str = "crates/collect/src/checkpoint.rs";

    fn lint(path: &str, src: &str) -> Vec<Violation> {
        lint_source(path, src, &Allowlist::default())
    }

    fn rules_of(found: &[Violation]) -> Vec<&'static str> {
        found.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unwrap_and_expect_fire_in_hot_path_code() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   fn g(x: Option<u8>) -> u8 { x.expect(\"present\") }\n\
                   fn h() { panic!(\"boom\") }\n";
        let found = lint(HOT, src);
        assert_eq!(
            rules_of(&found),
            vec!["hot-path-panic", "hot-path-panic", "hot-path-panic"]
        );
        assert_eq!(found[0].line, 1);
        assert_eq!(found[2].line, 3);
    }

    #[test]
    fn non_panicking_lookalikes_do_not_fire() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n\
                   fn g(r: Result<u8, u8>) -> u8 { r.unwrap_or_default() }\n\
                   fn h(r: Result<u8, u8>) -> u8 { r.expect_err(\"swapped\") }\n";
        assert!(lint(HOT, src).is_empty());
    }

    #[test]
    fn string_literals_and_comments_are_not_code() {
        let src = "// a comment mentioning .unwrap() is fine\n\
                   fn f() -> &'static str { \".unwrap() and panic!\" }\n";
        assert!(lint(HOT, src).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "fn ok() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   \x20   fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   }\n";
        assert!(lint(HOT, src).is_empty());
    }

    #[test]
    fn code_after_a_test_module_is_back_in_scope() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                   \x20   fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   }\n\
                   fn g(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let found = lint(HOT, src);
        assert_eq!(rules_of(&found), vec!["hot-path-panic"]);
        assert_eq!(found[0].line, 5);
    }

    #[test]
    fn out_of_scope_paths_are_skipped() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(lint("crates/bench/src/lib.rs", src).is_empty());
        assert!(lint("crates/flow/tests/int.rs", src).is_empty());
        assert!(lint("crates/flow/benches/b.rs", src).is_empty());
        assert!(lint("crates/flow/src/bin/tool.rs", src).is_empty());
        assert!(lint("vendor/serde/src/lib.rs", src).is_empty());
    }

    #[test]
    fn inline_allow_with_reason_suppresses() {
        let src = "// lint: allow(hot-path-panic, value proven present two lines up)\n\
                   fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(lint(HOT, src).is_empty());
        let same_line =
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint: allow(hot-path-panic, proven)\n";
        assert!(lint(HOT, same_line).is_empty());
    }

    #[test]
    fn allow_for_a_different_rule_does_not_suppress() {
        let src = "// lint: allow(truncating-cast, wrong rule on purpose)\n\
                   fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules_of(&lint(HOT, src)), vec!["hot-path-panic"]);
    }

    #[test]
    fn malformed_directives_are_violations_themselves() {
        let missing_reason = "// lint: allow(hot-path-panic)\nfn f() {}\n";
        assert_eq!(rules_of(&lint(HOT, missing_reason)), vec!["lint-directive"]);
        let unknown_rule = "// lint: allow(no-such-rule, why)\nfn f() {}\n";
        assert_eq!(rules_of(&lint(HOT, unknown_rule)), vec!["lint-directive"]);
    }

    #[test]
    fn allowlist_entry_suppresses_by_path_and_pattern() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let toml = "[[allow]]\n\
                    rule = \"hot-path-panic\"\n\
                    path = \"crates/flow/src/demo.rs\"\n\
                    pattern = \"x.unwrap()\"\n\
                    reason = \"exercised by the engine's own tests\"\n";
        let allow = Allowlist::parse(toml).expect("valid allowlist");
        assert!(lint_source(HOT, src, &allow).is_empty());
        // Same entry, different file: no suppression.
        assert_eq!(
            rules_of(&lint_source("crates/flow/src/other.rs", src, &allow)),
            vec!["hot-path-panic"]
        );
    }

    #[test]
    fn bare_casts_fire_only_in_wire_boundary_files() {
        let src = "fn f(x: u64) -> u8 { (x & 0xFF) as u8 }\n";
        let found = lint(WIRE, src);
        assert_eq!(rules_of(&found), vec!["truncating-cast"]);
        assert!(found[0].message.contains("u8::try_from"));
        assert!(lint(COLLECT, src).is_empty());
    }

    #[test]
    fn non_cast_uses_of_as_do_not_fire() {
        let src = "use std::io::Read as _;\nfn f(x: f64) -> f64 { x as f64 }\n";
        assert!(lint(WIRE, src).is_empty());
    }

    #[test]
    fn relaxed_ordering_needs_a_relaxed_ok_note() {
        let bare = "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }\n";
        assert_eq!(rules_of(&lint(HOT, bare)), vec!["atomics-audit"]);
        let noted = "// relaxed-ok: monitoring read, staleness is fine\n\
                     fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }\n";
        assert!(lint(HOT, noted).is_empty());
        let trailing =
            "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) } // relaxed-ok: scrape\n";
        assert!(lint(HOT, trailing).is_empty());
    }

    #[test]
    fn unbounded_channels_fire_in_collect_only() {
        let src =
            "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u8>(); tx.send(1); rx.recv(); }\n";
        assert_eq!(rules_of(&lint(COLLECT, src)), vec!["bounded-channels"]);
        assert!(lint(HOT, src).is_empty());
        let bounded = "fn f() { let (tx, rx) = std::sync::mpsc::sync_channel::<u8>(32); }\n";
        assert!(lint(COLLECT, bounded).is_empty());
    }

    #[test]
    fn fault_and_checkpoint_modules_are_inside_the_lint_perimeter() {
        // The fault proxy spawns threads and shares counters; the
        // checkpoint codec parses untrusted on-disk bytes. Both must sit
        // inside the same perimeter as the rest of the collect crate —
        // a rename that silently moved them out would gut the rules.
        let chan =
            "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u8>(); tx.send(1); rx.recv(); }\n";
        assert_eq!(rules_of(&lint(FAULTS, chan)), vec!["bounded-channels"]);
        let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(rules_of(&lint(FAULTS, spawn)), vec!["joined-threads"]);
        let relaxed = "fn f(x: &std::sync::atomic::AtomicU64) { x.load(Ordering::Relaxed); }\n";
        assert_eq!(rules_of(&lint(FAULTS, relaxed)), vec!["atomics-audit"]);
        let cast = "fn f(x: u64) -> usize { x as usize }\n";
        assert_eq!(rules_of(&lint(CHECKPOINT, cast)), vec!["truncating-cast"]);
        assert!(
            lint(FAULTS, cast).is_empty(),
            "faults.rs is not a byte-parsing boundary"
        );
    }

    #[test]
    fn codec_v2_is_inside_the_cast_boundary() {
        // The v2 codec decodes varints, run lengths and bloom residuals
        // straight out of attacker-reachable frame payloads — the exact
        // bug class the cast rule exists for. A rename that moved it out
        // of the perimeter must break here, not silently pass.
        const CODEC_V2: &str = "crates/collect/src/codec_v2.rs";
        let cast = "fn f(x: u64) -> usize { x as usize }\n";
        assert_eq!(rules_of(&lint(CODEC_V2, cast)), vec!["truncating-cast"]);
    }

    #[test]
    fn obsv_modules_are_inside_the_lint_perimeter() {
        // The observability plane accepts untrusted HTTP connections and
        // parses on-disk history segments; it must sit inside the same
        // perimeter as the collect crate — a rename that silently moved
        // it out would gut the rules.
        const OBSV: &str = "crates/obsv/src/http.rs";
        const HISTORY: &str = "crates/obsv/src/history.rs";
        let chan =
            "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u8>(); tx.send(1); rx.recv(); }\n";
        assert_eq!(rules_of(&lint(OBSV, chan)), vec!["bounded-channels"]);
        let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(rules_of(&lint(OBSV, spawn)), vec!["joined-threads"]);
        let unwrap = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules_of(&lint(OBSV, unwrap)), vec!["hot-path-panic"]);
        let cast = "fn f(x: u64) -> usize { x as usize }\n";
        assert_eq!(rules_of(&lint(HISTORY, cast)), vec!["truncating-cast"]);
        assert!(
            lint(OBSV, cast).is_empty(),
            "http.rs is not a byte-parsing boundary"
        );
    }

    #[test]
    fn aggregation_tier_modules_are_inside_the_lint_perimeter() {
        // The poll engine reads frame bytes straight off attacker-facing
        // sockets and the aggregator re-encodes combined snapshots, so
        // both sit inside the cast boundary on top of the collect-crate
        // perimeter — a rename that silently moved them out would gut
        // the rules.
        const ENGINE: &str = "crates/collect/src/engine.rs";
        const AGGREGATOR: &str = "crates/collect/src/aggregator.rs";
        let cast = "fn f(x: u64) -> usize { x as usize }\n";
        assert_eq!(rules_of(&lint(ENGINE, cast)), vec!["truncating-cast"]);
        assert_eq!(rules_of(&lint(AGGREGATOR, cast)), vec!["truncating-cast"]);
        let unwrap = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules_of(&lint(ENGINE, unwrap)), vec!["hot-path-panic"]);
        let chan =
            "fn f() { let (tx, rx) = std::sync::mpsc::channel::<u8>(); tx.send(1); rx.recv(); }\n";
        assert_eq!(rules_of(&lint(AGGREGATOR, chan)), vec!["bounded-channels"]);
        let spawn = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(rules_of(&lint(AGGREGATOR, spawn)), vec!["joined-threads"]);
        let relaxed = "fn f(x: &std::sync::atomic::AtomicU64) { x.load(Ordering::Relaxed); }\n";
        assert_eq!(rules_of(&lint(ENGINE, relaxed)), vec!["atomics-audit"]);
    }

    #[test]
    fn discarded_spawn_handles_fire() {
        let bare = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(rules_of(&lint(HOT, bare)), vec!["joined-threads"]);
        let underscore = "fn f() { let _ = std::thread::spawn(|| {}); }\n";
        assert_eq!(rules_of(&lint(HOT, underscore)), vec!["joined-threads"]);
        let dropped = "fn f() { drop(std::thread::spawn(|| {})); }\n";
        assert_eq!(rules_of(&lint(HOT, dropped)), vec!["joined-threads"]);
    }

    #[test]
    fn bound_or_chained_spawn_handles_do_not_fire() {
        let bound = "fn f() { let h = std::thread::spawn(|| {}); h.join(); }\n";
        assert!(lint(HOT, bound).is_empty());
        let chained = "fn f() { std::thread::spawn(|| {}).join(); }\n";
        assert!(lint(HOT, chained).is_empty());
        let pushed = "fn f(v: &mut Vec<JoinHandle<()>>) { v.push(std::thread::spawn(|| {})); }\n";
        assert!(lint(HOT, pushed).is_empty());
    }
}
