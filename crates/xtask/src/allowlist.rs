//! The checked-in `lint.toml` allowlist.
//!
//! Inline `// lint: allow(...)` directives cover single lines; the
//! allowlist covers exceptions that are structural (a whole generated
//! file, a rule that cannot apply to one path). It is deliberately a
//! checked-in file at the workspace root so every exception shows up in
//! review and `git log lint.toml` is the audit trail.
//!
//! Only the needed TOML subset is parsed (the workspace builds offline
//! with no TOML dependency): `[[allow]]` and `[[unsafe-file]]`
//! array-of-tables entries with string values, comments, and blank
//! lines.
//!
//! ```toml
//! [[allow]]
//! rule = "hot-path-panic"
//! path = "crates/flow/src/generated.rs"
//! pattern = "optional substring the flagged line must contain"
//! reason = "why this exception is sound"
//!
//! [[unsafe-file]]
//! path = "crates/collect/src/engine.rs"
//! reason = "poll(2) FFI; see the file's safety argument"
//! ```
//!
//! `[[unsafe-file]]` entries define the `unsafe-perimeter` pass's
//! allowed set: `unsafe` anywhere else is a violation, and an entry
//! whose file contains no `unsafe` is flagged as stale.

use crate::rules::{Violation, RULE_IDS};

/// One allowlist entry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry silences.
    pub rule: String,
    /// Workspace-relative path the entry applies to.
    pub path: String,
    /// Optional substring the flagged source line must contain; an empty
    /// pattern matches any line in `path`.
    pub pattern: String,
    /// Mandatory justification.
    pub reason: String,
}

/// One `[[unsafe-file]]` perimeter entry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UnsafeFileEntry {
    /// Workspace-relative path allowed to contain `unsafe`.
    pub path: String,
    /// Mandatory justification.
    pub reason: String,
}

/// The parsed allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
    pub unsafe_files: Vec<UnsafeFileEntry>,
}

/// A malformed `lint.toml`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowlistError {
    /// 1-based line in `lint.toml` (0 for end-of-file problems).
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for AllowlistError {}

/// The entry currently being accumulated by the parser.
enum Current {
    Allow(AllowEntry),
    UnsafeFile(UnsafeFileEntry),
}

impl Allowlist {
    /// Parses the `lint.toml` subset described in the module docs.
    pub fn parse(text: &str) -> Result<Self, AllowlistError> {
        let mut list = Allowlist::default();
        let mut current: Option<Current> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" || line == "[[unsafe-file]]" {
                if let Some(done) = current.take() {
                    list.finish(done, lineno)?;
                }
                current = Some(if line == "[[allow]]" {
                    Current::Allow(AllowEntry::default())
                } else {
                    Current::UnsafeFile(UnsafeFileEntry::default())
                });
                continue;
            }
            if line.starts_with('[') {
                return Err(AllowlistError {
                    line: lineno,
                    message: format!(
                        "unsupported section `{line}`; only `[[allow]]` and `[[unsafe-file]]` \
                         are known"
                    ),
                });
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(AllowlistError {
                    line: lineno,
                    message: format!("expected `key = \"value\"`, got `{line}`"),
                });
            };
            let Some(entry) = current.as_mut() else {
                return Err(AllowlistError {
                    line: lineno,
                    message: "key outside an `[[allow]]` or `[[unsafe-file]]` entry".to_string(),
                });
            };
            let value = unquote(value.trim()).ok_or_else(|| AllowlistError {
                line: lineno,
                message: format!("value for `{}` must be a double-quoted string", key.trim()),
            })?;
            let key = key.trim();
            match entry {
                Current::Allow(e) => match key {
                    "rule" => e.rule = value,
                    "path" => e.path = value,
                    "pattern" => e.pattern = value,
                    "reason" => e.reason = value,
                    other => {
                        return Err(AllowlistError {
                            line: lineno,
                            message: format!(
                                "unknown key `{other}` in `[[allow]]` (known: rule, path, \
                                 pattern, reason)"
                            ),
                        })
                    }
                },
                Current::UnsafeFile(e) => match key {
                    "path" => e.path = value,
                    "reason" => e.reason = value,
                    other => {
                        return Err(AllowlistError {
                            line: lineno,
                            message: format!(
                                "unknown key `{other}` in `[[unsafe-file]]` (known: path, reason)"
                            ),
                        })
                    }
                },
            }
        }
        if let Some(done) = current.take() {
            list.finish(done, 0)?;
        }
        Ok(list)
    }

    /// Validates and stores a finished entry, rejecting duplicates.
    fn finish(&mut self, done: Current, line: usize) -> Result<(), AllowlistError> {
        match done {
            Current::Allow(entry) => {
                let entry = validated(entry, line)?;
                if self.entries.iter().any(|e| {
                    e.rule == entry.rule && e.path == entry.path && e.pattern == entry.pattern
                }) {
                    return Err(AllowlistError {
                        line,
                        message: format!(
                            "duplicate `[[allow]]` entry for rule `{}` in `{}`; merge the \
                             reasons into one entry",
                            entry.rule, entry.path
                        ),
                    });
                }
                self.entries.push(entry);
            }
            Current::UnsafeFile(entry) => {
                let entry = validated_unsafe(entry, line)?;
                if self.unsafe_files.iter().any(|e| e.path == entry.path) {
                    return Err(AllowlistError {
                        line,
                        message: format!("duplicate `[[unsafe-file]]` entry for `{}`", entry.path),
                    });
                }
                self.unsafe_files.push(entry);
            }
        }
        Ok(())
    }

    /// True when some entry covers this violation.
    pub fn permits(&self, v: &Violation) -> bool {
        self.entries.iter().any(|e| {
            e.rule == v.rule
                && e.path == v.path
                && (e.pattern.is_empty() || v.snippet.contains(&e.pattern))
        })
    }
}

fn validated(entry: AllowEntry, line: usize) -> Result<AllowEntry, AllowlistError> {
    if !RULE_IDS.contains(&entry.rule.as_str()) {
        return Err(AllowlistError {
            line,
            message: format!("entry names unknown rule `{}`", entry.rule),
        });
    }
    if entry.path.is_empty() {
        return Err(AllowlistError {
            line,
            message: "entry is missing `path`".to_string(),
        });
    }
    if entry.reason.trim().is_empty() {
        return Err(AllowlistError {
            line,
            message: format!(
                "entry for `{}` in `{}` has no reason; every exception must say why",
                entry.rule, entry.path
            ),
        });
    }
    Ok(entry)
}

fn validated_unsafe(
    entry: UnsafeFileEntry,
    line: usize,
) -> Result<UnsafeFileEntry, AllowlistError> {
    if entry.path.is_empty() {
        return Err(AllowlistError {
            line,
            message: "`[[unsafe-file]]` entry is missing `path`".to_string(),
        });
    }
    if entry.reason.trim().is_empty() {
        return Err(AllowlistError {
            line,
            message: format!(
                "`[[unsafe-file]]` entry for `{}` has no reason; every perimeter file must \
                 say why unsafe is required",
                entry.path
            ),
        });
    }
    Ok(entry)
}

fn unquote(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    // No escape support needed for paths/reasons; reject embedded quotes
    // so nothing silently truncates.
    if inner.contains('"') {
        return None;
    }
    Some(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn err(text: &str) -> AllowlistError {
        Allowlist::parse(text).expect_err("parse must fail")
    }

    #[test]
    fn valid_allow_and_unsafe_file_entries_parse() {
        let toml = "# comment\n\
             [[allow]]\n\
             rule = \"hot-path-panic\"\n\
             path = \"crates/flow/src/a.rs\"\n\
             reason = \"sound because reasons\"\n\
             \n\
             [[unsafe-file]]\n\
             path = \"crates/collect/src/engine.rs\"\n\
             reason = \"poll ffi\"\n";
        let list = Allowlist::parse(toml).expect("valid");
        assert_eq!(list.entries.len(), 1);
        assert_eq!(list.unsafe_files.len(), 1);
        assert_eq!(list.unsafe_files[0].path, "crates/collect/src/engine.rs");
    }

    #[test]
    fn malformed_section_headers_are_rejected() {
        let e = err("[allow]\nrule = \"hot-path-panic\"\n");
        assert!(e.message.contains("unsupported section"), "{e}");
        let e = err("[[allowx]]\nrule = \"hot-path-panic\"\n");
        assert!(e.message.contains("unsupported section"), "{e}");
        assert_eq!(e.line, 1);
    }

    #[test]
    fn keys_outside_an_entry_are_rejected() {
        let e = err("rule = \"hot-path-panic\"\n");
        assert!(e.message.contains("outside"), "{e}");
    }

    #[test]
    fn missing_reason_is_rejected() {
        let e = err("[[allow]]\nrule = \"hot-path-panic\"\npath = \"crates/flow/src/a.rs\"\n");
        assert!(e.message.contains("no reason"), "{e}");
        let e = err("[[unsafe-file]]\npath = \"crates/collect/src/engine.rs\"\n");
        assert!(e.message.contains("no reason"), "{e}");
    }

    #[test]
    fn missing_path_is_rejected() {
        let e = err("[[allow]]\nrule = \"hot-path-panic\"\nreason = \"why\"\n");
        assert!(e.message.contains("missing `path`"), "{e}");
        let e = err("[[unsafe-file]]\nreason = \"why\"\n");
        assert!(e.message.contains("missing `path`"), "{e}");
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let e = err("[[allow]]\nrule = \"no-such\"\npath = \"a\"\nreason = \"r\"\n");
        assert!(e.message.contains("unknown rule"), "{e}");
    }

    #[test]
    fn unknown_keys_are_rejected_per_section() {
        let e = err("[[allow]]\nrule = \"hot-path-panic\"\nseverity = \"high\"\n");
        assert!(e.message.contains("unknown key `severity`"), "{e}");
        let e = err("[[unsafe-file]]\npattern = \"x\"\n");
        assert!(e.message.contains("unknown key `pattern`"), "{e}");
    }

    #[test]
    fn duplicate_allow_entries_are_rejected() {
        let one = "[[allow]]\n\
             rule = \"hot-path-panic\"\n\
             path = \"crates/flow/src/a.rs\"\n\
             reason = \"first\"\n";
        let dup = format!("{one}{}", one.replace("first", "second"));
        let e = err(&dup);
        assert!(e.message.contains("duplicate `[[allow]]`"), "{e}");
        // Same rule+path with a *different* pattern is a narrower entry,
        // not a duplicate.
        let narrowed = format!(
            "{one}[[allow]]\n\
             rule = \"hot-path-panic\"\n\
             path = \"crates/flow/src/a.rs\"\n\
             pattern = \"x.unwrap()\"\n\
             reason = \"second\"\n"
        );
        assert!(Allowlist::parse(&narrowed).is_ok());
    }

    #[test]
    fn duplicate_unsafe_file_entries_are_rejected() {
        let toml = "[[unsafe-file]]\n\
             path = \"crates/collect/src/engine.rs\"\n\
             reason = \"one\"\n\
             [[unsafe-file]]\n\
             path = \"crates/collect/src/engine.rs\"\n\
             reason = \"two\"\n";
        let e = err(toml);
        assert!(e.message.contains("duplicate `[[unsafe-file]]`"), "{e}");
    }

    #[test]
    fn unquoted_and_quote_embedded_values_are_rejected() {
        let e = err("[[allow]]\nrule = hot-path-panic\n");
        assert!(e.message.contains("double-quoted"), "{e}");
        let e = err("[[allow]]\nrule = \"a\"b\"\n");
        assert!(e.message.contains("double-quoted"), "{e}");
    }

    #[test]
    fn pattern_narrowing_limits_suppression_to_matching_snippets() {
        let toml = "[[allow]]\n\
             rule = \"hot-path-panic\"\n\
             path = \"crates/flow/src/a.rs\"\n\
             pattern = \"x.unwrap()\"\n\
             reason = \"narrow\"\n";
        let list = Allowlist::parse(toml).expect("valid");
        let matching = Violation {
            path: "crates/flow/src/a.rs".to_string(),
            line: 1,
            rule: "hot-path-panic",
            message: String::new(),
            snippet: "let v = x.unwrap();".to_string(),
        };
        let other_line = Violation {
            snippet: "let v = y.unwrap();".to_string(),
            ..matching.clone()
        };
        let other_file = Violation {
            path: "crates/flow/src/b.rs".to_string(),
            ..matching.clone()
        };
        assert!(list.permits(&matching));
        assert!(!list.permits(&other_line));
        assert!(!list.permits(&other_file));
    }
}
