//! The checked-in `lint.toml` allowlist.
//!
//! Inline `// lint: allow(...)` directives cover single lines; the
//! allowlist covers exceptions that are structural (a whole generated
//! file, a rule that cannot apply to one path). It is deliberately a
//! checked-in file at the workspace root so every exception shows up in
//! review and `git log lint.toml` is the audit trail.
//!
//! Only the needed TOML subset is parsed (the workspace builds offline
//! with no TOML dependency): `[[allow]]` array-of-tables entries with
//! string values, comments, and blank lines.
//!
//! ```toml
//! [[allow]]
//! rule = "hot-path-panic"
//! path = "crates/flow/src/generated.rs"
//! pattern = "optional substring the flagged line must contain"
//! reason = "why this exception is sound"
//! ```

use crate::rules::{Violation, RULE_IDS};

/// One allowlist entry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry silences.
    pub rule: String,
    /// Workspace-relative path the entry applies to.
    pub path: String,
    /// Optional substring the flagged source line must contain; an empty
    /// pattern matches any line in `path`.
    pub pattern: String,
    /// Mandatory justification.
    pub reason: String,
}

/// The parsed allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

/// A malformed `lint.toml`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowlistError {
    /// 1-based line in `lint.toml` (0 for end-of-file problems).
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for AllowlistError {}

impl Allowlist {
    /// Parses the `lint.toml` subset described in the module docs.
    pub fn parse(text: &str) -> Result<Self, AllowlistError> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<AllowEntry> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(done) = current.take() {
                    entries.push(validated(done, lineno)?);
                }
                current = Some(AllowEntry::default());
                continue;
            }
            if line.starts_with('[') {
                return Err(AllowlistError {
                    line: lineno,
                    message: format!("unsupported section `{line}`; only `[[allow]]` is known"),
                });
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(AllowlistError {
                    line: lineno,
                    message: format!("expected `key = \"value\"`, got `{line}`"),
                });
            };
            let Some(entry) = current.as_mut() else {
                return Err(AllowlistError {
                    line: lineno,
                    message: "key outside an `[[allow]]` entry".to_string(),
                });
            };
            let value = unquote(value.trim()).ok_or_else(|| AllowlistError {
                line: lineno,
                message: format!("value for `{}` must be a double-quoted string", key.trim()),
            })?;
            match key.trim() {
                "rule" => entry.rule = value,
                "path" => entry.path = value,
                "pattern" => entry.pattern = value,
                "reason" => entry.reason = value,
                other => {
                    return Err(AllowlistError {
                        line: lineno,
                        message: format!(
                            "unknown key `{other}` (known: rule, path, pattern, reason)"
                        ),
                    })
                }
            }
        }
        if let Some(done) = current.take() {
            entries.push(validated(done, 0)?);
        }
        Ok(Allowlist { entries })
    }

    /// True when some entry covers this violation.
    pub fn permits(&self, v: &Violation) -> bool {
        self.entries.iter().any(|e| {
            e.rule == v.rule
                && e.path == v.path
                && (e.pattern.is_empty() || v.snippet.contains(&e.pattern))
        })
    }
}

fn validated(entry: AllowEntry, line: usize) -> Result<AllowEntry, AllowlistError> {
    if !RULE_IDS.contains(&entry.rule.as_str()) {
        return Err(AllowlistError {
            line,
            message: format!("entry names unknown rule `{}`", entry.rule),
        });
    }
    if entry.path.is_empty() {
        return Err(AllowlistError {
            line,
            message: "entry is missing `path`".to_string(),
        });
    }
    if entry.reason.trim().is_empty() {
        return Err(AllowlistError {
            line,
            message: format!(
                "entry for `{}` in `{}` has no reason; every exception must say why",
                entry.rule, entry.path
            ),
        });
    }
    Ok(entry)
}

fn unquote(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    // No escape support needed for paths/reasons; reject embedded quotes
    // so nothing silently truncates.
    if inner.contains('"') {
        return None;
    }
    Some(inner.to_string())
}
