//! A line-oriented Rust source scanner for lint rules.
//!
//! This is not a parser. Rules match on *blanked* source text: string,
//! byte-string, and char literal contents are replaced by spaces and all
//! comments are stripped from the code view (their text is kept per line
//! for directive parsing), so a pattern like `.unwrap()` can only match
//! real code. A brace-depth pass then marks every line that lives inside
//! a `#[cfg(test)]` item, because test code is exempt from most rules.
//!
//! The trade-off is deliberate: a hand-rolled scanner has zero
//! dependencies (the vendored/offline policy of this workspace) and is
//! fast enough to run on every build, at the price of being a token-level
//! approximation. The unit tests in `rules.rs` pin down the corners that
//! matter (strings, raw strings, lifetimes, nested test modules).

/// One source line, pre-processed for rule matching.
#[derive(Clone, Debug)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// Code with literal contents blanked and comments stripped.
    pub code: String,
    /// Concatenated text of `//` comments on this line (doc or not).
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
    /// The original line, for diagnostics.
    pub raw: String,
}

/// A whole file, scanned.
#[derive(Clone, Debug, Default)]
pub struct ScannedFile {
    pub lines: Vec<Line>,
}

impl ScannedFile {
    /// The blanked code of every line joined with `\n` — for rules that
    /// need to look across line boundaries (e.g. matching parentheses).
    pub fn code_text(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(&l.code);
            out.push('\n');
        }
        out
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
    ByteStr,
    Char,
}

/// Scans `source` into blanked lines plus per-line comment text.
pub fn scan(source: &str) -> ScannedFile {
    let mut lines = Vec::new();
    let mut mode = Mode::Code;
    for (idx, raw) in source.lines().enumerate() {
        let (code, comment, next_mode) = scan_line(raw, mode);
        mode = next_mode;
        lines.push(Line {
            number: idx + 1,
            code,
            comment,
            in_test: false,
            raw: raw.to_string(),
        });
    }
    mark_test_regions(&mut lines);
    ScannedFile { lines }
}

/// Processes one physical line starting in `mode`; returns the blanked
/// code, the comment text, and the mode the next line starts in.
fn scan_line(raw: &str, mut mode: Mode) -> (String, String, Mode) {
    let bytes: Vec<char> = raw.chars().collect();
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match mode {
            Mode::Code => match (c, next) {
                ('/', Some('/')) => {
                    comment.push_str(&raw[raw.char_indices().nth(i).map_or(0, |(b, _)| b)..]);
                    mode = Mode::LineComment;
                    i = bytes.len();
                }
                ('/', Some('*')) => {
                    mode = Mode::BlockComment(1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                }
                ('"', _) => {
                    code.push('"');
                    mode = Mode::Str;
                    i += 1;
                }
                ('r', Some('"' | '#')) if !prev_is_ident(&bytes, i) => {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut hashes = 0u8;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        for _ in i..=j {
                            code.push(' ');
                        }
                        code.push('"');
                        mode = Mode::RawStr(hashes);
                        i = j + 1;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
                ('b', Some('"')) if !prev_is_ident(&bytes, i) => {
                    code.push(' ');
                    code.push('"');
                    mode = Mode::ByteStr;
                    i += 2;
                }
                ('\'', _) => {
                    // Char literal vs lifetime: a literal is 'x' or an
                    // escape; a lifetime is 'ident with no closing quote.
                    if next == Some('\\') || (bytes.get(i + 2) == Some(&'\'')) {
                        code.push('\'');
                        mode = Mode::Char;
                        i += 1;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            },
            Mode::LineComment => unreachable_line_comment(&mut i, &bytes),
            Mode::BlockComment(depth) => match (c, next) {
                ('*', Some('/')) => {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                }
                ('/', Some('*')) => {
                    mode = Mode::BlockComment(depth + 1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                }
                _ => {
                    code.push(' ');
                    i += 1;
                }
            },
            Mode::Str => match (c, next) {
                ('\\', Some(_)) => {
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                }
                ('"', _) => {
                    code.push('"');
                    mode = Mode::Code;
                    i += 1;
                }
                _ => {
                    code.push(' ');
                    i += 1;
                }
            },
            Mode::ByteStr => match (c, next) {
                ('\\', Some(_)) => {
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                }
                ('"', _) => {
                    code.push('"');
                    mode = Mode::Code;
                    i += 1;
                }
                _ => {
                    code.push(' ');
                    i += 1;
                }
            },
            Mode::RawStr(hashes) => {
                if c == '"' && closing_hashes(&bytes, i + 1, hashes) {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    mode = Mode::Code;
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::Char => match (c, next) {
                ('\\', Some(_)) => {
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                }
                ('\'', _) => {
                    code.push('\'');
                    mode = Mode::Code;
                    i += 1;
                }
                _ => {
                    code.push(' ');
                    i += 1;
                }
            },
        }
    }
    // Line comments and char literals never span lines; strings can.
    let carry = match mode {
        Mode::LineComment | Mode::Char => Mode::Code,
        m => m,
    };
    (code, comment, carry)
}

/// `Mode::LineComment` is only entered mid-line and consumes the rest of
/// the line at the entry site; reaching it per-char would be a scanner
/// bug. Kept as a named helper so the state machine stays total.
fn unreachable_line_comment(i: &mut usize, bytes: &[char]) {
    *i = bytes.len();
}

fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i.checked_sub(1)
        .and_then(|p| bytes.get(p))
        .is_some_and(|c| c.is_alphanumeric() || *c == '_')
}

fn closing_hashes(bytes: &[char], from: usize, hashes: u8) -> bool {
    (0..hashes as usize).all(|k| bytes.get(from + k) == Some(&'#'))
}

/// Marks every line inside a `#[cfg(test)]` item (attribute through the
/// end of the item's brace block, or through the `;` of a `mod x;`).
fn mark_test_regions(lines: &mut [Line]) {
    // (depth the test item opened at) for each active region.
    let mut depth: i64 = 0;
    let mut test_close_depths: Vec<i64> = Vec::new();
    // Set when `#[cfg(test)]` was seen and its item's `{` is pending.
    let mut pending_attr = false;
    for line in lines.iter_mut() {
        let code = line.code.clone();
        if code.contains("#[cfg(test)]") {
            pending_attr = true;
        }
        let mut in_test_here = pending_attr || !test_close_depths.is_empty();
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_attr {
                        // The test item's block opened; the region lasts
                        // until depth drops back below this.
                        test_close_depths.push(depth);
                        pending_attr = false;
                    }
                }
                '}' => {
                    depth -= 1;
                    while test_close_depths.last().is_some_and(|&d| depth < d) {
                        test_close_depths.pop();
                    }
                }
                ';' if pending_attr => {
                    // `#[cfg(test)] mod tests;` — the region is the outline
                    // module file, not anything here.
                    pending_attr = false;
                }
                _ => {}
            }
            if pending_attr || !test_close_depths.is_empty() {
                in_test_here = true;
            }
        }
        line.in_test = in_test_here;
    }
}
