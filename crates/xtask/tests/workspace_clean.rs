//! The workspace must stay lint-clean. When this fails, run
//! `cargo xtask lint` for the same findings with fix guidance, and see
//! docs/STATIC_ANALYSIS.md for the suppression workflow.

#[test]
fn workspace_is_lint_clean() {
    let root = xtask::workspace_root();
    let report = xtask::lint_workspace(&root).expect("lint driver runs");
    assert!(
        report.violations.is_empty(),
        "{} lint violation(s) — `cargo xtask lint` reproduces this:\n{}",
        report.violations.len(),
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "only {} files scanned; the workspace walk looks broken",
        report.files_scanned
    );
}
