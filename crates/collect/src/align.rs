//! Per-tier interval alignment: the bounded-reorder-window +
//! straggler-quorum machinery, factored out so the root collector and
//! every mid-tier aggregator run the exact same policy.
//!
//! The aligner owns the pending-interval map and the monotone
//! `next_interval` cursor. Callers [`IntervalAligner::offer`] frames as
//! they arrive and then drain [`IntervalAligner::pop_ready`] until it
//! returns `None`; the aligner decides, per tier, when an interval is
//! complete, when the straggler deadline degrades it to a partial, and
//! when a hole in the grid must be synthesized as a gap. Gaps carry no
//! payload on purpose: a gap must never be represented as an all-zero
//! snapshot (summing or forecasting on zeros drags the EWMA baseline
//! down and causes spurious alerts on recovery — the PR 5 regression).

use hifind::IntervalSnapshot;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Alignment policy for one tier.
#[derive(Clone, Debug)]
pub(crate) struct AlignPolicy {
    /// Downstream nodes expected to contribute to each interval.
    pub expected: usize,
    /// How long a partially filled interval waits for stragglers.
    pub straggler_deadline: Duration,
    /// Maximum pending intervals held before the oldest is forced out.
    pub reorder_window: u64,
}

/// One interval being assembled.
struct PendingInterval {
    combined: IntervalSnapshot,
    /// Node ids seen for this interval (also the duplicate filter).
    children: Vec<u32>,
    first_seen: Instant,
}

/// What happened to an offered frame.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum OfferOutcome {
    /// Combined into (or opened) the pending interval.
    Accepted,
    /// This child already contributed to this interval.
    Duplicate,
    /// The interval was already flushed past.
    Late,
    /// The snapshot refused to combine (shape mismatch) — the pending
    /// aggregate is left untouched.
    CombineFailed,
}

/// How a flushed interval closed.
pub(crate) enum FlushKind {
    /// Every expected child contributed.
    Complete,
    /// Flushed short-handed; `missing` children never arrived.
    Partial {
        /// Expected minus actual contributors.
        missing: u64,
    },
    /// No child reported this interval at all.
    Gap,
}

/// One flushed interval. `payload` is `None` exactly for gaps.
pub(crate) struct Flush {
    /// The interval index that closed.
    pub interval: u64,
    /// How it closed.
    pub kind: FlushKind,
    /// The combined snapshot and its contributor count; absent for gaps.
    pub payload: Option<(IntervalSnapshot, usize)>,
}

/// The per-tier alignment state machine.
pub(crate) struct IntervalAligner {
    policy: AlignPolicy,
    pending: BTreeMap<u64, PendingInterval>,
    next_interval: u64,
}

impl IntervalAligner {
    pub(crate) fn new(policy: AlignPolicy, start_interval: u64) -> Self {
        IntervalAligner {
            policy,
            pending: BTreeMap::new(),
            next_interval: start_interval,
        }
    }

    /// The next interval index this tier will flush.
    pub(crate) fn next_interval(&self) -> u64 {
        self.next_interval
    }

    /// Offers one child snapshot for `interval`.
    pub(crate) fn offer(
        &mut self,
        child: u32,
        interval: u64,
        snapshot: IntervalSnapshot,
    ) -> OfferOutcome {
        if interval < self.next_interval {
            return OfferOutcome::Late;
        }
        match self.pending.entry(interval) {
            Entry::Vacant(slot) => {
                slot.insert(PendingInterval {
                    combined: snapshot,
                    children: vec![child],
                    first_seen: Instant::now(),
                });
                OfferOutcome::Accepted
            }
            Entry::Occupied(mut slot) => {
                let pending = slot.get_mut();
                if pending.children.contains(&child) {
                    return OfferOutcome::Duplicate;
                }
                if pending.combined.combine_into(&snapshot).is_err() {
                    return OfferOutcome::CombineFailed;
                }
                pending.children.push(child);
                OfferOutcome::Accepted
            }
        }
    }

    /// Pops the next interval that is ready to flush, if any. With
    /// `drain` set every held interval (and interior gap) flushes
    /// unconditionally, oldest first.
    pub(crate) fn pop_ready(&mut self, drain: bool) -> Option<Flush> {
        let over_window =
            u64::try_from(self.pending.len()).unwrap_or(u64::MAX) > self.policy.reorder_window;
        match self.pending.get(&self.next_interval) {
            Some(pending) => {
                let complete = pending.children.len() >= self.policy.expected;
                let expired = pending.first_seen.elapsed() >= self.policy.straggler_deadline;
                if !(complete || expired || over_window || drain) {
                    return None;
                }
                let pending = self.pending.remove(&self.next_interval)?;
                let interval = self.next_interval;
                self.next_interval += 1;
                let contributors = pending.children.len();
                let kind = if complete {
                    FlushKind::Complete
                } else {
                    let missing = self.policy.expected.saturating_sub(contributors);
                    FlushKind::Partial {
                        missing: u64::try_from(missing).unwrap_or(u64::MAX),
                    }
                };
                Some(Flush {
                    interval,
                    kind,
                    payload: Some((pending.combined, contributors)),
                })
            }
            None => {
                // A later interval is pending but this slot is empty: a
                // hole in the grid. Only synthesize the gap once a held
                // interval proves time moved on (or on drain/overflow) —
                // never eagerly, or clock skew would fabricate gaps.
                let (_, held) = self.pending.iter().next()?;
                let expired = held.first_seen.elapsed() >= self.policy.straggler_deadline;
                if !(expired || over_window || drain) {
                    return None;
                }
                let interval = self.next_interval;
                self.next_interval += 1;
                Some(Flush {
                    interval,
                    kind: FlushKind::Gap,
                    payload: None,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind::{HiFindConfig, SketchRecorder};

    fn snap(cfg: &HiFindConfig) -> IntervalSnapshot {
        SketchRecorder::new(cfg).unwrap().take_snapshot()
    }

    fn policy(expected: usize) -> AlignPolicy {
        AlignPolicy {
            expected,
            straggler_deadline: Duration::from_secs(60),
            reorder_window: 8,
        }
    }

    #[test]
    fn complete_interval_flushes_immediately() {
        let cfg = HiFindConfig::small(1);
        let mut aligner = IntervalAligner::new(policy(2), 0);
        assert_eq!(aligner.offer(1, 0, snap(&cfg)), OfferOutcome::Accepted);
        assert!(aligner.pop_ready(false).is_none(), "quorum not met yet");
        assert_eq!(aligner.offer(2, 0, snap(&cfg)), OfferOutcome::Accepted);
        let flush = aligner.pop_ready(false).expect("complete");
        assert_eq!(flush.interval, 0);
        assert!(matches!(flush.kind, FlushKind::Complete));
        assert_eq!(flush.payload.map(|(_, n)| n), Some(2));
        assert_eq!(aligner.next_interval(), 1);
    }

    #[test]
    fn duplicates_and_late_frames_are_classified() {
        let cfg = HiFindConfig::small(1);
        let mut aligner = IntervalAligner::new(policy(1), 0);
        assert_eq!(aligner.offer(1, 0, snap(&cfg)), OfferOutcome::Accepted);
        assert_eq!(aligner.offer(1, 0, snap(&cfg)), OfferOutcome::Duplicate);
        assert!(aligner.pop_ready(false).is_some());
        assert_eq!(aligner.offer(1, 0, snap(&cfg)), OfferOutcome::Late);
    }

    #[test]
    fn drain_flushes_partials_and_interior_gaps_in_order() {
        let cfg = HiFindConfig::small(1);
        let mut aligner = IntervalAligner::new(policy(2), 0);
        assert_eq!(aligner.offer(1, 0, snap(&cfg)), OfferOutcome::Accepted);
        // Interval 1 is skipped entirely; interval 2 arrives from one child.
        assert_eq!(aligner.offer(1, 2, snap(&cfg)), OfferOutcome::Accepted);
        assert!(aligner.pop_ready(false).is_none(), "deadline not reached");
        let first = aligner.pop_ready(true).expect("partial 0");
        assert_eq!(first.interval, 0);
        assert!(matches!(first.kind, FlushKind::Partial { missing: 1 }));
        let second = aligner.pop_ready(true).expect("gap 1");
        assert_eq!(second.interval, 1);
        assert!(matches!(second.kind, FlushKind::Gap));
        assert!(second.payload.is_none(), "gaps carry no payload");
        let third = aligner.pop_ready(true).expect("partial 2");
        assert_eq!(third.interval, 2);
        assert!(aligner.pop_ready(true).is_none());
    }

    #[test]
    fn reorder_window_overflow_forces_the_oldest_out() {
        let cfg = HiFindConfig::small(1);
        let mut aligner = IntervalAligner::new(
            AlignPolicy {
                expected: 2,
                straggler_deadline: Duration::from_secs(600),
                reorder_window: 2,
            },
            0,
        );
        for interval in 0..3 {
            assert_eq!(
                aligner.offer(1, interval, snap(&cfg)),
                OfferOutcome::Accepted
            );
        }
        let flush = aligner.pop_ready(false).expect("over window");
        assert_eq!(flush.interval, 0);
        assert!(matches!(flush.kind, FlushKind::Partial { missing: 1 }));
        assert!(aligner.pop_ready(false).is_none(), "back inside window");
    }

    #[test]
    fn mismatched_snapshot_shapes_refuse_to_combine() {
        let a = HiFindConfig::small(1);
        let b = HiFindConfig::paper(1);
        let mut aligner = IntervalAligner::new(policy(2), 0);
        assert_eq!(aligner.offer(1, 0, snap(&a)), OfferOutcome::Accepted);
        assert_eq!(aligner.offer(2, 0, snap(&b)), OfferOutcome::CombineFailed);
        // The aggregate is untouched: child 2 is not recorded.
        assert_eq!(aligner.offer(2, 0, snap(&a)), OfferOutcome::Accepted);
    }
}
