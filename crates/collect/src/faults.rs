//! Deterministic fault injection for the collect plane.
//!
//! A [`FaultProxy`] sits between router agents and the collector as a
//! frame-aware TCP relay: it understands the wire framing just enough to
//! slice complete frames out of the stream, then mangles them according to
//! a seeded [`FaultPlan`] — drop, duplicate, reorder, delay, truncate,
//! bit-flip, or kill the connection outright. Every decision is a pure
//! function of `(seed, fault class, connection, frame index)`, so a test
//! failure replays exactly under the same seed.
//!
//! The proxy never interprets payloads; corruption is injected *below* the
//! validation layers on purpose, so the integration suite can assert that
//! the collector counts and survives what the wire/codec layers are
//! designed to catch.

use crate::wire::{self, HEADER_LEN};
use crate::CollectError;
use hifind_telemetry::{Counter, Registry, TelemetryError};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Fault rates are parts-per-million of frames.
const PPM: u64 = 1_000_000;

/// A seeded schedule of frame faults. All rates default to zero; a plan
/// with only `seed` set relays faithfully.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Seed for every per-frame decision.
    pub seed: u64,
    /// Frames silently discarded (parts per million).
    pub drop_ppm: u32,
    /// Frames forwarded twice (parts per million).
    pub dup_ppm: u32,
    /// Frames held back and emitted after their successor (ppm).
    pub reorder_ppm: u32,
    /// Frames delayed by [`FaultPlan::delay`] before forwarding (ppm).
    pub delay_ppm: u32,
    /// Delay applied to delayed frames.
    pub delay: Duration,
    /// Frames forwarded with the tail cut off, after which the connection
    /// is killed — framing downstream is torn mid-frame (ppm).
    pub truncate_ppm: u32,
    /// Frames forwarded with one payload bit flipped (ppm).
    pub bitflip_ppm: u32,
    /// Kill the agent↔collector connection after every N relayed frames
    /// (`0` = never). The agent reconnects and re-ships per its policy.
    pub kill_conn_every_frames: u64,
}

impl FaultPlan {
    /// A faithful relay plan (no faults) under `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_ppm: 0,
            dup_ppm: 0,
            reorder_ppm: 0,
            delay_ppm: 0,
            delay: Duration::from_millis(20),
            truncate_ppm: 0,
            bitflip_ppm: 0,
            kill_conn_every_frames: 0,
        }
    }

    /// The deterministic per-frame hash for one fault class.
    fn hash(&self, class: u8, conn: u64, frame: u64) -> u64 {
        splitmix64(
            self.seed
                ^ (u64::from(class) << 56)
                ^ conn.rotate_left(32)
                ^ frame.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }

    /// Whether the fault of `class` at rate `ppm` fires for this frame.
    fn fires(&self, class: u8, conn: u64, frame: u64, ppm: u32) -> bool {
        u64::from(ppm) != 0 && self.hash(class, conn, frame) % PPM < u64::from(ppm)
    }
}

/// SplitMix64 — tiny, seedable, and good enough to decorrelate fault
/// classes; the same generator the trafficgen crate family uses.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fault classes, used as hash domains so decisions are independent.
mod class {
    pub const DROP: u8 = 2;
    pub const TRUNCATE: u8 = 3;
    pub const BITFLIP: u8 = 4;
    pub const DELAY: u8 = 5;
    pub const REORDER: u8 = 6;
    pub const DUP: u8 = 7;
}

/// What the proxy injected over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Complete frames that entered the proxy.
    pub frames_seen: u64,
    /// Frames discarded.
    pub dropped: u64,
    /// Frames forwarded twice.
    pub duplicated: u64,
    /// Frame pairs emitted in swapped order.
    pub reordered: u64,
    /// Frames delayed.
    pub delayed: u64,
    /// Frames truncated (connection killed after the partial write).
    pub truncated: u64,
    /// Frames forwarded with a flipped payload bit.
    pub bitflipped: u64,
    /// Connections killed (scheduled kills and truncation kills).
    pub conn_kills: u64,
}

#[derive(Default)]
struct StatsInner {
    frames_seen: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
    delayed: AtomicU64,
    truncated: AtomicU64,
    bitflipped: AtomicU64,
    conn_kills: AtomicU64,
}

impl StatsInner {
    fn snapshot(&self) -> FaultStats {
        FaultStats {
            frames_seen: self.frames_seen.load(Ordering::SeqCst),
            dropped: self.dropped.load(Ordering::SeqCst),
            duplicated: self.duplicated.load(Ordering::SeqCst),
            reordered: self.reordered.load(Ordering::SeqCst),
            delayed: self.delayed.load(Ordering::SeqCst),
            truncated: self.truncated.load(Ordering::SeqCst),
            bitflipped: self.bitflipped.load(Ordering::SeqCst),
            conn_kills: self.conn_kills.load(Ordering::SeqCst),
        }
    }
}

/// Best-effort fault metrics (`hifind_collect_fault_*`).
struct FaultTelemetry {
    frames: Arc<Counter>,
    dropped: Arc<Counter>,
    duplicated: Arc<Counter>,
    reordered: Arc<Counter>,
    delayed: Arc<Counter>,
    truncated: Arc<Counter>,
    bitflipped: Arc<Counter>,
    conn_kills: Arc<Counter>,
}

impl FaultTelemetry {
    fn new(registry: &Registry) -> Result<Self, TelemetryError> {
        Ok(FaultTelemetry {
            frames: registry.counter(
                "hifind_collect_fault_frames_total",
                "Complete frames that entered the fault proxy",
            )?,
            dropped: registry.counter(
                "hifind_collect_fault_dropped_total",
                "Frames discarded by the fault proxy",
            )?,
            duplicated: registry.counter(
                "hifind_collect_fault_duplicated_total",
                "Frames forwarded twice by the fault proxy",
            )?,
            reordered: registry.counter(
                "hifind_collect_fault_reordered_total",
                "Frame pairs emitted in swapped order by the fault proxy",
            )?,
            delayed: registry.counter(
                "hifind_collect_fault_delayed_total",
                "Frames delayed by the fault proxy",
            )?,
            truncated: registry.counter(
                "hifind_collect_fault_truncated_total",
                "Frames truncated mid-payload by the fault proxy",
            )?,
            bitflipped: registry.counter(
                "hifind_collect_fault_bitflipped_total",
                "Frames forwarded with a flipped payload bit",
            )?,
            conn_kills: registry.counter(
                "hifind_collect_fault_conn_kills_total",
                "Agent connections killed by the fault proxy",
            )?,
        })
    }
}

/// A running fault-injection relay. Dropping the handle without calling
/// [`FaultProxy::stop`] leaks the listener until process exit; tests
/// should always stop it.
pub struct FaultProxy {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
    stats: Arc<StatsInner>,
}

impl FaultProxy {
    /// Binds a loopback listener and relays every accepted connection to
    /// `upstream` with `plan`'s faults applied. With a `registry`, every
    /// injected fault is also counted under `hifind_collect_fault_*`.
    ///
    /// # Errors
    ///
    /// Fails on bind/resolve errors and metric registration clashes.
    pub fn spawn(
        upstream: impl ToSocketAddrs,
        plan: FaultPlan,
        registry: Option<&Registry>,
    ) -> Result<FaultProxy, CollectError> {
        let telemetry = registry.map(FaultTelemetry::new).transpose()?;
        let upstream_addr = upstream.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, "upstream resolved to nothing")
        })?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());
        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                accept_loop(listener, upstream_addr, plan, shutdown, stats, telemetry)
            })
        };
        Ok(FaultProxy {
            local_addr,
            shutdown,
            acceptor,
            stats,
        })
    }

    /// The address agents should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Injection counters so far (the proxy keeps running).
    pub fn stats(&self) -> FaultStats {
        self.stats.snapshot()
    }

    /// Stops the relay and returns the final injection counters.
    ///
    /// # Errors
    ///
    /// [`CollectError::WorkerPanic`] if the relay thread died.
    pub fn stop(self) -> Result<FaultStats, CollectError> {
        self.shutdown.store(true, Ordering::SeqCst);
        self.acceptor
            .join()
            .map_err(|_| CollectError::WorkerPanic("fault-proxy"))?;
        Ok(self.stats.snapshot())
    }
}

struct Shared {
    plan: FaultPlan,
    shutdown: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    telemetry: Option<FaultTelemetry>,
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    plan: FaultPlan,
    shutdown: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    telemetry: Option<FaultTelemetry>,
) {
    let shared = Arc::new(Shared {
        plan,
        shutdown: Arc::clone(&shutdown),
        stats,
        telemetry,
    });
    let mut handlers = Vec::new();
    let mut conn_index = 0u64;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((downstream, _)) => {
                let shared = Arc::clone(&shared);
                let conn = conn_index;
                conn_index += 1;
                handlers.push(std::thread::spawn(move || {
                    relay_connection(downstream, upstream, conn, &shared)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// Relays one agent connection frame by frame until EOF, shutdown, or an
/// injected/organic connection death. Collector-to-agent traffic (codec
/// accepts and interval acks) relays back unfaulted through a paired
/// thread: the fault model is about data frames, and a control channel
/// this proxy silently ate would just demote every agent to v1 keyframes
/// instead of exercising the chain under faults.
fn relay_connection(mut downstream: TcpStream, upstream_addr: SocketAddr, conn: u64, sh: &Shared) {
    let _ = downstream.set_read_timeout(Some(Duration::from_millis(50)));
    let Ok(mut upstream) = TcpStream::connect_timeout(&upstream_addr, Duration::from_secs(5))
    else {
        return;
    };
    let _ = upstream.set_nodelay(true);
    let done = Arc::new(AtomicBool::new(false));
    let reverse = match (upstream.try_clone(), downstream.try_clone()) {
        (Ok(up), Ok(down)) => {
            let shutdown = Arc::clone(&sh.shutdown);
            let done = Arc::clone(&done);
            Some(std::thread::spawn(move || {
                reverse_relay(up, down, &shutdown, &done)
            }))
        }
        _ => None,
    };
    relay_forward(&mut downstream, &mut upstream, conn, sh);
    // The agent-facing socket dies now — for injected kills, abruptly;
    // that is the fault being modelled. The collector-facing socket is
    // only half-closed: dropping it outright would RST the collector on
    // its next ack write and wipe relayed frames still sitting unread in
    // its receive buffer. The reverse thread keeps draining acks until
    // the collector itself closes the connection.
    let _ = downstream.shutdown(std::net::Shutdown::Both);
    let _ = upstream.shutdown(std::net::Shutdown::Write);
    done.store(true, Ordering::SeqCst);
    if let Some(handle) = reverse {
        let _ = handle.join();
    }
}

/// Copies collector-to-agent bytes verbatim. Runs until the collector
/// closes its side (or global shutdown); once `done` marks the agent
/// side gone, bytes are drained and discarded instead of forwarded.
fn reverse_relay(
    mut upstream: TcpStream,
    mut downstream: TcpStream,
    shutdown: &AtomicBool,
    done: &AtomicBool,
) {
    let _ = upstream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut chunk = [0u8; 4096];
    let mut forwarding = true;
    while !shutdown.load(Ordering::SeqCst) {
        match upstream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                if forwarding
                    && (done.load(Ordering::SeqCst) || downstream.write_all(&chunk[..n]).is_err())
                {
                    forwarding = false;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
}

/// The faulted agent-to-collector direction of one connection.
fn relay_forward(downstream: &mut TcpStream, upstream: &mut TcpStream, conn: u64, sh: &Shared) {
    let plan = &sh.plan;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    let mut frame_idx = 0u64;
    // Frame the proxy is holding back for a reorder swap.
    let mut held: Option<Vec<u8>> = None;
    'conn: while !sh.shutdown.load(Ordering::SeqCst) {
        match downstream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                loop {
                    // A codec hello is control traffic, not a frame: it
                    // passes through whole and unfaulted (and uncounted),
                    // exactly like the accept flowing the other way.
                    if buf.starts_with(&wire::HELLO_MAGIC) {
                        if buf.len() < 8 {
                            break;
                        }
                        let count = usize::from(u16::from_le_bytes([buf[6], buf[7]]));
                        let total = wire::HELLO_BASE_LEN + count;
                        if buf.len() < total {
                            break;
                        }
                        let hello: Vec<u8> = buf.drain(..total).collect();
                        if upstream.write_all(&hello).is_err() {
                            return;
                        }
                        continue;
                    }
                    if buf.len() < HEADER_LEN {
                        break;
                    }
                    let Ok(header_bytes) = <[u8; HEADER_LEN]>::try_from(&buf[..HEADER_LEN]) else {
                        break 'conn;
                    };
                    // The proxy only needs the length; a header the wire
                    // layer would reject is forwarded verbatim so the
                    // collector exercises its own rejection path.
                    let Ok(header) = wire::parse_header(&header_bytes, wire::DEFAULT_MAX_PAYLOAD)
                    else {
                        let _ = upstream.write_all(&buf);
                        break 'conn;
                    };
                    let frame_len = HEADER_LEN + header.payload_len as usize;
                    if buf.len() < frame_len {
                        break;
                    }
                    let mut frame: Vec<u8> = buf.drain(..frame_len).collect();
                    let idx = frame_idx;
                    frame_idx += 1;
                    sh.stats.frames_seen.fetch_add(1, Ordering::SeqCst);
                    if let Some(t) = &sh.telemetry {
                        t.frames.inc();
                    }

                    // Scheduled connection kill: flush any held frame so
                    // reorder cannot silently become drop, then die.
                    let kill_every = plan.kill_conn_every_frames;
                    if kill_every != 0 && idx != 0 && idx.is_multiple_of(kill_every) {
                        if let Some(h) = held.take() {
                            let _ = upstream.write_all(&h);
                        }
                        sh.stats.conn_kills.fetch_add(1, Ordering::SeqCst);
                        if let Some(t) = &sh.telemetry {
                            t.conn_kills.inc();
                        }
                        break 'conn;
                    }

                    if plan.fires(class::DROP, conn, idx, plan.drop_ppm) {
                        sh.stats.dropped.fetch_add(1, Ordering::SeqCst);
                        if let Some(t) = &sh.telemetry {
                            t.dropped.inc();
                        }
                        continue;
                    }

                    if plan.fires(class::TRUNCATE, conn, idx, plan.truncate_ppm)
                        && frame.len() > HEADER_LEN
                    {
                        let span = frame.len() - HEADER_LEN;
                        let keep = HEADER_LEN
                            + (usize::try_from(plan.hash(class::TRUNCATE, conn, idx)).unwrap_or(0)
                                % span);
                        if let Some(h) = held.take() {
                            let _ = upstream.write_all(&h);
                        }
                        let _ = upstream.write_all(&frame[..keep]);
                        sh.stats.truncated.fetch_add(1, Ordering::SeqCst);
                        sh.stats.conn_kills.fetch_add(1, Ordering::SeqCst);
                        if let Some(t) = &sh.telemetry {
                            t.truncated.inc();
                            t.conn_kills.inc();
                        }
                        break 'conn;
                    }

                    if plan.fires(class::BITFLIP, conn, idx, plan.bitflip_ppm)
                        && frame.len() > HEADER_LEN
                    {
                        let span = frame.len() - HEADER_LEN;
                        let pos = HEADER_LEN
                            + (usize::try_from(plan.hash(class::BITFLIP, conn, idx)).unwrap_or(0)
                                % span);
                        let bit = plan.hash(class::BITFLIP, conn, idx.rotate_left(17)) % 8;
                        frame[pos] ^= 1u8 << bit;
                        sh.stats.bitflipped.fetch_add(1, Ordering::SeqCst);
                        if let Some(t) = &sh.telemetry {
                            t.bitflipped.inc();
                        }
                    }

                    if plan.fires(class::DELAY, conn, idx, plan.delay_ppm) {
                        std::thread::sleep(plan.delay);
                        sh.stats.delayed.fetch_add(1, Ordering::SeqCst);
                        if let Some(t) = &sh.telemetry {
                            t.delayed.inc();
                        }
                    }

                    if held.is_none() && plan.fires(class::REORDER, conn, idx, plan.reorder_ppm) {
                        held = Some(frame);
                        continue;
                    }

                    let dup = plan.fires(class::DUP, conn, idx, plan.dup_ppm);
                    if write_frame(upstream, &frame, dup, sh).is_err() {
                        break 'conn;
                    }
                    if let Some(h) = held.take() {
                        sh.stats.reordered.fetch_add(1, Ordering::SeqCst);
                        if let Some(t) = &sh.telemetry {
                            t.reordered.inc();
                        }
                        if upstream.write_all(&h).is_err() {
                            break 'conn;
                        }
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
    // EOF or shutdown: a still-held reorder frame is flushed, not lost.
    if let Some(h) = held.take() {
        let _ = upstream.write_all(&h);
    }
}

fn write_frame(
    upstream: &mut TcpStream,
    frame: &[u8],
    dup: bool,
    sh: &Shared,
) -> std::io::Result<()> {
    upstream.write_all(frame)?;
    if dup {
        upstream.write_all(frame)?;
        sh.stats.duplicated.fetch_add(1, Ordering::SeqCst);
        if let Some(t) = &sh.telemetry {
            t.duplicated.inc();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_rate_shaped() {
        let mut plan = FaultPlan::new(99);
        plan.drop_ppm = 250_000; // 25%
        let fired: Vec<bool> = (0..4000)
            .map(|i| plan.fires(class::DROP, 0, i, plan.drop_ppm))
            .collect();
        let again: Vec<bool> = (0..4000)
            .map(|i| plan.fires(class::DROP, 0, i, plan.drop_ppm))
            .collect();
        assert_eq!(fired, again, "same seed must replay identically");
        let hits = fired.iter().filter(|&&b| b).count();
        assert!(
            (600..1400).contains(&hits),
            "25% of 4000 should land near 1000, got {hits}"
        );
        // Classes are decorrelated: same indices, different class, should
        // not produce the same firing pattern.
        let other: Vec<bool> = (0..4000)
            .map(|i| plan.fires(class::DUP, 0, i, plan.drop_ppm))
            .collect();
        assert_ne!(fired, other);
    }

    #[test]
    fn zero_rate_never_fires() {
        let plan = FaultPlan::new(7);
        assert!((0..1000).all(|i| !plan.fires(class::DROP, 0, i, plan.drop_ppm)));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultPlan::new(1);
        a.drop_ppm = 500_000;
        let mut b = FaultPlan::new(2);
        b.drop_ppm = 500_000;
        let fa: Vec<bool> = (0..256)
            .map(|i| a.fires(class::DROP, 0, i, a.drop_ppm))
            .collect();
        let fb: Vec<bool> = (0..256)
            .map(|i| b.fires(class::DROP, 0, i, b.drop_ppm))
            .collect();
        assert_ne!(fa, fb);
    }
}
