//! The event-driven connection engine shared by the root collector and
//! mid-tier aggregators.
//!
//! One thread owns every socket of a collection node: a readiness loop
//! (`poll(2)` over nonblocking fds) multiplexes the listener, a wakeup
//! pipe, and all downstream connections. Each connection carries its own
//! read buffer and a typed frame state machine ([`FrameAssembler`]); no
//! thread is ever spawned per connection, so a node holding hundreds of
//! downstream agents costs one engine thread, not hundreds of stacks.
//!
//! Decoded frames flow to the consumer (the aligner or merger thread)
//! over a bounded channel. A consumer that falls behind backpressures
//! the engine: events it cannot `try_send` park in a small pending queue
//! and every connection that has produced data frames leaves the poll
//! set until the queue drains, so backpressure lands on TCP instead of
//! collector memory. Crucially the engine thread itself never blocks —
//! the control plane (accepting connections, answering codec hellos,
//! flushing interval acks) stays live however far behind detection runs.
//! A v2 agent reconnecting into a backpressured collector still gets its
//! hello answered instead of timing out into v1 fallback or retry loops.
//!
//! Shutdown is prompt: [`EngineHandle::wake`] writes one byte into the
//! wakeup pipe, which the poll set always watches, so `stop()` never
//! waits out an accept or read timeout tick.

use crate::codec_v2::ChainStore;
use crate::wire::{self, FrameHeader, WireError, HEADER_LEN};
use crate::CollectError;
use hifind::IntervalSnapshot;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Engine → consumer messages, one per connection transition or frame.
pub(crate) enum Event {
    /// A downstream node connected.
    Connected,
    /// A validated, decoded snapshot frame.
    Frame {
        /// Sender id from the frame header.
        router_id: u32,
        /// Interval index from the frame header.
        interval: u64,
        /// The decoded snapshot (boxed: ~1 KB of inline sketch headers).
        snapshot: Box<IntervalSnapshot>,
        /// Header + payload size on the wire.
        frame_bytes: u64,
        /// Which codec the payload arrived in.
        codec: u8,
        /// Whether a v2 payload was a delta (false for keyframes and v1).
        delta: bool,
    },
    /// A frame failed wire validation and was discarded.
    Rejected(WireError),
    /// A downstream node disconnected (or its stream turned fatal).
    Disconnected,
}

/// Engine policy knobs.
pub(crate) struct EngineConfig {
    /// Per-frame payload cap handed to the wire layer.
    pub max_payload: u32,
    /// Poll timeout: the worst-case latency of noticing the shutdown
    /// flag if the wakeup byte is ever lost (belt and braces).
    pub tick: Duration,
    /// Codec ids this node accepts, in preference order. A list without
    /// [`wire::CODEC_V2`] makes the node behave exactly like a legacy
    /// v1 build: hellos die as bad magic and version-2 frames as
    /// unsupported versions.
    pub codecs: Vec<u8>,
}

impl EngineConfig {
    /// Highest-preference codec shared with a peer advertising `theirs`,
    /// falling back to v1 (which every build speaks and no hello is ever
    /// sent for).
    fn pick_codec(&self, theirs: &[u8]) -> u8 {
        self.codecs
            .iter()
            .copied()
            .find(|c| theirs.contains(c))
            .unwrap_or(wire::CODEC_V1)
    }
}

/// A typed per-connection frame state machine: bytes accumulate in one
/// growing buffer and frames are sliced out whole, so arbitrary TCP
/// segmentation can never split a frame.
pub(crate) struct FrameAssembler {
    buf: Vec<u8>,
    state: FrameState,
    max_payload: u32,
    /// Whether this node understands v2 at all. When false the assembler
    /// is byte-for-byte a legacy v1 endpoint: a hello is bad magic, a
    /// version-2 header an unsupported version — which is exactly how
    /// agents detect a v1-only collector and fall back.
    accept_v2: bool,
}

/// Where the assembler stands in the current frame.
enum FrameState {
    /// Waiting for a complete 36-byte header.
    Header,
    /// Header parsed; waiting for its declared payload.
    Payload(FrameHeader),
}

/// One assembler step.
pub(crate) enum Step {
    /// Not enough buffered bytes to advance; read more.
    Need,
    /// A complete, validated frame.
    Frame {
        /// Sender id from the frame header.
        router_id: u32,
        /// Interval index from the frame header.
        interval: u64,
        /// The decoded snapshot.
        snapshot: Box<IntervalSnapshot>,
        /// Header + payload size on the wire.
        frame_bytes: u64,
        /// Which codec the payload arrived in.
        codec: u8,
        /// Whether a v2 payload was a delta.
        delta: bool,
    },
    /// The peer's hello: the codec ids it advertised.
    Hello(Vec<u8>),
    /// The framing was intact (lengths checked out) but the payload was
    /// bad; this frame is skipped, the connection survives.
    Skip(WireError),
    /// Framing itself is lost; the connection must be dropped.
    Fatal(WireError),
}

impl FrameAssembler {
    pub(crate) fn new(max_payload: u32, accept_v2: bool) -> Self {
        FrameAssembler {
            buf: Vec::new(),
            state: FrameState::Header,
            max_payload,
            accept_v2,
        }
    }

    /// Appends freshly read bytes.
    pub(crate) fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether undecoded bytes are sitting in the buffer. A connection
    /// whose service round stopped early (consumer backpressure) holds
    /// whole frames here that no poll readiness will ever announce.
    fn has_buffered(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Tries to slice a complete hello off the front of the buffer.
    /// `None` means "not a hello" (fall through to frame parsing);
    /// `Some(Need)` means one is forming but incomplete.
    fn try_hello(&mut self) -> Option<Step> {
        if !self.accept_v2 || self.buf.len() < 4 || self.buf[..4] != wire::HELLO_MAGIC {
            return None;
        }
        if self.buf.len() < wire::HELLO_BASE_LEN {
            return Some(Step::Need);
        }
        let count = usize::from(u16::from_le_bytes([self.buf[6], self.buf[7]]));
        let total = wire::HELLO_BASE_LEN + count;
        if self.buf.len() < total {
            return Some(Step::Need);
        }
        let parsed = wire::parse_hello(&self.buf[..total]);
        match parsed {
            Ok(codecs) => {
                self.buf.drain(..total);
                Some(Step::Hello(codecs))
            }
            // A corrupt hello means the peer's first bytes are already
            // untrustworthy; framing cannot recover.
            Err(e) => Some(Step::Fatal(e)),
        }
    }

    /// Advances the state machine by at most one frame.
    pub(crate) fn step(&mut self, chains: &mut ChainStore) -> Step {
        let header = match self.state {
            FrameState::Header => {
                if let Some(step) = self.try_hello() {
                    return step;
                }
                if self.buf.len() < HEADER_LEN {
                    return Step::Need;
                }
                let Ok(header_bytes) = <[u8; HEADER_LEN]>::try_from(&self.buf[..HEADER_LEN]) else {
                    // Length is guaranteed by the guard above; bail rather
                    // than panic if that invariant ever breaks.
                    return Step::Fatal(WireError::TruncatedFrame {
                        expected: HEADER_LEN,
                        got: self.buf.len(),
                    });
                };
                match wire::parse_header(&header_bytes, self.max_payload) {
                    Ok(h) if h.version == wire::PROTOCOL_VERSION_2 && !self.accept_v2 => {
                        return Step::Fatal(WireError::UnsupportedVersion(h.version));
                    }
                    Ok(h) => {
                        self.state = FrameState::Payload(h);
                        h
                    }
                    Err(e) => return Step::Fatal(e),
                }
            }
            FrameState::Payload(h) => h,
        };
        let payload_len = match header.payload_len_usize() {
            Ok(len) => len,
            Err(e) => {
                self.state = FrameState::Header;
                return Step::Fatal(e);
            }
        };
        let frame_len = HEADER_LEN + payload_len;
        if self.buf.len() < frame_len {
            return Step::Need;
        }
        let payload = &self.buf[HEADER_LEN..frame_len];
        let decoded = if header.version == wire::PROTOCOL_VERSION_2 {
            wire::decode_payload_v2(&header, payload, chains)
        } else {
            wire::decode_payload(&header, payload).map(|snapshot| (snapshot, false))
        };
        self.buf.drain(..frame_len);
        self.state = FrameState::Header;
        match decoded {
            Ok((snapshot, delta)) => Step::Frame {
                router_id: header.router_id,
                interval: header.interval,
                snapshot: Box::new(snapshot),
                frame_bytes: u64::try_from(frame_len).unwrap_or(u64::MAX),
                codec: header.codec,
                delta,
            },
            Err(e) => Step::Skip(e),
        }
    }
}

/// The write end of the engine's wakeup pipe. Writing a byte makes the
/// poll loop return immediately, so shutdown never waits out a tick.
#[cfg(unix)]
pub(crate) struct Waker {
    tx: std::os::unix::net::UnixStream,
}

#[cfg(unix)]
impl Waker {
    pub(crate) fn wake(&self) {
        use std::io::Write as _;
        // A full pipe means a wakeup is already pending; either way the
        // poll loop gets woken, so the result is irrelevant.
        let _ = (&self.tx).write(&[1u8]);
    }
}

#[cfg(unix)]
struct WakeReader {
    rx: std::os::unix::net::UnixStream,
}

#[cfg(unix)]
impl WakeReader {
    fn drain(&self) {
        let mut sink = [0u8; 64];
        while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
    }
}

#[cfg(unix)]
fn wake_pair() -> std::io::Result<(Waker, WakeReader)> {
    let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReader { rx }))
}

/// Portable fallback: without a pollable pipe the engine falls back to
/// its tick, so `wake` is a no-op and shutdown costs one tick at worst.
#[cfg(not(unix))]
pub(crate) struct Waker;

#[cfg(not(unix))]
impl Waker {
    pub(crate) fn wake(&self) {}
}

#[cfg(not(unix))]
struct WakeReader;

#[cfg(not(unix))]
impl WakeReader {
    fn drain(&self) {}
}

#[cfg(not(unix))]
fn wake_pair() -> std::io::Result<(Waker, WakeReader)> {
    Ok((Waker, WakeReader))
}

#[cfg(unix)]
#[allow(unsafe_code)] // the crate-level deny's one hole: the poll(2) FFI
mod sys {
    //! Minimal FFI binding to `poll(2)`. The libc crate is not vendored,
    //! and `std` exposes no readiness API, so this is the one unsafe
    //! corner of the collection plane; it is confined to this module.

    use std::io;
    use std::os::unix::io::RawFd;

    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    pub(super) struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    /// Readable-data event bit (same value on Linux and the BSDs).
    pub(super) const POLLIN: i16 = 0x001;

    #[cfg(target_os = "linux")]
    type Nfds = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type Nfds = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: Nfds, timeout: std::os::raw::c_int) -> std::os::raw::c_int;
    }

    /// Waits up to `timeout_ms` for readiness on `fds`, returning how
    /// many entries have non-zero `revents`.
    ///
    /// # Errors
    ///
    /// The `poll(2)` errno as an [`io::Error`] (including `Interrupted`,
    /// which callers treat as an empty round).
    pub(super) fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        let nfds =
            Nfds::try_from(fds.len()).map_err(|_| io::Error::from(io::ErrorKind::InvalidInput))?;
        // SAFETY: `fds` is a live, exclusively borrowed slice of
        // `#[repr(C)]` pollfd structs matching the kernel ABI; `nfds` is
        // its exact length, so the kernel reads and writes (revents only)
        // strictly inside the slice for the duration of the call.
        let rc = unsafe { poll(fds.as_mut_ptr(), nfds, timeout_ms) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            usize::try_from(rc).map_err(|_| io::Error::from(io::ErrorKind::InvalidData))
        }
    }
}

/// One downstream connection owned by the engine.
struct Conn {
    stream: TcpStream,
    assembler: FrameAssembler,
    open: bool,
    /// Codec granted to this peer by accepting its hello (`None` until —
    /// or ever, for a v1 peer that never sends one).
    negotiated: Option<u8>,
    /// Bytes queued for the peer (accept + acks), written opportunistically
    /// with nonblocking writes so the engine never stalls on a peer.
    out: Vec<u8>,
    /// The write side died (peer gone or closed). Control messages stop;
    /// the read side keeps draining whatever the peer already sent.
    write_dead: bool,
    /// The peer has produced at least one data frame. While the consumer
    /// is backpressured, greeted connections leave the poll set (their
    /// bytes wait in TCP); ungreeted ones — fresh peers mid-handshake —
    /// stay serviced so hellos are always answered promptly.
    greeted: bool,
}

/// Cap on a connection's queued outbound control bytes. Acks beyond it
/// are dropped — the peer simply keyframes until the queue drains, so
/// an unreadable peer costs compression, never engine memory or time.
const MAX_OUT_BUFFER: usize = 4096;

impl Conn {
    /// Queues `msg` unless the buffer is at its cap or the peer is gone.
    fn queue(&mut self, msg: &[u8]) {
        if !self.write_dead && self.out.len().saturating_add(msg.len()) <= MAX_OUT_BUFFER {
            self.out.extend_from_slice(msg);
        }
    }

    /// Writes as much queued output as the socket will take right now.
    ///
    /// A dead write side (a peer that shipped its frames and closed) only
    /// disables further control messages — it must NOT close the
    /// connection: frames the peer sent before closing may still sit in
    /// our receive buffer, and acks are mere compression hints.
    fn flush_out(&mut self) {
        while !self.out.is_empty() {
            match self.stream.write(&self.out) {
                Ok(n) if n > 0 => {
                    self.out.drain(..n);
                }
                Ok(_) => {
                    self.write_dead = true;
                    self.out.clear();
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.write_dead = true;
                    self.out.clear();
                    return;
                }
            }
        }
    }
}

/// Readiness of (wakeup pipe, listener, each connection) after one wait.
#[cfg(unix)]
fn wait_ready(
    wake_rx: &WakeReader,
    listener: &TcpListener,
    conns: &[Conn],
    watch: &[bool],
    tick: Duration,
) -> (bool, bool, Vec<bool>) {
    use std::os::unix::io::AsRawFd as _;
    let mut fds = Vec::with_capacity(conns.len() + 2);
    fds.push(sys::PollFd {
        fd: wake_rx.rx.as_raw_fd(),
        events: sys::POLLIN,
        revents: 0,
    });
    fds.push(sys::PollFd {
        fd: listener.as_raw_fd(),
        events: sys::POLLIN,
        revents: 0,
    });
    // Unwatched (backpressure-paused) connections are left out of the
    // poll set entirely: their readable bytes would otherwise make every
    // poll return instantly and spin the loop while the consumer drains.
    let mut watched = Vec::with_capacity(conns.len());
    for (i, c) in conns.iter().enumerate() {
        if watch[i] {
            watched.push(i);
            fds.push(sys::PollFd {
                fd: c.stream.as_raw_fd(),
                events: sys::POLLIN,
                revents: 0,
            });
        }
    }
    let timeout = i32::try_from(tick.as_millis()).unwrap_or(i32::MAX);
    match sys::poll_fds(&mut fds, timeout) {
        Ok(0) => (false, false, vec![false; conns.len()]),
        Ok(_) => {
            // Any revents bit (data, hangup, error) warrants a read: the
            // read itself surfaces hangups as Ok(0) and errors as Err.
            let mut ready = vec![false; conns.len()];
            for (slot, f) in fds[2..].iter().enumerate() {
                if f.revents != 0 {
                    ready[watched[slot]] = true;
                }
            }
            (fds[0].revents != 0, fds[1].revents != 0, ready)
        }
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
            (false, false, vec![false; conns.len()])
        }
        Err(_) => {
            // poll(2) itself failing (fd-limit pressure, ENOMEM): degrade
            // to a scan round so the engine stays live rather than spin.
            // lint: allow(poll-loop-purity, bounded 2ms pause replacing the timed wait when poll itself fails — the alternative is a busy spin)
            std::thread::sleep(Duration::from_millis(2));
            (true, true, watch.to_vec())
        }
    }
}

/// Portable fallback: a short scan tick over the nonblocking sockets.
#[cfg(not(unix))]
fn wait_ready(
    _wake_rx: &WakeReader,
    _listener: &TcpListener,
    _conns: &[Conn],
    watch: &[bool],
    tick: Duration,
) -> (bool, bool, Vec<bool>) {
    // lint: allow(poll-loop-purity, the portable build has no poll — this bounded tick sleep IS the wait primitive)
    std::thread::sleep(tick.min(Duration::from_millis(5)));
    (true, true, watch.to_vec())
}

/// The connection engine. [`PollEngine::spawn`] starts its one thread.
pub(crate) struct PollEngine;

impl PollEngine {
    /// Takes ownership of `listener` and runs the readiness loop until
    /// `shutdown` is set (and [`EngineHandle::wake`] is called) or every
    /// event receiver is gone.
    ///
    /// # Errors
    ///
    /// Socket-option and wakeup-pipe creation failures.
    pub(crate) fn spawn(
        listener: TcpListener,
        tx: SyncSender<Event>,
        shutdown: Arc<AtomicBool>,
        cfg: EngineConfig,
    ) -> Result<EngineHandle, CollectError> {
        listener.set_nonblocking(true)?;
        let (waker, wake_rx) = wake_pair()?;
        let thread = std::thread::spawn(move || run(listener, wake_rx, tx, shutdown, cfg));
        Ok(EngineHandle { waker, thread })
    }
}

/// A running engine: wake it, then join it.
pub(crate) struct EngineHandle {
    waker: Waker,
    thread: JoinHandle<()>,
}

impl EngineHandle {
    /// Interrupts the poll loop immediately (used with the shutdown flag
    /// for prompt stops).
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }

    /// Joins the engine thread.
    ///
    /// # Errors
    ///
    /// [`CollectError::WorkerPanic`] if the engine thread died.
    pub(crate) fn join(self) -> Result<(), CollectError> {
        self.thread
            .join()
            .map_err(|_| CollectError::WorkerPanic("engine"))
    }
}

fn run(
    listener: TcpListener,
    wake_rx: WakeReader,
    tx: SyncSender<Event>,
    shutdown: Arc<AtomicBool>,
    cfg: EngineConfig,
) {
    let mut conns: Vec<Conn> = Vec::new();
    // Delta baselines for every downstream, shared across connections so
    // a sender that reconnects (same router id) can still be served —
    // though its fresh session always opens with a keyframe anyway.
    let mut chains = ChainStore::new();
    // Events the consumer had no channel room for. While non-empty the
    // engine is backpressured: greeted connections pause, control stays
    // live. Bounded in practice by one service burst per fresh peer.
    let mut pending: VecDeque<Event> = VecDeque::new();
    // Round-robin origin for the per-round service order (see below).
    let mut rr: usize = 0;
    let accept_v2 = cfg.codecs.contains(&wire::CODEC_V2);
    while !shutdown.load(Ordering::SeqCst) {
        // Retry parked events first, preserving delivery order.
        while let Some(ev) = pending.pop_front() {
            match tx.try_send(ev) {
                Ok(()) => {}
                Err(TrySendError::Full(ev)) => {
                    pending.push_front(ev);
                    break;
                }
                Err(TrySendError::Disconnected(_)) => return,
            }
        }
        let backpressured = !pending.is_empty();
        let watch: Vec<bool> = conns
            .iter()
            .map(|c| !(backpressured && c.greeted))
            .collect();
        let (waker_ready, listener_ready, conn_ready) =
            wait_ready(&wake_rx, &listener, &conns, &watch, cfg.tick);
        if waker_ready {
            wake_rx.drain();
        }
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Service existing connections first; `conn_ready` is indexed
        // against the list as it stood when we polled. The starting
        // index rotates every round: service order decides who gets the
        // consumer channel's free slots, and a fixed order would let
        // connection 0 deliver several intervals per round while the
        // rest park one event each — skewing per-router delivery far
        // enough apart to overflow the aligner's reorder window.
        let mut any_closed = false;
        for k in 0..conns.len() {
            let i = (rr + k) % conns.len();
            let ready = &conn_ready[i];
            let conn = &mut conns[i];
            // Leftover assembler bytes (a service round cut short by
            // backpressure) are as serviceable as fresh socket data —
            // poll will never announce them, so check explicitly.
            let leftover = !backpressured && conn.assembler.has_buffered();
            let flow = if *ready || leftover {
                service(conn, &tx, &mut pending, &mut chains, &cfg)
            } else {
                // Nothing to read (or paused); retry any queued
                // accept/acks that hit WouldBlock earlier.
                conn.flush_out();
                Flow::Keep
            };
            match flow {
                Flow::Keep => {}
                Flow::Close => {
                    conn.open = false;
                    any_closed = true;
                    if !emit(&tx, &mut pending, Event::Disconnected) {
                        return;
                    }
                }
                Flow::Exit => return,
            }
        }
        if !conns.is_empty() {
            rr = (rr + 1) % conns.len();
        }
        if any_closed {
            conns.retain(|c| c.open);
        }
        if listener_ready {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            // A socket we cannot make nonblocking would
                            // stall the whole loop; refuse it.
                            continue;
                        }
                        if !emit(&tx, &mut pending, Event::Connected) {
                            return;
                        }
                        conns.push(Conn {
                            stream,
                            assembler: FrameAssembler::new(cfg.max_payload, accept_v2),
                            open: true,
                            negotiated: None,
                            out: Vec::new(),
                            write_dead: false,
                            greeted: false,
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    // Transient per-connection accept failures
                    // (ECONNABORTED and friends): retry next round.
                    Err(_) => break,
                }
            }
        }
    }
    // Dropping `tx` tells the consumer no more events are coming.
}

/// Delivers `ev` without ever blocking the engine thread: straight to
/// the channel when the queue is clear, parked behind earlier events
/// otherwise (order is preserved either way). Returns `false` only when
/// every receiver is gone and the engine should exit.
fn emit(tx: &SyncSender<Event>, pending: &mut VecDeque<Event>, ev: Event) -> bool {
    if pending.is_empty() {
        match tx.try_send(ev) {
            Ok(()) => {}
            Err(TrySendError::Full(ev)) => pending.push_back(ev),
            Err(TrySendError::Disconnected(_)) => return false,
        }
    } else {
        pending.push_back(ev);
    }
    true
}

/// What to do with a connection after servicing it.
#[derive(PartialEq, Eq)]
enum Flow {
    Keep,
    Close,
    /// Every event receiver is gone; the engine itself should exit.
    Exit,
}

/// What a decode pass over a connection's assembler ended with.
enum Drain {
    /// Stopped at the event cap or at `Need` (more bytes required).
    Paused,
    /// Framing lost: the connection must close.
    Fatal,
    /// Every event receiver is gone; the engine itself should exit.
    Exit,
}

/// Decodes whatever complete frames sit in `conn`'s assembler, emitting
/// their events, until the buffer runs dry, the framing turns fatal, or
/// (with a cap) `cap` data events have been emitted. Hellos are answered
/// and decoded v2 frames acked via the connection's out-buffer; neither
/// counts against the cap. Returns the data events emitted and why the
/// pass stopped.
fn drain_steps(
    conn: &mut Conn,
    tx: &SyncSender<Event>,
    pending: &mut VecDeque<Event>,
    chains: &mut ChainStore,
    cfg: &EngineConfig,
    cap: Option<usize>,
) -> (usize, Drain) {
    let mut emitted = 0usize;
    loop {
        if cap.is_some_and(|c| emitted >= c) {
            return (emitted, Drain::Paused);
        }
        match conn.assembler.step(chains) {
            Step::Need => return (emitted, Drain::Paused),
            Step::Hello(theirs) => {
                let chosen = cfg.pick_codec(&theirs);
                conn.negotiated = Some(chosen);
                conn.queue(&wire::encode_accept(chosen));
            }
            Step::Frame {
                router_id,
                interval,
                snapshot,
                frame_bytes,
                codec,
                delta,
            } => {
                conn.greeted = true;
                // Acks exist solely to unlock the sender's delta chain;
                // a v1 frame on a v2 session (a replayed pre-upgrade
                // backlog) needs none.
                if conn.negotiated == Some(wire::CODEC_V2) && codec == wire::CODEC_V2 {
                    conn.queue(&wire::encode_ack(interval));
                }
                let event = Event::Frame {
                    router_id,
                    interval,
                    snapshot,
                    frame_bytes,
                    codec,
                    delta,
                };
                if !emit(tx, pending, event) {
                    return (emitted, Drain::Exit);
                }
                emitted += 1;
            }
            // Framing intact, payload bad: skip the frame.
            Step::Skip(e) => {
                conn.greeted = true;
                if !emit(tx, pending, Event::Rejected(e)) {
                    return (emitted, Drain::Exit);
                }
                emitted += 1;
            }
            // Framing lost: drop the connection.
            Step::Fatal(e) => {
                conn.greeted = true;
                if !emit(tx, pending, Event::Rejected(e)) {
                    return (emitted, Drain::Exit);
                }
                return (emitted, Drain::Fatal);
            }
        }
    }
}

/// Services one connection: decodes leftover buffered frames, then reads
/// until it would block (bounded per round so one firehose peer cannot
/// starve the rest — poll is level-triggered, leftover bytes surface
/// again next round). The round ends as soon as ONE data event is
/// emitted: delivery fairness across senders is exactly the per-round
/// event budget, and a conn allowed to burst until the channel filled
/// would race whole intervals ahead of its peers and overflow the
/// aligner's reorder window. Decoding ahead of a full consumer would
/// also just move backpressure off TCP and into engine memory. The one
/// exception is EOF or a fatal socket error: there will be no further
/// rounds for this connection, so everything the peer shipped before
/// closing drains uncapped — the pending queue absorbs it.
fn service(
    conn: &mut Conn,
    tx: &SyncSender<Event>,
    pending: &mut VecDeque<Event>,
    chains: &mut ChainStore,
    cfg: &EngineConfig,
) -> Flow {
    let mut chunk = [0u8; 64 * 1024];
    let mut flow = Flow::Keep;
    // Leftovers first: an earlier capped round may have left complete
    // frames in the assembler that no poll readiness will announce.
    let spent = match drain_steps(conn, tx, pending, chains, cfg, Some(1)) {
        (_, Drain::Exit) => return Flow::Exit,
        (_, Drain::Fatal) => {
            conn.flush_out();
            return Flow::Close;
        }
        (n, Drain::Paused) => n >= 1,
    };
    if !spent {
        'read: for _ in 0..8 {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    if matches!(
                        drain_steps(conn, tx, pending, chains, cfg, None),
                        (_, Drain::Exit)
                    ) {
                        return Flow::Exit;
                    }
                    flow = Flow::Close;
                    break 'read;
                }
                Ok(n) => {
                    conn.assembler.extend(&chunk[..n]);
                    match drain_steps(conn, tx, pending, chains, cfg, Some(1)) {
                        (_, Drain::Exit) => return Flow::Exit,
                        (_, Drain::Fatal) => {
                            flow = Flow::Close;
                            break 'read;
                        }
                        (k, Drain::Paused) => {
                            if k >= 1 {
                                break 'read;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break 'read,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    if matches!(
                        drain_steps(conn, tx, pending, chains, cfg, None),
                        (_, Drain::Exit)
                    ) {
                        return Flow::Exit;
                    }
                    flow = Flow::Close;
                    break 'read;
                }
            }
        }
    }
    // Push out whatever this round queued (accept, acks) — best effort;
    // a dead write side never closes a connection that may still hold
    // readable frames.
    conn.flush_out();
    flow
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind::{HiFindConfig, SketchRecorder};

    fn sample_frame() -> (Vec<u8>, u64) {
        let cfg = HiFindConfig::small(3);
        let mut rec = SketchRecorder::new(&cfg).unwrap();
        let snap = rec.take_snapshot();
        let frame = wire::encode_frame(9, 4, &snap).unwrap();
        let len = frame.len() as u64;
        (frame, len)
    }

    #[test]
    fn assembler_survives_any_byte_segmentation() {
        let (frame, frame_len) = sample_frame();
        let mut doubled = frame.clone();
        doubled.extend_from_slice(&frame);
        for chunk_size in [1, 7, 36, 37, 1024] {
            let mut asm = FrameAssembler::new(wire::DEFAULT_MAX_PAYLOAD, true);
            let mut chains = ChainStore::new();
            let mut frames = 0;
            for chunk in doubled.chunks(chunk_size) {
                asm.extend(chunk);
                loop {
                    match asm.step(&mut chains) {
                        Step::Need => break,
                        Step::Frame {
                            router_id,
                            interval,
                            frame_bytes,
                            ..
                        } => {
                            assert_eq!(router_id, 9);
                            assert_eq!(interval, 4);
                            assert_eq!(frame_bytes, frame_len);
                            frames += 1;
                        }
                        Step::Skip(e) | Step::Fatal(e) => panic!("unexpected rejection: {e}"),
                        Step::Hello(_) => panic!("no hello was sent"),
                    }
                }
            }
            assert_eq!(frames, 2, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn assembler_rejects_bad_magic_fatally() {
        let (mut frame, _) = sample_frame();
        frame[0] = b'X';
        let mut asm = FrameAssembler::new(wire::DEFAULT_MAX_PAYLOAD, true);
        let mut chains = ChainStore::new();
        asm.extend(&frame);
        assert!(matches!(
            asm.step(&mut chains),
            Step::Fatal(WireError::BadMagic(_))
        ));
    }

    #[test]
    fn assembler_skips_corrupt_payload_but_keeps_framing() {
        let (frame, _) = sample_frame();
        let mut corrupted = frame.clone();
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0xFF; // flip a payload byte: CRC mismatch
        corrupted.extend_from_slice(&frame); // a good frame follows
        let mut asm = FrameAssembler::new(wire::DEFAULT_MAX_PAYLOAD, true);
        let mut chains = ChainStore::new();
        asm.extend(&corrupted);
        assert!(matches!(asm.step(&mut chains), Step::Skip(_)));
        assert!(matches!(asm.step(&mut chains), Step::Frame { .. }));
        assert!(matches!(asm.step(&mut chains), Step::Need));
    }

    /// A hello arriving in arbitrary fragments negotiates, and the same
    /// bytes fed to a v1-only assembler die as bad magic — exactly how a
    /// legacy collector would treat them.
    #[test]
    fn hello_is_recognized_only_when_v2_is_enabled() {
        let hello = wire::encode_hello(&[wire::CODEC_V2, wire::CODEC_V1]);
        let mut asm = FrameAssembler::new(wire::DEFAULT_MAX_PAYLOAD, true);
        let mut chains = ChainStore::new();
        for &b in &hello[..hello.len() - 1] {
            asm.extend(&[b]);
            assert!(matches!(asm.step(&mut chains), Step::Need));
        }
        asm.extend(&hello[hello.len() - 1..]);
        match asm.step(&mut chains) {
            Step::Hello(codecs) => assert_eq!(codecs, vec![wire::CODEC_V2, wire::CODEC_V1]),
            _ => panic!("expected a hello"),
        }
        // A frame following the hello still parses.
        let (frame, _) = sample_frame();
        asm.extend(&frame);
        assert!(matches!(asm.step(&mut chains), Step::Frame { .. }));

        // A v1-only assembler buffers the bare hello (it is shorter than
        // a frame header, so the agent-side accept timeout is what breaks
        // the stalemate), and the moment enough bytes follow, the hello
        // prefix is fatal bad magic — a legacy collector can never
        // misparse it as a frame.
        let mut v1_only = FrameAssembler::new(wire::DEFAULT_MAX_PAYLOAD, false);
        v1_only.extend(&hello);
        assert!(matches!(v1_only.step(&mut chains), Step::Need));
        let (frame, _) = sample_frame();
        v1_only.extend(&frame);
        assert!(matches!(
            v1_only.step(&mut chains),
            Step::Fatal(WireError::BadMagic(_))
        ));
    }

    /// A v2 frame fed to a v1-only assembler is an unsupported version.
    #[test]
    fn v1_only_assembler_rejects_v2_frames() {
        let cfg = HiFindConfig::small(3);
        let mut rec = SketchRecorder::new(&cfg).unwrap();
        let snap = rec.take_snapshot();
        let payload = crate::codec_v2::encode_keyframe(&snap);
        let frame = wire::encode_frame_v2(9, 4, snap.fingerprint, &payload).unwrap();
        let mut chains = ChainStore::new();
        let mut v1_only = FrameAssembler::new(wire::DEFAULT_MAX_PAYLOAD, false);
        v1_only.extend(&frame);
        assert!(matches!(
            v1_only.step(&mut chains),
            Step::Fatal(WireError::UnsupportedVersion(2))
        ));
        let mut v2 = FrameAssembler::new(wire::DEFAULT_MAX_PAYLOAD, true);
        v2.extend(&frame);
        assert!(matches!(
            v2.step(&mut chains),
            Step::Frame {
                codec: wire::CODEC_V2,
                delta: false,
                ..
            }
        ));
    }

    #[test]
    fn wake_interrupts_the_poll_loop_promptly() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (tx, rx) = std::sync::mpsc::sync_channel::<Event>(4);
        let shutdown = Arc::new(AtomicBool::new(false));
        let engine = PollEngine::spawn(
            listener,
            tx,
            Arc::clone(&shutdown),
            EngineConfig {
                max_payload: wire::DEFAULT_MAX_PAYLOAD,
                // A tick long enough that only the waker can explain a
                // fast exit.
                tick: Duration::from_secs(5),
                codecs: vec![wire::CODEC_V2, wire::CODEC_V1],
            },
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let start = std::time::Instant::now();
        shutdown.store(true, Ordering::SeqCst);
        engine.wake();
        engine.join().unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "engine took {:?} to stop; the wakeup pipe is not working",
            start.elapsed()
        );
        drop(rx);
    }
}
