//! The event-driven connection engine shared by the root collector and
//! mid-tier aggregators.
//!
//! One thread owns every socket of a collection node: a readiness loop
//! (`poll(2)` over nonblocking fds) multiplexes the listener, a wakeup
//! pipe, and all downstream connections. Each connection carries its own
//! read buffer and a typed frame state machine ([`FrameAssembler`]); no
//! thread is ever spawned per connection, so a node holding hundreds of
//! downstream agents costs one engine thread, not hundreds of stacks.
//!
//! Decoded frames flow to the consumer (the aligner or merger thread)
//! over a bounded channel. A consumer that falls behind blocks the
//! engine's `send`, which stops all socket reads — backpressure lands on
//! TCP instead of collector memory. That is a deliberate trade against
//! the old thread-per-connection design, where one slow consumer stalled
//! readers one at a time; the bounded channel absorbs bursts and
//! detection is per-interval work, so the engine never waits long.
//!
//! Shutdown is prompt: [`EngineHandle::wake`] writes one byte into the
//! wakeup pipe, which the poll set always watches, so `stop()` never
//! waits out an accept or read timeout tick.

use crate::wire::{self, FrameHeader, WireError, HEADER_LEN};
use crate::CollectError;
use hifind::IntervalSnapshot;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Engine → consumer messages, one per connection transition or frame.
pub(crate) enum Event {
    /// A downstream node connected.
    Connected,
    /// A validated, decoded snapshot frame.
    Frame {
        /// Sender id from the frame header.
        router_id: u32,
        /// Interval index from the frame header.
        interval: u64,
        /// The decoded snapshot (boxed: ~1 KB of inline sketch headers).
        snapshot: Box<IntervalSnapshot>,
        /// Header + payload size on the wire.
        frame_bytes: u64,
    },
    /// A frame failed wire validation and was discarded.
    Rejected(WireError),
    /// A downstream node disconnected (or its stream turned fatal).
    Disconnected,
}

/// Engine policy knobs.
pub(crate) struct EngineConfig {
    /// Per-frame payload cap handed to the wire layer.
    pub max_payload: u32,
    /// Poll timeout: the worst-case latency of noticing the shutdown
    /// flag if the wakeup byte is ever lost (belt and braces).
    pub tick: Duration,
}

/// A typed per-connection frame state machine: bytes accumulate in one
/// growing buffer and frames are sliced out whole, so arbitrary TCP
/// segmentation can never split a frame.
pub(crate) struct FrameAssembler {
    buf: Vec<u8>,
    state: FrameState,
    max_payload: u32,
}

/// Where the assembler stands in the current frame.
enum FrameState {
    /// Waiting for a complete 36-byte header.
    Header,
    /// Header parsed; waiting for its declared payload.
    Payload(FrameHeader),
}

/// One assembler step.
pub(crate) enum Step {
    /// Not enough buffered bytes to advance; read more.
    Need,
    /// A complete, validated frame.
    Frame {
        /// Sender id from the frame header.
        router_id: u32,
        /// Interval index from the frame header.
        interval: u64,
        /// The decoded snapshot.
        snapshot: Box<IntervalSnapshot>,
        /// Header + payload size on the wire.
        frame_bytes: u64,
    },
    /// The framing was intact (lengths checked out) but the payload was
    /// bad; this frame is skipped, the connection survives.
    Skip(WireError),
    /// Framing itself is lost; the connection must be dropped.
    Fatal(WireError),
}

impl FrameAssembler {
    pub(crate) fn new(max_payload: u32) -> Self {
        FrameAssembler {
            buf: Vec::new(),
            state: FrameState::Header,
            max_payload,
        }
    }

    /// Appends freshly read bytes.
    pub(crate) fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Advances the state machine by at most one frame.
    pub(crate) fn step(&mut self) -> Step {
        let header = match self.state {
            FrameState::Header => {
                if self.buf.len() < HEADER_LEN {
                    return Step::Need;
                }
                let Ok(header_bytes) = <[u8; HEADER_LEN]>::try_from(&self.buf[..HEADER_LEN]) else {
                    // Length is guaranteed by the guard above; bail rather
                    // than panic if that invariant ever breaks.
                    return Step::Fatal(WireError::TruncatedFrame {
                        expected: HEADER_LEN,
                        got: self.buf.len(),
                    });
                };
                match wire::parse_header(&header_bytes, self.max_payload) {
                    Ok(h) => {
                        self.state = FrameState::Payload(h);
                        h
                    }
                    Err(e) => return Step::Fatal(e),
                }
            }
            FrameState::Payload(h) => h,
        };
        let payload_len = match header.payload_len_usize() {
            Ok(len) => len,
            Err(e) => {
                self.state = FrameState::Header;
                return Step::Fatal(e);
            }
        };
        let frame_len = HEADER_LEN + payload_len;
        if self.buf.len() < frame_len {
            return Step::Need;
        }
        let decoded = wire::decode_payload(&header, &self.buf[HEADER_LEN..frame_len]);
        self.buf.drain(..frame_len);
        self.state = FrameState::Header;
        match decoded {
            Ok(snapshot) => Step::Frame {
                router_id: header.router_id,
                interval: header.interval,
                snapshot: Box::new(snapshot),
                frame_bytes: u64::try_from(frame_len).unwrap_or(u64::MAX),
            },
            Err(e) => Step::Skip(e),
        }
    }
}

/// The write end of the engine's wakeup pipe. Writing a byte makes the
/// poll loop return immediately, so shutdown never waits out a tick.
#[cfg(unix)]
pub(crate) struct Waker {
    tx: std::os::unix::net::UnixStream,
}

#[cfg(unix)]
impl Waker {
    pub(crate) fn wake(&self) {
        use std::io::Write as _;
        // A full pipe means a wakeup is already pending; either way the
        // poll loop gets woken, so the result is irrelevant.
        let _ = (&self.tx).write(&[1u8]);
    }
}

#[cfg(unix)]
struct WakeReader {
    rx: std::os::unix::net::UnixStream,
}

#[cfg(unix)]
impl WakeReader {
    fn drain(&self) {
        let mut sink = [0u8; 64];
        while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
    }
}

#[cfg(unix)]
fn wake_pair() -> std::io::Result<(Waker, WakeReader)> {
    let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReader { rx }))
}

/// Portable fallback: without a pollable pipe the engine falls back to
/// its tick, so `wake` is a no-op and shutdown costs one tick at worst.
#[cfg(not(unix))]
pub(crate) struct Waker;

#[cfg(not(unix))]
impl Waker {
    pub(crate) fn wake(&self) {}
}

#[cfg(not(unix))]
struct WakeReader;

#[cfg(not(unix))]
impl WakeReader {
    fn drain(&self) {}
}

#[cfg(not(unix))]
fn wake_pair() -> std::io::Result<(Waker, WakeReader)> {
    Ok((Waker, WakeReader))
}

#[cfg(unix)]
#[allow(unsafe_code)] // the crate-level deny's one hole: the poll(2) FFI
mod sys {
    //! Minimal FFI binding to `poll(2)`. The libc crate is not vendored,
    //! and `std` exposes no readiness API, so this is the one unsafe
    //! corner of the collection plane; it is confined to this module.

    use std::io;
    use std::os::unix::io::RawFd;

    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    pub(super) struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    /// Readable-data event bit (same value on Linux and the BSDs).
    pub(super) const POLLIN: i16 = 0x001;

    #[cfg(target_os = "linux")]
    type Nfds = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type Nfds = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: Nfds, timeout: std::os::raw::c_int) -> std::os::raw::c_int;
    }

    /// Waits up to `timeout_ms` for readiness on `fds`, returning how
    /// many entries have non-zero `revents`.
    ///
    /// # Errors
    ///
    /// The `poll(2)` errno as an [`io::Error`] (including `Interrupted`,
    /// which callers treat as an empty round).
    pub(super) fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        let nfds =
            Nfds::try_from(fds.len()).map_err(|_| io::Error::from(io::ErrorKind::InvalidInput))?;
        // SAFETY: `fds` is a live, exclusively borrowed slice of
        // `#[repr(C)]` pollfd structs matching the kernel ABI; `nfds` is
        // its exact length, so the kernel reads and writes (revents only)
        // strictly inside the slice for the duration of the call.
        let rc = unsafe { poll(fds.as_mut_ptr(), nfds, timeout_ms) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            usize::try_from(rc).map_err(|_| io::Error::from(io::ErrorKind::InvalidData))
        }
    }
}

/// One downstream connection owned by the engine.
struct Conn {
    stream: TcpStream,
    assembler: FrameAssembler,
    open: bool,
}

/// Readiness of (wakeup pipe, listener, each connection) after one wait.
#[cfg(unix)]
fn wait_ready(
    wake_rx: &WakeReader,
    listener: &TcpListener,
    conns: &[Conn],
    tick: Duration,
) -> (bool, bool, Vec<bool>) {
    use std::os::unix::io::AsRawFd as _;
    let mut fds = Vec::with_capacity(conns.len() + 2);
    fds.push(sys::PollFd {
        fd: wake_rx.rx.as_raw_fd(),
        events: sys::POLLIN,
        revents: 0,
    });
    fds.push(sys::PollFd {
        fd: listener.as_raw_fd(),
        events: sys::POLLIN,
        revents: 0,
    });
    for c in conns {
        fds.push(sys::PollFd {
            fd: c.stream.as_raw_fd(),
            events: sys::POLLIN,
            revents: 0,
        });
    }
    let timeout = i32::try_from(tick.as_millis()).unwrap_or(i32::MAX);
    match sys::poll_fds(&mut fds, timeout) {
        Ok(0) => (false, false, vec![false; conns.len()]),
        Ok(_) => {
            // Any revents bit (data, hangup, error) warrants a read: the
            // read itself surfaces hangups as Ok(0) and errors as Err.
            let ready = fds[2..].iter().map(|f| f.revents != 0).collect();
            (fds[0].revents != 0, fds[1].revents != 0, ready)
        }
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
            (false, false, vec![false; conns.len()])
        }
        Err(_) => {
            // poll(2) itself failing (fd-limit pressure, ENOMEM): degrade
            // to a scan round so the engine stays live rather than spin.
            // lint: allow(poll-loop-purity, bounded 2ms pause replacing the timed wait when poll itself fails — the alternative is a busy spin)
            std::thread::sleep(Duration::from_millis(2));
            (true, true, vec![true; conns.len()])
        }
    }
}

/// Portable fallback: a short scan tick over the nonblocking sockets.
#[cfg(not(unix))]
fn wait_ready(
    _wake_rx: &WakeReader,
    _listener: &TcpListener,
    conns: &[Conn],
    tick: Duration,
) -> (bool, bool, Vec<bool>) {
    // lint: allow(poll-loop-purity, the portable build has no poll — this bounded tick sleep IS the wait primitive)
    std::thread::sleep(tick.min(Duration::from_millis(5)));
    (true, true, vec![true; conns.len()])
}

/// The connection engine. [`PollEngine::spawn`] starts its one thread.
pub(crate) struct PollEngine;

impl PollEngine {
    /// Takes ownership of `listener` and runs the readiness loop until
    /// `shutdown` is set (and [`EngineHandle::wake`] is called) or every
    /// event receiver is gone.
    ///
    /// # Errors
    ///
    /// Socket-option and wakeup-pipe creation failures.
    pub(crate) fn spawn(
        listener: TcpListener,
        tx: SyncSender<Event>,
        shutdown: Arc<AtomicBool>,
        cfg: EngineConfig,
    ) -> Result<EngineHandle, CollectError> {
        listener.set_nonblocking(true)?;
        let (waker, wake_rx) = wake_pair()?;
        let thread = std::thread::spawn(move || run(listener, wake_rx, tx, shutdown, cfg));
        Ok(EngineHandle { waker, thread })
    }
}

/// A running engine: wake it, then join it.
pub(crate) struct EngineHandle {
    waker: Waker,
    thread: JoinHandle<()>,
}

impl EngineHandle {
    /// Interrupts the poll loop immediately (used with the shutdown flag
    /// for prompt stops).
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }

    /// Joins the engine thread.
    ///
    /// # Errors
    ///
    /// [`CollectError::WorkerPanic`] if the engine thread died.
    pub(crate) fn join(self) -> Result<(), CollectError> {
        self.thread
            .join()
            .map_err(|_| CollectError::WorkerPanic("engine"))
    }
}

fn run(
    listener: TcpListener,
    wake_rx: WakeReader,
    tx: SyncSender<Event>,
    shutdown: Arc<AtomicBool>,
    cfg: EngineConfig,
) {
    let mut conns: Vec<Conn> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        let (waker_ready, listener_ready, conn_ready) =
            wait_ready(&wake_rx, &listener, &conns, cfg.tick);
        if waker_ready {
            wake_rx.drain();
        }
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Service existing connections first; `conn_ready` is indexed
        // against the list as it stood when we polled.
        let mut any_closed = false;
        for (i, ready) in conn_ready.iter().enumerate() {
            let Some(conn) = conns.get_mut(i) else {
                break;
            };
            if !*ready {
                continue;
            }
            match service(conn, &tx) {
                Flow::Keep => {}
                Flow::Close => {
                    conn.open = false;
                    any_closed = true;
                    if tx.send(Event::Disconnected).is_err() {
                        return;
                    }
                }
                Flow::Exit => return,
            }
        }
        if any_closed {
            conns.retain(|c| c.open);
        }
        if listener_ready {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            // A socket we cannot make nonblocking would
                            // stall the whole loop; refuse it.
                            continue;
                        }
                        if tx.send(Event::Connected).is_err() {
                            return;
                        }
                        conns.push(Conn {
                            stream,
                            assembler: FrameAssembler::new(cfg.max_payload),
                            open: true,
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    // Transient per-connection accept failures
                    // (ECONNABORTED and friends): retry next round.
                    Err(_) => break,
                }
            }
        }
    }
    // Dropping `tx` tells the consumer no more events are coming.
}

/// What to do with a connection after servicing it.
#[derive(PartialEq, Eq)]
enum Flow {
    Keep,
    Close,
    /// Every event receiver is gone; the engine itself should exit.
    Exit,
}

/// Reads one ready connection until it would block (bounded per round so
/// one firehose peer cannot starve the rest — poll is level-triggered,
/// leftover bytes surface again next round) and forwards decoded frames.
fn service(conn: &mut Conn, tx: &SyncSender<Event>) -> Flow {
    let mut chunk = [0u8; 64 * 1024];
    for _ in 0..8 {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return Flow::Close,
            Ok(n) => {
                conn.assembler.extend(&chunk[..n]);
                loop {
                    match conn.assembler.step() {
                        Step::Need => break,
                        Step::Frame {
                            router_id,
                            interval,
                            snapshot,
                            frame_bytes,
                        } => {
                            let event = Event::Frame {
                                router_id,
                                interval,
                                snapshot,
                                frame_bytes,
                            };
                            if tx.send(event).is_err() {
                                return Flow::Exit;
                            }
                        }
                        // Framing intact, payload bad: skip the frame.
                        Step::Skip(e) => {
                            if tx.send(Event::Rejected(e)).is_err() {
                                return Flow::Exit;
                            }
                        }
                        // Framing lost: drop the connection.
                        Step::Fatal(e) => {
                            if tx.send(Event::Rejected(e)).is_err() {
                                return Flow::Exit;
                            }
                            return Flow::Close;
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Flow::Keep,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Flow::Close,
        }
    }
    Flow::Keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind::{HiFindConfig, SketchRecorder};

    fn sample_frame() -> (Vec<u8>, u64) {
        let cfg = HiFindConfig::small(3);
        let mut rec = SketchRecorder::new(&cfg).unwrap();
        let snap = rec.take_snapshot();
        let frame = wire::encode_frame(9, 4, &snap).unwrap();
        let len = frame.len() as u64;
        (frame, len)
    }

    #[test]
    fn assembler_survives_any_byte_segmentation() {
        let (frame, frame_len) = sample_frame();
        let mut doubled = frame.clone();
        doubled.extend_from_slice(&frame);
        for chunk_size in [1, 7, 36, 37, 1024] {
            let mut asm = FrameAssembler::new(wire::DEFAULT_MAX_PAYLOAD);
            let mut frames = 0;
            for chunk in doubled.chunks(chunk_size) {
                asm.extend(chunk);
                loop {
                    match asm.step() {
                        Step::Need => break,
                        Step::Frame {
                            router_id,
                            interval,
                            frame_bytes,
                            ..
                        } => {
                            assert_eq!(router_id, 9);
                            assert_eq!(interval, 4);
                            assert_eq!(frame_bytes, frame_len);
                            frames += 1;
                        }
                        Step::Skip(e) | Step::Fatal(e) => panic!("unexpected rejection: {e}"),
                    }
                }
            }
            assert_eq!(frames, 2, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn assembler_rejects_bad_magic_fatally() {
        let (mut frame, _) = sample_frame();
        frame[0] = b'X';
        let mut asm = FrameAssembler::new(wire::DEFAULT_MAX_PAYLOAD);
        asm.extend(&frame);
        assert!(matches!(asm.step(), Step::Fatal(WireError::BadMagic(_))));
    }

    #[test]
    fn assembler_skips_corrupt_payload_but_keeps_framing() {
        let (frame, _) = sample_frame();
        let mut corrupted = frame.clone();
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0xFF; // flip a payload byte: CRC mismatch
        corrupted.extend_from_slice(&frame); // a good frame follows
        let mut asm = FrameAssembler::new(wire::DEFAULT_MAX_PAYLOAD);
        asm.extend(&corrupted);
        assert!(matches!(asm.step(), Step::Skip(_)));
        assert!(matches!(asm.step(), Step::Frame { .. }));
        assert!(matches!(asm.step(), Step::Need));
    }

    #[test]
    fn wake_interrupts_the_poll_loop_promptly() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (tx, rx) = std::sync::mpsc::sync_channel::<Event>(4);
        let shutdown = Arc::new(AtomicBool::new(false));
        let engine = PollEngine::spawn(
            listener,
            tx,
            Arc::clone(&shutdown),
            EngineConfig {
                max_payload: wire::DEFAULT_MAX_PAYLOAD,
                // A tick long enough that only the waker can explain a
                // fast exit.
                tick: Duration::from_secs(5),
            },
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let start = std::time::Instant::now();
        shutdown.store(true, Ordering::SeqCst);
        engine.wake();
        engine.join().unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "engine took {:?} to stop; the wakeup pipe is not working",
            start.elapsed()
        );
        drop(rx);
    }
}
